"""The placement state: cell positions, caches, and the three-term cost.

This is the mutable object both annealing stages operate on.  It tracks,
incrementally:

* ``C1`` — the TEIC of Eqn 6 (weighted net spans over exact pin positions),
* ``C2`` — the overlap penalty of Eqns 7-8 over *expanded* cell tiles
  (dynamic interconnect-area borders in stage 1, static per-side
  expansions in stage 2), including overlap with the four dummy border
  cells that keep cells inside the core (footnote 16),
* ``C3`` — the pin-site capacity penalty of Eqns 10-11 for custom cells.

Moves are applied through ``move_cell`` / ``swap_cells`` /
``move_pin_group``, each of which returns the cost delta and a snapshot
token that ``restore`` undoes exactly (no float drift on rejection).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..estimator import CorePlan
from ..geometry import BOTTOM, LEFT, RIGHT, TOP, Rect, TileSet
from ..geometry import orientation as ori
from ..netlist import Circuit, CustomCell, MacroCell, Net

#: Default kappa of Eqn 10 — drives pin-site overflow to zero late in stage 1.
DEFAULT_KAPPA = 5.0

_SIDES = (LEFT, RIGHT, BOTTOM, TOP)
_SIDE_DIRS = {LEFT: (-1.0, 0.0), RIGHT: (1.0, 0.0), BOTTOM: (0.0, -1.0), TOP: (0.0, 1.0)}


def _compute_world_side(canonical_side: str, orientation: int) -> str:
    dx, dy = _SIDE_DIRS[canonical_side]
    wx, wy = ori.transform_point(orientation, dx, dy)
    for side, (sx, sy) in _SIDE_DIRS.items():
        if (sx, sy) == (wx, wy):
            return side
    raise AssertionError("orientation must permute the four sides")


#: orientation -> {canonical side -> world side} (precomputed: the mapping
#: sits on the stage-1 hot path via the dynamic expansion).
_SIDE_MAP = tuple(
    {s: _compute_world_side(s, o) for s in _SIDES}
    for o in range(ori.N_ORIENTATIONS)
)

#: orientation -> {world side -> canonical side} (the inverse mapping).
_SIDE_MAP_INV = tuple(
    {world: canonical for canonical, world in _SIDE_MAP[o].items()}
    for o in range(ori.N_ORIENTATIONS)
)


def world_side(canonical_side: str, orientation: int) -> str:
    """The world-frame side that a canonical cell side faces after the
    orientation transform (e.g. LEFT under R90 faces BOTTOM)."""
    return _SIDE_MAP[orientation][canonical_side]


@dataclass
class CellRecord:
    """Mutable placement attributes of one cell."""

    center: Tuple[float, float]
    orientation: int = 0
    instance: int = 0
    aspect_ratio: Optional[float] = None
    #: custom cells: pin-group key -> (canonical side, starting site index).
    pin_sites: Dict[str, Tuple[str, int]] = field(default_factory=dict)

    def copy(self) -> "CellRecord":
        return replace(self, pin_sites=dict(self.pin_sites))


@dataclass
class _Snapshot:
    """Everything needed to restore the state after a rejected move."""

    cost_before: float
    records: Dict[int, CellRecord]
    shapes: Dict[int, TileSet]
    expanded: Dict[int, TileSet]
    pins: Dict[int, Dict[str, Tuple[float, float]]]
    net_spans: Dict[str, Tuple[float, float]]
    overlaps: Dict[Tuple[int, int], float]
    borders: Dict[int, float]
    c3: Dict[int, float]
    c1: float
    c2_raw: float
    c3_total: float


class PlacementState:
    """Placement of a circuit inside a core region, with incremental cost."""

    def __init__(
        self,
        circuit: Circuit,
        plan: CorePlan,
        p2: float = 1.0,
        kappa: float = DEFAULT_KAPPA,
        dynamic_expansion: bool = True,
        static_expansions: Optional[Dict[str, Dict[str, float]]] = None,
    ) -> None:
        self.circuit = circuit
        self.plan = plan
        self.core = plan.core
        self.estimator = plan.estimator
        self.p2 = p2
        self.kappa = kappa
        self.dynamic_expansion = dynamic_expansion

        self.names: List[str] = list(circuit.cells)
        self.index: Dict[str, int] = {n: i for i, n in enumerate(self.names)}
        n = len(self.names)

        #: Pre-placed cells (FixedPlacement) are never moved or reshaped.
        self.movable: List[bool] = [
            not circuit.cells[name].is_fixed for name in self.names
        ]

        # Static (stage-2) per-world-side expansions, name -> side -> margin.
        self._static: List[Dict[str, float]] = [
            dict((static_expansions or {}).get(name, {})) for name in self.names
        ]

        # Net membership: cell idx -> list of net names; net name -> the
        # (cell index, pin name) pairs its span is computed from.
        self._cell_nets: List[List[str]] = [[] for _ in range(n)]
        self._net_members: Dict[str, List[Tuple[int, str]]] = {}
        for net in circuit.nets.values():
            members = []
            touched = set()
            for ref in net.pins:
                idx = self.index[ref.cell]
                members.append((idx, ref.pin))
                if idx not in touched:
                    touched.add(idx)
                    self._cell_nets[idx].append(net.name)
            self._net_members[net.name] = members

        # Canonical-side pin densities for macro cells (static per instance).
        self._side_density: List[Optional[Dict[str, float]]] = [
            self._macro_side_density(i) for i in range(n)
        ]

        # Pin-group structure for custom cells: idx -> [(key, [pin names])].
        self._groups: List[List[Tuple[str, List[str]]]] = []
        for name in self.names:
            cell = circuit.cells[name]
            if isinstance(cell, CustomCell):
                groups = [
                    (key, [p.name for p in pins])
                    for key, pins in cell.pin_groups().items()
                ]
                self._groups.append(groups)
            else:
                self._groups.append([])

        # Border slabs (the four dummy cells of footnote 16).
        big = 10.0 * max(self.core.width, self.core.height)
        c = self.core
        self._slabs = (
            Rect(c.x1 - big, c.y1 - big, c.x1, c.y2 + big),        # left
            Rect(c.x2, c.y1 - big, c.x2 + big, c.y2 + big),        # right
            Rect(c.x1 - big, c.y1 - big, c.x2 + big, c.y1),        # bottom
            Rect(c.x1 - big, c.y2, c.x2 + big, c.y2 + big),        # top
        )

        # Placement records: default everything at the core center.
        self.records: List[CellRecord] = [self._default_record(i) for i in range(n)]

        # Caches and cost accumulators, built by rebuild().
        self._shapes: List[TileSet] = [None] * n  # type: ignore[list-item]
        self._expanded: List[TileSet] = [None] * n  # type: ignore[list-item]
        self._pins: List[Dict[str, Tuple[float, float]]] = [dict() for _ in range(n)]
        self._net_spans: Dict[str, Tuple[float, float]] = {}
        self._overlaps: Dict[Tuple[int, int], float] = {}
        self._borders: List[float] = [0.0] * n
        self._c3: List[float] = [0.0] * n
        self._c1 = 0.0
        self._c2_raw = 0.0
        self._c3_total = 0.0
        self.rebuild()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _default_record(self, idx: int) -> CellRecord:
        cell = self.circuit.cells[self.names[idx]]
        if cell.fixed is not None:
            record = CellRecord(
                center=(cell.fixed.x, cell.fixed.y),
                orientation=cell.fixed.orientation,
            )
        else:
            record = CellRecord(center=(self.core.center.x, self.core.center.y))
        if isinstance(cell, CustomCell):
            record.aspect_ratio = cell.aspect.default()
            for g, (key, members) in enumerate(self._groups[idx]):
                pins = [cell.pins[m] for m in members]
                sides = frozenset.intersection(*(p.sides for p in pins))
                side = sorted(sides)[0] if sides else sorted(pins[0].sides)[0]
                record.pin_sites[key] = (side, g % cell.sites_per_edge)
        return record

    def _macro_side_density(self, idx: int) -> Optional[Dict[str, float]]:
        cell = self.circuit.cells[self.names[idx]]
        if not isinstance(cell, MacroCell):
            return None
        inst = cell.instances[0]
        edges = inst.shape.boundary_edges()
        side_len: Dict[str, float] = {s: 0.0 for s in _SIDES}
        for e in edges:
            side_len[e.side] += e.length
        counts: Dict[str, int] = {s: 0 for s in _SIDES}
        for pin in cell.pins.values():
            px, py = inst.pin_offset(pin)
            best = None
            best_d = None
            for e in edges:
                if e.is_vertical:
                    d = abs(px - e.position) + max(0.0, e.lo - py, py - e.hi)
                else:
                    d = abs(py - e.position) + max(0.0, e.lo - px, px - e.hi)
                if best_d is None or d < best_d:
                    best_d = d
                    best = e.side
            counts[best] += 1  # type: ignore[index]
        return {
            s: (counts[s] / side_len[s]) if side_len[s] > 0 else 0.0 for s in _SIDES
        }

    # ------------------------------------------------------------------
    # world-frame geometry
    # ------------------------------------------------------------------

    def cell(self, idx: int):
        return self.circuit.cells[self.names[idx]]

    def _local_shape(self, idx: int) -> TileSet:
        cell = self.cell(idx)
        record = self.records[idx]
        if isinstance(cell, MacroCell):
            return cell.instances[record.instance].shape
        assert record.aspect_ratio is not None
        return cell.shape_for(record.aspect_ratio)

    def _world_shape(self, idx: int) -> TileSet:
        record = self.records[idx]
        shape = self._local_shape(idx).transformed(record.orientation)
        return shape.translated(*record.center)

    def _expansions(self, idx: int, bbox: Rect) -> Dict[str, float]:
        """Outward expansion per world side (dynamic estimator or static)."""
        record = self.records[idx]
        static = self._static[idx]
        if not self.dynamic_expansion:
            return {s: static.get(s, 0.0) for s in _SIDES}
        est = self.estimator
        densities = self._side_density[idx]
        cx, cy = bbox.center.x, bbox.center.y
        if densities is None:
            dens = {LEFT: None, RIGHT: None, BOTTOM: None, TOP: None}
        else:
            inverse = _SIDE_MAP_INV[record.orientation]
            dens = {world: densities[inverse[world]] for world in _SIDES}
        return {
            LEFT: est.edge_expansion(bbox.x1, cy, dens[LEFT]),
            RIGHT: est.edge_expansion(bbox.x2, cy, dens[RIGHT]),
            BOTTOM: est.edge_expansion(cx, bbox.y1, dens[BOTTOM]),
            TOP: est.edge_expansion(cx, bbox.y2, dens[TOP]),
        }

    def _expanded_shape(self, idx: int, world: TileSet) -> TileSet:
        e = self._expansions(idx, world.bbox)
        return world.expanded_per_side(e[LEFT], e[BOTTOM], e[RIGHT], e[TOP])

    def _pin_positions(self, idx: int) -> Dict[str, Tuple[float, float]]:
        cell = self.cell(idx)
        record = self.records[idx]
        cx, cy = record.center
        out: Dict[str, Tuple[float, float]] = {}
        if isinstance(cell, MacroCell):
            inst = cell.instances[record.instance]
            for pin in cell.pins.values():
                lx, ly = inst.pin_offset(pin)
                wx, wy = ori.transform_point(record.orientation, lx, ly)
                out[pin.name] = (cx + wx, cy + wy)
            return out
        assert isinstance(cell, CustomCell) and record.aspect_ratio is not None
        width, height = cell.dimensions(record.aspect_ratio)
        nsites = cell.sites_per_edge
        for pin in cell.pins.values():
            if pin.is_committed:
                lx, ly = pin.offset  # type: ignore[misc]
            else:
                key, member_idx = self._group_of(idx, pin.name)
                side, start = record.pin_sites[key]
                site_idx = (start + member_idx) % nsites
                lx, ly = _site_position(side, site_idx, nsites, width, height)
            wx, wy = ori.transform_point(record.orientation, lx, ly)
            out[pin.name] = (cx + wx, cy + wy)
        return out

    def _group_of(self, idx: int, pin_name: str) -> Tuple[str, int]:
        for key, members in self._groups[idx]:
            if pin_name in members:
                return key, members.index(pin_name)
        raise KeyError(f"pin {pin_name!r} has no group on cell {self.names[idx]!r}")

    # ------------------------------------------------------------------
    # cost bookkeeping
    # ------------------------------------------------------------------

    def rebuild(self) -> None:
        """Recompute every cache and accumulator from the records."""
        n = len(self.names)
        for i in range(n):
            world = self._world_shape(i)
            self._shapes[i] = world
            self._expanded[i] = self._expanded_shape(i, world)
            self._pins[i] = self._pin_positions(i)
            self._c3[i] = self._cell_c3(i)
        self._net_spans = {
            net.name: self._net_span(net) for net in self.circuit.nets.values()
        }
        self._c1 = sum(
            self.circuit.nets[name].weighted_length(xs, ys)
            for name, (xs, ys) in self._net_spans.items()
        )
        self._overlaps = {}
        self._c2_raw = 0.0
        for i in range(n):
            self._borders[i] = self._border_overlap(i)
            self._c2_raw += self._borders[i]
            for j in range(i + 1, n):
                area = self._pair_overlap(i, j)
                if area > 0.0:
                    self._overlaps[(i, j)] = area
                    self._c2_raw += area
        self._c3_total = sum(self._c3)

    def _net_span(self, net: Net) -> Tuple[float, float]:
        pins = self._pins
        members = self._net_members[net.name]
        if not members:
            return (0.0, 0.0)
        x, y = pins[members[0][0]][members[0][1]]
        x_lo = x_hi = x
        y_lo = y_hi = y
        for idx, pin_name in members:
            x, y = pins[idx][pin_name]
            if x < x_lo:
                x_lo = x
            elif x > x_hi:
                x_hi = x
            if y < y_lo:
                y_lo = y
            elif y > y_hi:
                y_hi = y
        return (x_hi - x_lo, y_hi - y_lo)

    def _pair_overlap(self, i: int, j: int) -> float:
        return self._expanded[i].overlap_area(self._expanded[j])

    def _border_overlap(self, idx: int) -> float:
        total = 0.0
        exp = self._expanded[idx]
        for slab in self._slabs:
            if not exp.bbox.intersects(slab):
                continue
            for tile in exp.tiles:
                total += tile.overlap_area(slab)
        return total

    def _cell_c3(self, idx: int) -> float:
        cell = self.cell(idx)
        if not isinstance(cell, CustomCell) or not self._groups[idx]:
            return 0.0
        record = self.records[idx]
        assert record.aspect_ratio is not None
        width, height = cell.dimensions(record.aspect_ratio)
        nsites = cell.sites_per_edge
        pitch = cell.pin_pitch
        occupancy: Dict[Tuple[str, int], int] = {}
        for key, members in self._groups[idx]:
            side, start = record.pin_sites[key]
            for k in range(len(members)):
                site = (side, (start + k) % nsites)
                occupancy[site] = occupancy.get(site, 0) + 1
        penalty = 0.0
        for (side, _), count in occupancy.items():
            edge_len = height if side in (LEFT, RIGHT) else width
            capacity = max(1, int(edge_len / pitch / nsites))
            if count > capacity:
                excess = count - capacity + self.kappa
                penalty += excess * excess
        return penalty

    # ------------------------------------------------------------------
    # cost queries
    # ------------------------------------------------------------------

    def c1(self) -> float:
        """The TEIC (Eqn 6)."""
        return self._c1

    def c2_raw(self) -> float:
        """Total overlap area, before the p2 normalization (Eqn 7)."""
        return self._c2_raw

    def c3(self) -> float:
        """The pin-site penalty (Eqn 11)."""
        return self._c3_total

    def cost(self) -> float:
        return self._c1 + self.p2 * self._c2_raw + self._c3_total

    def teil(self) -> float:
        """Total estimated interconnect length: the TEIC with unit weights."""
        return sum(xs + ys for xs, ys in self._net_spans.values())

    def chip_bbox(self) -> Rect:
        """Bounding box of the expanded cells — the chip outline including
        the interconnect area the estimator reserved."""
        return Rect.bounding(s.bbox for s in self._expanded)

    def chip_area(self) -> float:
        return self.chip_bbox().area

    def world_shape(self, name: str) -> TileSet:
        return self._shapes[self.index[name]]

    def expanded_shape(self, name: str) -> TileSet:
        return self._expanded[self.index[name]]

    def pin_position(self, cell_name: str, pin_name: str) -> Tuple[float, float]:
        return self._pins[self.index[cell_name]][pin_name]

    def moves_per_iteration(self) -> int:
        return len(self.names)

    # ------------------------------------------------------------------
    # snapshotting
    # ------------------------------------------------------------------

    def _take_snapshot(self, idxs: Sequence[int]) -> _Snapshot:
        idx_set = set(idxs)
        nets = {name for i in idx_set for name in self._cell_nets[i]}
        overlaps: Dict[Tuple[int, int], float] = {}
        n = len(self.names)
        for i in idx_set:
            for j in range(n):
                if j == i:
                    continue
                key = (i, j) if i < j else (j, i)
                if key in self._overlaps and key not in overlaps:
                    overlaps[key] = self._overlaps[key]
        return _Snapshot(
            cost_before=self.cost(),
            records={i: self.records[i].copy() for i in idx_set},
            shapes={i: self._shapes[i] for i in idx_set},
            expanded={i: self._expanded[i] for i in idx_set},
            pins={i: self._pins[i] for i in idx_set},
            net_spans={name: self._net_spans[name] for name in nets},
            overlaps=overlaps,
            borders={i: self._borders[i] for i in idx_set},
            c3={i: self._c3[i] for i in idx_set},
            c1=self._c1,
            c2_raw=self._c2_raw,
            c3_total=self._c3_total,
        )

    def restore(self, snap: _Snapshot) -> None:
        idx_set = set(snap.records)
        n = len(self.names)
        # Remove every current overlap entry touching the snapped cells,
        # then put back the saved ones.
        for i in idx_set:
            for j in range(n):
                if j == i:
                    continue
                key = (i, j) if i < j else (j, i)
                self._overlaps.pop(key, None)
        self._overlaps.update(snap.overlaps)
        for i, record in snap.records.items():
            self.records[i] = record
            self._shapes[i] = snap.shapes[i]
            self._expanded[i] = snap.expanded[i]
            self._pins[i] = snap.pins[i]
            self._borders[i] = snap.borders[i]
            self._c3[i] = snap.c3[i]
        self._net_spans.update(snap.net_spans)
        self._c1 = snap.c1
        self._c2_raw = snap.c2_raw
        self._c3_total = snap.c3_total

    # ------------------------------------------------------------------
    # applying changes
    # ------------------------------------------------------------------

    def _refresh_cells(self, idxs: Sequence[int]) -> None:
        """Recompute caches and cost accumulators for the given cells."""
        idx_set = set(idxs)
        n = len(self.names)
        for i in idx_set:
            world = self._world_shape(i)
            self._shapes[i] = world
            self._expanded[i] = self._expanded_shape(i, world)
            self._pins[i] = self._pin_positions(i)
            new_c3 = self._cell_c3(i)
            self._c3_total += new_c3 - self._c3[i]
            self._c3[i] = new_c3
        # Net spans of every net touching a refreshed cell.
        nets = {name for i in idx_set for name in self._cell_nets[i]}
        for name in nets:
            net = self.circuit.nets[name]
            old = self._net_spans[name]
            new = self._net_span(net)
            self._net_spans[name] = new
            self._c1 += net.weighted_length(*new) - net.weighted_length(*old)
        # Overlaps touching refreshed cells.
        for i in idx_set:
            old_border = self._borders[i]
            new_border = self._border_overlap(i)
            self._borders[i] = new_border
            self._c2_raw += new_border - old_border
            for j in range(n):
                if j == i or (j in idx_set and j < i):
                    continue  # pair handled once
                key = (i, j) if i < j else (j, i)
                old = self._overlaps.pop(key, 0.0)
                new = self._pair_overlap(i, j)
                if new > 0.0:
                    self._overlaps[key] = new
                self._c2_raw += new - old

    def move_cell(
        self,
        idx: int,
        center: Optional[Tuple[float, float]] = None,
        orientation: Optional[int] = None,
        instance: Optional[int] = None,
        aspect_ratio: Optional[float] = None,
    ) -> Tuple[float, _Snapshot]:
        """Apply a single-cell change; returns (cost delta, snapshot)."""
        snap = self._take_snapshot([idx])
        record = self.records[idx]
        if center is not None:
            record.center = center
        if orientation is not None:
            record.orientation = orientation
        if instance is not None:
            record.instance = instance
        if aspect_ratio is not None:
            record.aspect_ratio = aspect_ratio
        self._refresh_cells([idx])
        return (self.cost() - snap.cost_before, snap)

    def swap_cells(self, i: int, j: int) -> Tuple[float, _Snapshot]:
        """Interchange the centers of two cells (Eqn-free §3.2.1 A2)."""
        if i == j:
            raise ValueError("cannot swap a cell with itself")
        snap = self._take_snapshot([i, j])
        ci, cj = self.records[i].center, self.records[j].center
        self.records[i].center = cj
        self.records[j].center = ci
        self._refresh_cells([i, j])
        return (self.cost() - snap.cost_before, snap)

    def swap_cells_inverted(self, i: int, j: int) -> Tuple[float, _Snapshot]:
        """Interchange with both cells' aspect ratios inverted (the retry
        of §3.2.1 when the plain interchange is rejected)."""
        if i == j:
            raise ValueError("cannot swap a cell with itself")
        snap = self._take_snapshot([i, j])
        ci, cj = self.records[i].center, self.records[j].center
        self.records[i].center = cj
        self.records[j].center = ci
        for k in (i, j):
            self._invert_record_aspect(k)
        self._refresh_cells([i, j])
        return (self.cost() - snap.cost_before, snap)

    def _invert_record_aspect(self, idx: int) -> None:
        record = self.records[idx]
        cell = self.cell(idx)
        if isinstance(cell, CustomCell):
            assert record.aspect_ratio is not None
            record.aspect_ratio = cell.aspect.inverted(record.aspect_ratio)
        else:
            record.orientation = ori.aspect_inverting_orientation(record.orientation)

    def move_cell_inverted(
        self, idx: int, center: Tuple[float, float]
    ) -> Tuple[float, _Snapshot]:
        """Displace with the aspect ratio inverted (§3.2.1's second attempt:
        macro cells rotate 90 degrees, custom cells invert their ratio)."""
        snap = self._take_snapshot([idx])
        self.records[idx].center = center
        self._invert_record_aspect(idx)
        self._refresh_cells([idx])
        return (self.cost() - snap.cost_before, snap)

    def move_pin_group(
        self, idx: int, group_key: str, side: str, start: int
    ) -> Tuple[float, _Snapshot]:
        """Reassign an uncommitted pin group to new sites (§2.4)."""
        snap = self._take_snapshot([idx])
        self.records[idx].pin_sites[group_key] = (side, start)
        self._refresh_cells([idx])
        return (self.cost() - snap.cost_before, snap)

    def set_static_expansions(
        self, expansions: Dict[str, Dict[str, float]]
    ) -> None:
        """Switch to stage-2 mode: per-cell, per-world-side static margins
        (half the required width of each adjacent channel, §4.3) replace
        the dynamic estimator.  Rebuilds all caches."""
        self._static = [
            dict(expansions.get(name, {})) for name in self.names
        ]
        self.dynamic_expansion = False
        self.rebuild()

    # ------------------------------------------------------------------
    # initial placement
    # ------------------------------------------------------------------

    def randomize(self, rng: random.Random) -> None:
        """Random initial configuration (§3.2.1: the initial state has no
        influence on the final TEIC, so a random start is used)."""
        for idx in range(len(self.names)):
            if not self.movable[idx]:
                continue
            record = self.records[idx]
            record.center = (
                rng.uniform(self.core.x1, self.core.x2),
                rng.uniform(self.core.y1, self.core.y2),
            )
            record.orientation = rng.randrange(ori.N_ORIENTATIONS)
            cell = self.cell(idx)
            if isinstance(cell, MacroCell) and cell.num_instances > 1:
                record.instance = rng.randrange(cell.num_instances)
        self.rebuild()

    def enforce_fixed(self) -> None:
        """Reset every pre-placed cell to its mandated position (used by
        placers that do not natively understand fixed cells)."""
        changed = False
        for idx in range(len(self.names)):
            cell = self.cell(idx)
            if cell.fixed is None:
                continue
            record = self.records[idx]
            target = ((cell.fixed.x, cell.fixed.y), cell.fixed.orientation)
            if (record.center, record.orientation) != target:
                record.center = (cell.fixed.x, cell.fixed.y)
                record.orientation = cell.fixed.orientation
                changed = True
        if changed:
            self.rebuild()

    def clamp_to_core(self, point: Tuple[float, float]) -> Tuple[float, float]:
        """Clamp a candidate cell center into the core region."""
        return (
            min(max(point[0], self.core.x1), self.core.x2),
            min(max(point[1], self.core.y1), self.core.y2),
        )


def _site_position(
    side: str, site_idx: int, nsites: int, width: float, height: float
) -> Tuple[float, float]:
    fraction = (site_idx + 0.5) / nsites
    hw, hh = width / 2.0, height / 2.0
    if side == LEFT:
        return (-hw, -hh + fraction * height)
    if side == RIGHT:
        return (hw, -hh + fraction * height)
    if side == BOTTOM:
        return (-hw + fraction * width, -hh)
    return (-hw + fraction * width, hh)
