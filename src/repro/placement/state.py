"""The placement state: cell positions, caches, and the three-term cost.

This is the mutable object both annealing stages operate on.  It tracks,
incrementally:

* ``C1`` — the TEIC of Eqn 6 (weighted net spans over exact pin positions),
* ``C2`` — the overlap penalty of Eqns 7-8 over *expanded* cell tiles
  (dynamic interconnect-area borders in stage 1, static per-side
  expansions in stage 2), including overlap with the four dummy border
  cells that keep cells inside the core (footnote 16),
* ``C3`` — the pin-site capacity penalty of Eqns 10-11 for custom cells.

Moves are applied through ``move_cell`` / ``swap_cells`` /
``move_pin_group``, each of which returns the cost delta and a snapshot
token that ``restore`` undoes exactly (no float drift on rejection).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..estimator import CorePlan
from ..geometry import BOTTOM, LEFT, RIGHT, TOP, Rect, TileSet
from ..geometry import orientation as ori
from ..netlist import Circuit, CustomCell, MacroCell, Net
from .spatial import UniformGridIndex

#: Default kappa of Eqn 10 — drives pin-site overflow to zero late in stage 1.
DEFAULT_KAPPA = 5.0

#: Per-cell cap on memoized oriented shapes / pin offsets (custom-cell
#: aspect ratios are continuous, so those cache keys are unbounded).
_SHAPE_CACHE_LIMIT = 64

#: Custom-cell pin-offset combinations (sides x sites per group) are
#: larger but each entry is a handful of floats.
_PIN_CACHE_LIMIT = 512

_SIDES = (LEFT, RIGHT, BOTTOM, TOP)
_SIDE_DIRS = {LEFT: (-1.0, 0.0), RIGHT: (1.0, 0.0), BOTTOM: (0.0, -1.0), TOP: (0.0, 1.0)}


def _compute_world_side(canonical_side: str, orientation: int) -> str:
    dx, dy = _SIDE_DIRS[canonical_side]
    wx, wy = ori.transform_point(orientation, dx, dy)
    for side, (sx, sy) in _SIDE_DIRS.items():
        if (sx, sy) == (wx, wy):
            return side
    raise AssertionError("orientation must permute the four sides")


#: orientation -> {canonical side -> world side} (precomputed: the mapping
#: sits on the stage-1 hot path via the dynamic expansion).
_SIDE_MAP = tuple(
    {s: _compute_world_side(s, o) for s in _SIDES}
    for o in range(ori.N_ORIENTATIONS)
)

#: orientation -> {world side -> canonical side} (the inverse mapping).
_SIDE_MAP_INV = tuple(
    {world: canonical for canonical, world in _SIDE_MAP[o].items()}
    for o in range(ori.N_ORIENTATIONS)
)


def world_side(canonical_side: str, orientation: int) -> str:
    """The world-frame side that a canonical cell side faces after the
    orientation transform (e.g. LEFT under R90 faces BOTTOM)."""
    return _SIDE_MAP[orientation][canonical_side]


@dataclass(slots=True)
class CellRecord:
    """Mutable placement attributes of one cell."""

    center: Tuple[float, float]
    orientation: int = 0
    instance: int = 0
    aspect_ratio: Optional[float] = None
    #: custom cells: pin-group key -> (canonical side, starting site index).
    pin_sites: Dict[str, Tuple[str, int]] = field(default_factory=dict)

    def copy(self) -> "CellRecord":
        # Manual field copy: dataclasses.replace() is measurably slower
        # and this runs inside every snapshot.
        return CellRecord(
            self.center,
            self.orientation,
            self.instance,
            self.aspect_ratio,
            dict(self.pin_sites),
        )


@dataclass(slots=True)
class _Snapshot:
    """Everything needed to restore the state after a rejected move."""

    cost_before: float
    records: Dict[int, CellRecord]
    shapes: Dict[int, TileSet]
    expanded: Dict[int, TileSet]
    pins: Dict[int, Dict[str, Tuple[float, float]]]
    net_spans: Dict[str, Tuple[float, float]]
    overlaps: Dict[Tuple[int, int], float]
    borders: Dict[int, float]
    c3: Dict[int, float]
    c1: float
    c2_raw: float
    c3_total: float
    #: False for moves that cannot change any cell geometry (pin-group
    #: reassignment): shapes, the grid, borders, and overlaps are known
    #: unchanged, so snapshot and restore skip them entirely.
    geometry: bool = True


class PlacementState:
    """Placement of a circuit inside a core region, with incremental cost."""

    def __init__(
        self,
        circuit: Circuit,
        plan: CorePlan,
        p2: float = 1.0,
        kappa: float = DEFAULT_KAPPA,
        dynamic_expansion: bool = True,
        static_expansions: Optional[Dict[str, Dict[str, float]]] = None,
    ) -> None:
        self.circuit = circuit
        self.plan = plan
        self.core = plan.core
        self.estimator = plan.estimator
        self.p2 = p2
        self.kappa = kappa
        self.dynamic_expansion = dynamic_expansion

        self.names: List[str] = list(circuit.cells)
        self.index: Dict[str, int] = {n: i for i, n in enumerate(self.names)}
        n = len(self.names)

        #: Pre-placed cells (FixedPlacement) are never moved or reshaped.
        self.movable: List[bool] = [
            not circuit.cells[name].is_fixed for name in self.names
        ]
        self._is_macro: List[bool] = [
            isinstance(circuit.cells[name], MacroCell) for name in self.names
        ]

        # Static (stage-2) per-world-side expansions, name -> side -> margin.
        self._static: List[Dict[str, float]] = [
            dict((static_expansions or {}).get(name, {})) for name in self.names
        ]

        # Net membership: cell idx -> list of net names; net name -> the
        # (cell index, pin name) pairs its span is computed from.
        self._cell_nets: List[List[str]] = [[] for _ in range(n)]
        self._net_members: Dict[str, List[Tuple[int, str]]] = {}
        for net in circuit.nets.values():
            members = []
            touched = set()
            for ref in net.pins:
                idx = self.index[ref.cell]
                members.append((idx, ref.pin))
                if idx not in touched:
                    touched.add(idx)
                    self._cell_nets[idx].append(net.name)
            self._net_members[net.name] = members

        # Canonical-side pin densities for macro cells (static per instance).
        self._side_density: List[Optional[Dict[str, float]]] = [
            self._macro_side_density(i) for i in range(n)
        ]

        # Pin-group structure for custom cells: idx -> [(key, [pin names])].
        self._groups: List[List[Tuple[str, List[str]]]] = []
        for name in self.names:
            cell = circuit.cells[name]
            if isinstance(cell, CustomCell):
                groups = [
                    (key, [p.name for p in pins])
                    for key, pins in cell.pin_groups().items()
                ]
                self._groups.append(groups)
            else:
                self._groups.append([])
        # Inverse lookup, idx -> {pin name -> (group key, member index)}:
        # _group_of sits on the refresh hot path (every uncommitted pin,
        # every move), so the membership scan is precomputed once.
        self._pin_group_of: List[Dict[str, Tuple[str, int]]] = [
            {
                pin: (key, k)
                for key, members in groups
                for k, pin in enumerate(members)
            }
            for groups in self._groups
        ]

        # Border slabs (the four dummy cells of footnote 16).
        big = 10.0 * max(self.core.width, self.core.height)
        c = self.core
        self._slabs = (
            Rect(c.x1 - big, c.y1 - big, c.x1, c.y2 + big),        # left
            Rect(c.x2, c.y1 - big, c.x2 + big, c.y2 + big),        # right
            Rect(c.x1 - big, c.y1 - big, c.x2 + big, c.y1),        # bottom
            Rect(c.x1 - big, c.y2, c.x2 + big, c.y2 + big),        # top
        )

        # Placement records: default everything at the core center.
        self.records: List[CellRecord] = [self._default_record(i) for i in range(n)]

        # Memoized oriented local shapes and (macro) world-frame pin
        # offsets: a displacement changes neither, so the per-move work
        # reduces to one translation.  Keys are (instance|aspect,
        # orientation); custom-cell aspect ratios are continuous, so
        # those caches are bounded (cleared when they grow past
        # _SHAPE_CACHE_LIMIT entries).
        self._shape_cache: List[Dict[Tuple, TileSet]] = [dict() for _ in range(n)]
        self._pin_offset_cache: List[
            Dict[Tuple, Dict[str, Tuple[float, float]]]
        ] = [dict() for _ in range(n)]
        self._c3_cache: List[Dict[Tuple, float]] = [dict() for _ in range(n)]

        # Caches and cost accumulators, built by rebuild().
        self._shapes: List[TileSet] = [None] * n  # type: ignore[list-item]
        self._expanded: List[TileSet] = [None] * n  # type: ignore[list-item]
        self._pins: List[Dict[str, Tuple[float, float]]] = [dict() for _ in range(n)]
        self._net_spans: Dict[str, Tuple[float, float]] = {}
        self._overlaps: Dict[Tuple[int, int], float] = {}
        #: idx -> indices it currently overlaps (mirror of _overlaps, so
        #: snapshot/restore touch only actual partners).
        self._adj: List[Set[int]] = [set() for _ in range(n)]
        #: Broad-phase index over expanded-cell bboxes (built by rebuild).
        self._grid: UniformGridIndex = UniformGridIndex(1.0)
        self._borders: List[float] = [0.0] * n
        self._c3: List[float] = [0.0] * n
        self._c1 = 0.0
        self._c2_raw = 0.0
        self._c3_total = 0.0
        self.rebuild()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _default_record(self, idx: int) -> CellRecord:
        cell = self.circuit.cells[self.names[idx]]
        if cell.fixed is not None:
            record = CellRecord(
                center=(cell.fixed.x, cell.fixed.y),
                orientation=cell.fixed.orientation,
            )
        else:
            record = CellRecord(center=(self.core.center.x, self.core.center.y))
        if isinstance(cell, CustomCell):
            record.aspect_ratio = cell.aspect.default()
            for g, (key, members) in enumerate(self._groups[idx]):
                pins = [cell.pins[m] for m in members]
                sides = frozenset.intersection(*(p.sides for p in pins))
                side = sorted(sides)[0] if sides else sorted(pins[0].sides)[0]
                record.pin_sites[key] = (side, g % cell.sites_per_edge)
        return record

    def _macro_side_density(self, idx: int) -> Optional[Dict[str, float]]:
        cell = self.circuit.cells[self.names[idx]]
        if not isinstance(cell, MacroCell):
            return None
        inst = cell.instances[0]
        edges = inst.shape.boundary_edges()
        side_len: Dict[str, float] = {s: 0.0 for s in _SIDES}
        for e in edges:
            side_len[e.side] += e.length
        counts: Dict[str, int] = {s: 0 for s in _SIDES}
        for pin in cell.pins.values():
            px, py = inst.pin_offset(pin)
            best = None
            best_d = None
            for e in edges:
                if e.is_vertical:
                    d = abs(px - e.position) + max(0.0, e.lo - py, py - e.hi)
                else:
                    d = abs(py - e.position) + max(0.0, e.lo - px, px - e.hi)
                if best_d is None or d < best_d:
                    best_d = d
                    best = e.side
            counts[best] += 1  # type: ignore[index]
        return {
            s: (counts[s] / side_len[s]) if side_len[s] > 0 else 0.0 for s in _SIDES
        }

    # ------------------------------------------------------------------
    # world-frame geometry
    # ------------------------------------------------------------------

    def cell(self, idx: int):
        return self.circuit.cells[self.names[idx]]

    def _local_shape(self, idx: int) -> TileSet:
        cell = self.cell(idx)
        record = self.records[idx]
        if isinstance(cell, MacroCell):
            return cell.instances[record.instance].shape
        assert record.aspect_ratio is not None
        return cell.shape_for(record.aspect_ratio)

    def _oriented_shape(self, idx: int) -> TileSet:
        """The cell's shape in its current orientation, origin-centered
        (memoized: a displacement changes neither input)."""
        record = self.records[idx]
        if self._is_macro[idx]:
            key: Tuple = (record.instance, record.orientation)
        else:
            key = (record.aspect_ratio, record.orientation)
        cache = self._shape_cache[idx]
        shape = cache.get(key)
        if shape is None:
            if len(cache) >= _SHAPE_CACHE_LIMIT:
                cache.clear()
            shape = self._local_shape(idx).transformed(record.orientation)
            cache[key] = shape
        return shape

    def _world_shape(self, idx: int) -> TileSet:
        return self._oriented_shape(idx).translated(*self.records[idx].center)

    def _expansions(
        self, idx: int, x1: float, y1: float, x2: float, y2: float
    ) -> Tuple[float, float, float, float]:
        """Outward (left, bottom, right, top) expansion of a cell whose
        world bbox is (x1, y1, x2, y2) — the dynamic estimator of §2.2,
        or the static table."""
        if not self.dynamic_expansion:
            static = self._static[idx]
            return (
                static.get(LEFT, 0.0),
                static.get(BOTTOM, 0.0),
                static.get(RIGHT, 0.0),
                static.get(TOP, 0.0),
            )
        densities = self._side_density[idx]
        if densities is None:
            d_left = d_bottom = d_right = d_top = None
        else:
            inverse = _SIDE_MAP_INV[self.records[idx].orientation]
            d_left = densities[inverse[LEFT]]
            d_bottom = densities[inverse[BOTTOM]]
            d_right = densities[inverse[RIGHT]]
            d_top = densities[inverse[TOP]]
        return self.estimator.side_expansions(
            x1, y1, x2, y2, d_left, d_bottom, d_right, d_top
        )

    def _expanded_shape(self, idx: int, world: TileSet) -> TileSet:
        bbox = world.bbox
        left, bottom, right, top = self._expansions(
            idx, bbox.x1, bbox.y1, bbox.x2, bbox.y2
        )
        return world.expanded_per_side(left, bottom, right, top)

    def _pin_positions(self, idx: int) -> Dict[str, Tuple[float, float]]:
        record = self.records[idx]
        cx, cy = record.center
        if self._is_macro[idx]:
            # Macro pin offsets in the world frame depend only on the
            # instance and orientation — memoized, so a displacement
            # costs one add per pin.
            key = (record.instance, record.orientation)
            offsets = self._pin_offset_cache[idx].get(key)
            if offsets is None:
                cell = self.cell(idx)
                inst = cell.instances[record.instance]
                offsets = {}
                for pin in cell.pins.values():
                    lx, ly = inst.pin_offset(pin)
                    offsets[pin.name] = ori.transform_point(
                        record.orientation, lx, ly
                    )
                self._pin_offset_cache[idx][key] = offsets
            return {
                name: (cx + wx, cy + wy) for name, (wx, wy) in offsets.items()
            }
        cell = self.cell(idx)
        assert isinstance(cell, CustomCell) and record.aspect_ratio is not None
        # Custom-cell offsets depend on (aspect, orientation, site
        # assignment); the sites are discrete, so the combinations recur
        # heavily during pin-group annealing.  pin_sites keys are fixed
        # after construction, so the value tuple is a stable signature.
        sig = (
            record.aspect_ratio,
            record.orientation,
            tuple(record.pin_sites.values()),
        )
        cache = self._pin_offset_cache[idx]
        offsets = cache.get(sig)
        if offsets is None:
            if len(cache) >= _PIN_CACHE_LIMIT:
                cache.clear()
            width, height = cell.dimensions(record.aspect_ratio)
            nsites = cell.sites_per_edge
            offsets = {}
            for pin in cell.pins.values():
                if pin.is_committed:
                    lx, ly = pin.offset  # type: ignore[misc]
                else:
                    key, member_idx = self._group_of(idx, pin.name)
                    side, start = record.pin_sites[key]
                    site_idx = (start + member_idx) % nsites
                    lx, ly = _site_position(side, site_idx, nsites, width, height)
                offsets[pin.name] = ori.transform_point(
                    record.orientation, lx, ly
                )
            cache[sig] = offsets
        return {name: (cx + wx, cy + wy) for name, (wx, wy) in offsets.items()}

    def _group_of(self, idx: int, pin_name: str) -> Tuple[str, int]:
        try:
            return self._pin_group_of[idx][pin_name]
        except KeyError:
            raise KeyError(
                f"pin {pin_name!r} has no group on cell {self.names[idx]!r}"
            ) from None

    # ------------------------------------------------------------------
    # cost bookkeeping
    # ------------------------------------------------------------------

    def rebuild(self) -> None:
        """Recompute every cache and accumulator from the records.

        This is the from-scratch reference the incremental bookkeeping is
        tested against, so the overlap pass deliberately stays the plain
        all-pairs loop (bbox-rejected); the broad-phase grid and the
        adjacency map are rebuilt alongside it.
        """
        n = len(self.names)
        for i in range(n):
            world = self._world_shape(i)
            self._shapes[i] = world
            self._expanded[i] = self._expanded_shape(i, world)
            self._pins[i] = self._pin_positions(i)
            self._c3[i] = self._cell_c3(i)
        self._net_spans = {
            net.name: self._net_span(net) for net in self.circuit.nets.values()
        }
        self._c1 = sum(
            self.circuit.nets[name].weighted_length(xs, ys)
            for name, (xs, ys) in self._net_spans.items()
        )
        self._grid = UniformGridIndex.for_bboxes(
            [shape.bbox for shape in self._expanded]
        )
        for i in range(n):
            self._grid.insert(i, self._expanded[i].bbox)
        self._overlaps = {}
        self._adj = [set() for _ in range(n)]
        self._c2_raw = 0.0
        for i in range(n):
            self._borders[i] = self._border_overlap(i)
            self._c2_raw += self._borders[i]
            for j in range(i + 1, n):
                area = self._pair_overlap(i, j)
                if area > 0.0:
                    self._overlaps[(i, j)] = area
                    self._adj[i].add(j)
                    self._adj[j].add(i)
                    self._c2_raw += area
        self._c3_total = sum(self._c3)

    def _net_span(self, net: Net) -> Tuple[float, float]:
        pins = self._pins
        members = self._net_members[net.name]
        if not members:
            return (0.0, 0.0)
        x, y = pins[members[0][0]][members[0][1]]
        x_lo = x_hi = x
        y_lo = y_hi = y
        for idx, pin_name in members:
            x, y = pins[idx][pin_name]
            if x < x_lo:
                x_lo = x
            elif x > x_hi:
                x_hi = x
            if y < y_lo:
                y_lo = y
            elif y > y_hi:
                y_hi = y
        return (x_hi - x_lo, y_hi - y_lo)

    def _pair_overlap(self, i: int, j: int) -> float:
        return self._expanded[i].overlap_area(self._expanded[j])

    def _border_overlap(self, idx: int, exp: Optional[TileSet] = None) -> float:
        if exp is None:
            exp = self._expanded[idx]
        bbox = exp.bbox
        core = self.core
        # The slabs tile the plane outside the core, so a shape whose
        # bbox stays inside the core cannot touch any of them — the
        # common case for every in-core move.
        if (
            bbox.x1 >= core.x1
            and bbox.x2 <= core.x2
            and bbox.y1 >= core.y1
            and bbox.y2 <= core.y2
        ):
            return 0.0
        total = 0.0
        for slab in self._slabs:
            if not bbox.intersects(slab):
                continue
            for tile in exp.tiles:
                total += tile.overlap_area(slab)
        return total

    def _cell_c3(self, idx: int) -> float:
        if self._is_macro[idx] or not self._groups[idx]:
            return 0.0
        cell = self.cell(idx)
        assert isinstance(cell, CustomCell)
        record = self.records[idx]
        assert record.aspect_ratio is not None
        # The penalty depends only on the aspect ratio and the site
        # assignment; both are discrete-ish under annealing, so repeats
        # dominate (same signature scheme as the pin-offset cache).
        sig = (record.aspect_ratio, self.kappa, tuple(record.pin_sites.values()))
        cache = self._c3_cache[idx]
        hit = cache.get(sig)
        if hit is not None:
            return hit
        if len(cache) >= _PIN_CACHE_LIMIT:
            cache.clear()
        width, height = cell.dimensions(record.aspect_ratio)
        nsites = cell.sites_per_edge
        pitch = cell.pin_pitch
        occupancy: Dict[Tuple[str, int], int] = {}
        for key, members in self._groups[idx]:
            side, start = record.pin_sites[key]
            for k in range(len(members)):
                site = (side, (start + k) % nsites)
                occupancy[site] = occupancy.get(site, 0) + 1
        penalty = 0.0
        for (side, _), count in occupancy.items():
            edge_len = height if side in (LEFT, RIGHT) else width
            capacity = max(1, int(edge_len / pitch / nsites))
            if count > capacity:
                excess = count - capacity + self.kappa
                penalty += excess * excess
        cache[sig] = penalty
        return penalty

    # ------------------------------------------------------------------
    # cost queries
    # ------------------------------------------------------------------

    def c1(self) -> float:
        """The TEIC (Eqn 6)."""
        return self._c1

    def c2_raw(self) -> float:
        """Total overlap area, before the p2 normalization (Eqn 7)."""
        return self._c2_raw

    def c3(self) -> float:
        """The pin-site penalty (Eqn 11)."""
        return self._c3_total

    def cost(self) -> float:
        return self._c1 + self.p2 * self._c2_raw + self._c3_total

    def teil(self) -> float:
        """Total estimated interconnect length: the TEIC with unit weights."""
        return sum(xs + ys for xs, ys in self._net_spans.values())

    def net_spans(self) -> Dict[str, Tuple[float, float]]:
        """name -> (x span, y span) of every net — the public accessor
        (subclasses may keep the span bookkeeping elsewhere)."""
        return dict(self._net_spans)

    def chip_bbox(self) -> Rect:
        """Bounding box of the expanded cells — the chip outline including
        the interconnect area the estimator reserved."""
        return Rect.bounding(s.bbox for s in self._expanded)

    def chip_area(self) -> float:
        return self.chip_bbox().area

    def world_shape(self, name: str) -> TileSet:
        idx = self.index[name]
        shape = self._shapes[idx]
        if shape is None:
            # _refresh_cells leaves the world shape stale (only the
            # expanded shape feeds the cost terms); materialize on demand.
            shape = self._shapes[idx] = self._world_shape(idx)
        return shape

    def expanded_shape(self, name: str) -> TileSet:
        return self._expanded[self.index[name]]

    def pin_position(self, cell_name: str, pin_name: str) -> Tuple[float, float]:
        return self._pins[self.index[cell_name]][pin_name]

    def moves_per_iteration(self) -> int:
        return len(self.names)

    # ------------------------------------------------------------------
    # snapshotting
    # ------------------------------------------------------------------

    def _take_snapshot(
        self, idxs: Sequence[int], geometry: bool = True
    ) -> _Snapshot:
        overlaps: Dict[Tuple[int, int], float] = {}
        spans = self._net_spans
        if len(idxs) == 1:
            # The single-cell path (every displacement): _cell_nets
            # entries are duplicate-free, so no set building, and the
            # per-cell maps are one-entry dict literals.
            i = idxs[0]
            if geometry:
                current = self._overlaps
                for j in self._adj[i]:
                    key = (i, j) if i < j else (j, i)
                    overlaps[key] = current[key]
            return _Snapshot(
                self.cost(),
                {i: self.records[i].copy()},
                {i: self._shapes[i]},
                {i: self._expanded[i]},
                {i: self._pins[i]},
                {name: spans[name] for name in self._cell_nets[i]},
                overlaps,
                {i: self._borders[i]},
                {i: self._c3[i]},
                self._c1,
                self._c2_raw,
                self._c3_total,
                geometry,
            )
        idx_set = set(idxs)
        nets = {name for i in idx_set for name in self._cell_nets[i]}
        # Only actual overlap partners are recorded (the adjacency map
        # mirrors _overlaps exactly); restore reconstructs both from it.
        if geometry:
            for i in idx_set:
                for j in self._adj[i]:
                    key = (i, j) if i < j else (j, i)
                    if key not in overlaps:
                        overlaps[key] = self._overlaps[key]
        return _Snapshot(
            cost_before=self.cost(),
            records={i: self.records[i].copy() for i in idx_set},
            shapes={i: self._shapes[i] for i in idx_set},
            expanded={i: self._expanded[i] for i in idx_set},
            pins={i: self._pins[i] for i in idx_set},
            net_spans={name: self._net_spans[name] for name in nets},
            overlaps=overlaps,
            borders={i: self._borders[i] for i in idx_set},
            c3={i: self._c3[i] for i in idx_set},
            c1=self._c1,
            c2_raw=self._c2_raw,
            c3_total=self._c3_total,
            geometry=geometry,
        )

    def restore(self, snap: _Snapshot) -> None:
        if not snap.geometry:
            # The move could not have touched shapes, the grid, borders,
            # or overlaps — only pins, spans, and the pin-site penalty.
            for i, record in snap.records.items():
                self.records[i] = record
                self._pins[i] = snap.pins[i]
                self._c3[i] = snap.c3[i]
            self._net_spans.update(snap.net_spans)
            self._c1 = snap.c1
            self._c3_total = snap.c3_total
            return
        adj = self._adj
        overlaps = self._overlaps
        # Remove every current overlap entry touching the snapped cells
        # (the adjacency map lists exactly those), then put back the
        # saved ones and their adjacency edges.  adj[i] is not mutated
        # while it is iterated (cells are never self-adjacent), so no
        # defensive copy is needed.
        for i in snap.records:
            ai = adj[i]
            for j in ai:
                overlaps.pop((i, j) if i < j else (j, i), None)
                adj[j].discard(i)
            ai.clear()
        overlaps.update(snap.overlaps)
        for i, j in snap.overlaps:
            adj[i].add(j)
            adj[j].add(i)
        for i, record in snap.records.items():
            self.records[i] = record
            self._shapes[i] = snap.shapes[i]
            self._expanded[i] = snap.expanded[i]
            self._grid.update(i, snap.expanded[i].bbox)
            self._pins[i] = snap.pins[i]
            self._borders[i] = snap.borders[i]
            self._c3[i] = snap.c3[i]
        self._net_spans.update(snap.net_spans)
        self._c1 = snap.c1
        self._c2_raw = snap.c2_raw
        self._c3_total = snap.c3_total

    # ------------------------------------------------------------------
    # applying changes
    # ------------------------------------------------------------------

    def _refresh_cells(self, idxs: Sequence[int], geometry: bool = True) -> None:
        """Recompute caches and cost accumulators for the given cells.

        ``geometry=False`` is the pin-group fast path: the move touched
        only pin-site assignments, so shapes, the grid, borders, and
        overlaps are unchanged by construction and skipped wholesale.
        """
        # Multi-cell refreshes iterate in sorted order everywhere floats
        # are accumulated: the summation order must be a function of the
        # placement alone (not of set insertion history or string hash
        # seeds), or a checkpoint-resumed process would accumulate the
        # same deltas in a different order and drift off the original
        # run's trajectory by ULPs.
        if len(idxs) == 1:
            idx_set: Sequence[int] = idxs
            members: Optional[Set[int]] = None
            nets: Iterable[str] = self._cell_nets[idxs[0]]
        else:
            members = set(idxs)
            idx_set = sorted(members)
            nets = sorted({name for i in idx_set for name in self._cell_nets[i]})
        for i in idx_set:
            if geometry:
                # The world (translated, unexpanded) shape is not needed
                # by any cost term — leave it stale and let world_shape()
                # materialize it on demand.  The expanded set is built in
                # one pass from the cached oriented shape; the composed
                # arithmetic matches translate-then-expand exactly.
                oriented = self._oriented_shape(i)
                cx, cy = self.records[i].center
                obb = oriented.bbox
                left, bottom, right, top = self._expansions(
                    i, obb.x1 + cx, obb.y1 + cy, obb.x2 + cx, obb.y2 + cy
                )
                expanded = oriented.translated_expanded(
                    cx, cy, left, bottom, right, top
                )
                self._shapes[i] = None
                self._expanded[i] = expanded
                self._grid.update(i, expanded.bbox)
            self._pins[i] = self._pin_positions(i)
            if self._groups[i]:
                new_c3 = self._cell_c3(i)
                self._c3_total += new_c3 - self._c3[i]
                self._c3[i] = new_c3
        # Net spans of every net touching a refreshed cell.  The delta is
        # accumulated with weighted_length's exact expression inlined
        # ((x*h + y*v), then the subtraction).
        circuit_nets = self.circuit.nets
        spans = self._net_spans
        for name in nets:
            net = circuit_nets[name]
            old_x, old_y = spans[name]
            new = self._net_span(net)
            spans[name] = new
            h = net.h_weight
            v = net.v_weight
            self._c1 += (new[0] * h + new[1] * v) - (old_x * h + old_y * v)
        if not geometry:
            return
        # Overlaps touching refreshed cells.  The broad phase: the grid's
        # candidates cover every cell the new bbox may intersect (gained
        # overlaps), and the adjacency map lists the current partners
        # (overlaps that may vanish); anything outside the union cannot
        # change its pair term.
        overlaps = self._overlaps
        adj = self._adj
        expanded = self._expanded
        for i in idx_set:
            old_border = self._borders[i]
            new_border = self._border_overlap(i)
            self._borders[i] = new_border
            self._c2_raw += new_border - old_border
            partners = self._grid.candidates(i)
            partners |= adj[i]
            exp_i = expanded[i]
            single_i = len(exp_i._tiles) == 1
            bbox_i = exp_i.bbox
            bx1, by1, bx2, by2 = bbox_i.x1, bbox_i.y1, bbox_i.x2, bbox_i.y2
            # sorted(): the c2 accumulation order over partners must not
            # depend on the candidate set's insertion history (see above).
            for j in sorted(partners):
                if members is not None and j in members and j < i:
                    continue  # pair handled once
                key = (i, j) if i < j else (j, i)
                old = overlaps.pop(key, 0.0)
                exp_j = expanded[j]
                bbox_j = exp_j.bbox
                # Inline bbox reject (touching boxes share no area, so
                # >=/<= is exact) before the tile-level narrow phase.
                if (
                    bbox_j.x1 >= bx2
                    or bbox_j.x2 <= bx1
                    or bbox_j.y1 >= by2
                    or bbox_j.y2 <= by1
                ):
                    new = 0.0
                elif single_i and len(exp_j._tiles) == 1:
                    # Single-tile pair: the bbox carries the same floats
                    # as the sole tile, so this is Rect.overlap_area
                    # verbatim (w > 0 and h > 0 follow from the reject).
                    new = (min(bx2, bbox_j.x2) - max(bx1, bbox_j.x1)) * (
                        min(by2, bbox_j.y2) - max(by1, bbox_j.y1)
                    )
                else:
                    new = exp_i.overlap_area(exp_j)
                if new > 0.0:
                    overlaps[key] = new
                    adj[i].add(j)
                    adj[j].add(i)
                elif old > 0.0:
                    adj[i].discard(j)
                    adj[j].discard(i)
                self._c2_raw += new - old

    def move_cell(
        self,
        idx: int,
        center: Optional[Tuple[float, float]] = None,
        orientation: Optional[int] = None,
        instance: Optional[int] = None,
        aspect_ratio: Optional[float] = None,
    ) -> Tuple[float, _Snapshot]:
        """Apply a single-cell change; returns (cost delta, snapshot)."""
        snap = self._take_snapshot([idx])
        record = self.records[idx]
        if center is not None:
            record.center = center
        if orientation is not None:
            record.orientation = orientation
        if instance is not None:
            record.instance = instance
        if aspect_ratio is not None:
            record.aspect_ratio = aspect_ratio
        self._refresh_cells([idx])
        return (self.cost() - snap.cost_before, snap)

    def swap_cells(self, i: int, j: int) -> Tuple[float, _Snapshot]:
        """Interchange the centers of two cells (Eqn-free §3.2.1 A2)."""
        if i == j:
            raise ValueError("cannot swap a cell with itself")
        snap = self._take_snapshot([i, j])
        ci, cj = self.records[i].center, self.records[j].center
        self.records[i].center = cj
        self.records[j].center = ci
        self._refresh_cells([i, j])
        return (self.cost() - snap.cost_before, snap)

    def swap_cells_inverted(self, i: int, j: int) -> Tuple[float, _Snapshot]:
        """Interchange with both cells' aspect ratios inverted (the retry
        of §3.2.1 when the plain interchange is rejected)."""
        if i == j:
            raise ValueError("cannot swap a cell with itself")
        snap = self._take_snapshot([i, j])
        ci, cj = self.records[i].center, self.records[j].center
        self.records[i].center = cj
        self.records[j].center = ci
        for k in (i, j):
            self._invert_record_aspect(k)
        self._refresh_cells([i, j])
        return (self.cost() - snap.cost_before, snap)

    def _invert_record_aspect(self, idx: int) -> None:
        record = self.records[idx]
        cell = self.cell(idx)
        if isinstance(cell, CustomCell):
            assert record.aspect_ratio is not None
            record.aspect_ratio = cell.aspect.inverted(record.aspect_ratio)
        else:
            record.orientation = ori.aspect_inverting_orientation(record.orientation)

    def move_cell_inverted(
        self, idx: int, center: Tuple[float, float]
    ) -> Tuple[float, _Snapshot]:
        """Displace with the aspect ratio inverted (§3.2.1's second attempt:
        macro cells rotate 90 degrees, custom cells invert their ratio)."""
        snap = self._take_snapshot([idx])
        self.records[idx].center = center
        self._invert_record_aspect(idx)
        self._refresh_cells([idx])
        return (self.cost() - snap.cost_before, snap)

    def move_pin_group(
        self, idx: int, group_key: str, side: str, start: int
    ) -> Tuple[float, _Snapshot]:
        """Reassign an uncommitted pin group to new sites (§2.4).

        Pin sites live on the cell boundary: the move cannot change the
        cell's shape or expansion, so the geometry bookkeeping (grid,
        borders, overlaps) is skipped on both the apply and restore side.
        """
        snap = self._take_snapshot([idx], geometry=False)
        self.records[idx].pin_sites[group_key] = (side, start)
        self._refresh_cells([idx], geometry=False)
        return (self.cost() - snap.cost_before, snap)

    def set_static_expansions(
        self, expansions: Dict[str, Dict[str, float]]
    ) -> None:
        """Switch to stage-2 mode: per-cell, per-world-side static margins
        (half the required width of each adjacent channel, §4.3) replace
        the dynamic estimator.  Rebuilds all caches."""
        self._static = [
            dict(expansions.get(name, {})) for name in self.names
        ]
        self.dynamic_expansion = False
        self.rebuild()

    # ------------------------------------------------------------------
    # checkpointing and auditing
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict:
        """Everything needed to reconstruct this placement exactly.

        The cost accumulators are included verbatim: they are running
        float sums whose last bits depend on the whole move history, and
        a bit-for-bit resume must continue from the history-exact values
        (``rebuild()`` recomputes them in canonical order, which agrees
        only to rounding).
        """
        return {
            "records": {
                self.names[i]: {
                    "center": tuple(record.center),
                    "orientation": record.orientation,
                    "instance": record.instance,
                    "aspect_ratio": record.aspect_ratio,
                    "pin_sites": dict(record.pin_sites),
                }
                for i, record in enumerate(self.records)
            },
            "p2": self.p2,
            "dynamic_expansion": self.dynamic_expansion,
            "static_expansions": {
                self.names[i]: dict(static)
                for i, static in enumerate(self._static)
                if static
            },
            "accumulators": {
                "c1": self._c1,
                "c2_raw": self._c2_raw,
                "c3_total": self._c3_total,
            },
        }

    def load_state_dict(self, data: Dict) -> None:
        """Restore a :meth:`state_dict` snapshot (same circuit required).

        Caches are regenerated with ``rebuild()`` — per-entry cache
        values are pure functions of the geometry, so they come back
        identical — and the accumulators are then overwritten with the
        snapshot's history-exact values.
        """
        records = data["records"]
        if set(records) != set(self.names):
            raise ValueError(
                "placement snapshot does not match this circuit's cells"
            )
        for i, name in enumerate(self.names):
            saved = records[name]
            self.records[i] = CellRecord(
                center=tuple(saved["center"]),
                orientation=saved["orientation"],
                instance=saved["instance"],
                aspect_ratio=saved["aspect_ratio"],
                pin_sites=dict(saved["pin_sites"]),
            )
        static = data.get("static_expansions") or {}
        self._static = [dict(static.get(name, {})) for name in self.names]
        self.dynamic_expansion = data["dynamic_expansion"]
        self.p2 = data["p2"]
        self.rebuild()
        accumulators = data["accumulators"]
        self._c1 = accumulators["c1"]
        self._c2_raw = accumulators["c2_raw"]
        self._c3_total = accumulators["c3_total"]

    def cost_breakdown_fresh(self) -> Tuple[float, float, float]:
        """(C1, C2_raw, C3) recomputed from the records, read-only —
        the reference the drift guard reconciles the accumulators
        against.  Touches none of the incremental bookkeeping."""
        n = len(self.names)
        expanded = [
            self._expanded_shape(i, self._world_shape(i)) for i in range(n)
        ]
        pins = [self._pin_positions(i) for i in range(n)]
        c1 = 0.0
        for net in self.circuit.nets.values():
            members = self._net_members[net.name]
            if not members:
                continue
            x, y = pins[members[0][0]][members[0][1]]
            x_lo = x_hi = x
            y_lo = y_hi = y
            for idx, pin_name in members:
                x, y = pins[idx][pin_name]
                x_lo = min(x_lo, x)
                x_hi = max(x_hi, x)
                y_lo = min(y_lo, y)
                y_hi = max(y_hi, y)
            c1 += net.weighted_length(x_hi - x_lo, y_hi - y_lo)
        c2 = 0.0
        for i in range(n):
            c2 += self._border_overlap(i, expanded[i])
            for j in range(i + 1, n):
                c2 += expanded[i].overlap_area(expanded[j])
        c3 = sum(self._cell_c3(i) for i in range(n))
        return c1, c2, c3

    def cost_drift(self) -> Dict[str, float]:
        """Accumulated-minus-fresh difference of each cost term, plus
        the largest difference normalized by the term's magnitude."""
        fresh_c1, fresh_c2, fresh_c3 = self.cost_breakdown_fresh()
        pairs = (
            (self._c1 - fresh_c1, fresh_c1),
            (self._c2_raw - fresh_c2, fresh_c2),
            (self._c3_total - fresh_c3, fresh_c3),
        )
        return {
            "c1": pairs[0][0],
            "c2_raw": pairs[1][0],
            "c3": pairs[2][0],
            "max_relative": max(
                abs(diff) / max(1.0, abs(ref)) for diff, ref in pairs
            ),
        }

    def resync(self) -> None:
        """Snap the accumulators back to canonical from-scratch values."""
        self.rebuild()

    # ------------------------------------------------------------------
    # initial placement
    # ------------------------------------------------------------------

    def randomize(self, rng: random.Random) -> None:
        """Random initial configuration (§3.2.1: the initial state has no
        influence on the final TEIC, so a random start is used)."""
        for idx in range(len(self.names)):
            if not self.movable[idx]:
                continue
            record = self.records[idx]
            record.center = (
                rng.uniform(self.core.x1, self.core.x2),
                rng.uniform(self.core.y1, self.core.y2),
            )
            record.orientation = rng.randrange(ori.N_ORIENTATIONS)
            cell = self.cell(idx)
            if isinstance(cell, MacroCell) and cell.num_instances > 1:
                record.instance = rng.randrange(cell.num_instances)
        self.rebuild()

    def enforce_fixed(self) -> None:
        """Reset every pre-placed cell to its mandated position (used by
        placers that do not natively understand fixed cells)."""
        changed = False
        for idx in range(len(self.names)):
            cell = self.cell(idx)
            if cell.fixed is None:
                continue
            record = self.records[idx]
            target = ((cell.fixed.x, cell.fixed.y), cell.fixed.orientation)
            if (record.center, record.orientation) != target:
                record.center = (cell.fixed.x, cell.fixed.y)
                record.orientation = cell.fixed.orientation
                changed = True
        if changed:
            self.rebuild()

    def clamp_to_core(self, point: Tuple[float, float]) -> Tuple[float, float]:
        """Clamp a candidate cell center into the core region."""
        return (
            min(max(point[0], self.core.x1), self.core.x2),
            min(max(point[1], self.core.y1), self.core.y2),
        )


def _site_position(
    side: str, site_idx: int, nsites: int, width: float, height: float
) -> Tuple[float, float]:
    fraction = (site_idx + 0.5) / nsites
    hw, hh = width / 2.0, height / 2.0
    if side == LEFT:
        return (-hw, -hh + fraction * height)
    if side == RIGHT:
        return (hw, -hh + fraction * height)
    if side == BOTTOM:
        return (-hw + fraction * width, -hh)
    return (-hw + fraction * width, hh)
