"""Uniform-grid spatial index over axis-aligned bounding boxes.

The stage-1/stage-2 annealers attempt hundreds of thousands of moves;
each move must only pay for the cells it can actually interact with.
``UniformGridIndex`` is the broad phase that makes that possible: every
cell's *expanded* bounding box is binned into a uniform grid, and a
query returns the occupants of the bins a box covers — a guaranteed
superset of the boxes that intersect it (two intersecting boxes share a
common point, hence a common bin).  The narrow phase
(``TileSet.overlap_area``) then computes exact overlap for candidates
only, so the three-term cost stays identical to a from-scratch rebuild.

The grid is unbounded: bins are stored sparsely in a dict keyed by
integer bin coordinates, so items may live anywhere (cells legitimately
spill outside the target core during annealing).  Items larger than one
bin are simply registered in every bin their box covers.
"""

from __future__ import annotations

from math import floor
from typing import Dict, Hashable, Iterable, Set, Tuple

from ..geometry import Rect

__all__ = ["UniformGridIndex"]

_BinRange = Tuple[int, int, int, int]


class UniformGridIndex:
    """Sparse uniform grid mapping items to the bins their bboxes cover.

    ``bin_size`` is the edge length of one square bin.  Pick it near the
    typical item size (see :meth:`for_bboxes`): much smaller and large
    items touch many bins, much larger and every bin holds many items.
    """

    __slots__ = ("bin_size", "_inv", "_bins", "_ranges")

    def __init__(self, bin_size: float) -> None:
        if not bin_size > 0.0:
            raise ValueError("bin_size must be positive")
        self.bin_size = float(bin_size)
        self._inv = 1.0 / self.bin_size
        self._bins: Dict[Tuple[int, int], Set[Hashable]] = {}
        self._ranges: Dict[Hashable, _BinRange] = {}

    @staticmethod
    def for_bboxes(bboxes: Iterable[Rect], scale: float = 1.0) -> "UniformGridIndex":
        """A grid sized to the mean larger edge of the given boxes, so a
        typical item covers about four bins."""
        sizes = [max(b.width, b.height) for b in bboxes]
        mean = (sum(sizes) / len(sizes)) if sizes else 1.0
        return UniformGridIndex(max(mean * scale, 1e-9))

    # -- bookkeeping ----------------------------------------------------

    def bin_range(self, bbox: Rect) -> _BinRange:
        """Inclusive (bx1, by1, bx2, by2) bin-coordinate range of a box."""
        inv = self._inv
        return (
            floor(bbox.x1 * inv),
            floor(bbox.y1 * inv),
            floor(bbox.x2 * inv),
            floor(bbox.y2 * inv),
        )

    def stored_range(self, item: Hashable) -> _BinRange:
        """The bin range an item is currently registered under."""
        return self._ranges[item]

    def insert(self, item: Hashable, bbox: Rect) -> None:
        if item in self._ranges:
            raise ValueError(f"item {item!r} is already indexed")
        rng = self.bin_range(bbox)
        self._ranges[item] = rng
        bins = self._bins
        bx1, by1, bx2, by2 = rng
        for bx in range(bx1, bx2 + 1):
            for by in range(by1, by2 + 1):
                bins.setdefault((bx, by), set()).add(item)

    def remove(self, item: Hashable) -> None:
        rng = self._ranges.pop(item)
        self._unbin(item, rng)

    def update(self, item: Hashable, bbox: Rect) -> None:
        """Re-bin an item under its new bbox (no-op while it stays inside
        the same bin range — the common case for small displacements)."""
        self.update_coords(item, bbox.x1, bbox.y1, bbox.x2, bbox.y2)

    def update_coords(
        self, item: Hashable, x1: float, y1: float, x2: float, y2: float
    ) -> None:
        """:meth:`update` from raw coordinates — the array-core hot path
        re-bins straight from its flat bbox mirrors, skipping the ``Rect``
        construction (and its validation) entirely."""
        inv = self._inv
        new = (floor(x1 * inv), floor(y1 * inv), floor(x2 * inv), floor(y2 * inv))
        old = self._ranges.get(item)
        if old == new:
            return
        if old is not None:
            self._unbin(item, old)
        self._ranges[item] = new
        bins = self._bins
        bx1, by1, bx2, by2 = new
        for bx in range(bx1, bx2 + 1):
            for by in range(by1, by2 + 1):
                bins.setdefault((bx, by), set()).add(item)

    def _unbin(self, item: Hashable, rng: _BinRange) -> None:
        bins = self._bins
        bx1, by1, bx2, by2 = rng
        for bx in range(bx1, bx2 + 1):
            for by in range(by1, by2 + 1):
                key = (bx, by)
                occupants = bins[key]
                occupants.discard(item)
                if not occupants:
                    del bins[key]

    # -- queries ---------------------------------------------------------

    def query(self, bbox: Rect) -> Set[Hashable]:
        """Every indexed item whose bbox *may* intersect the given box: a
        superset of the true intersectors (exactness invariant)."""
        out: Set[Hashable] = set()
        bins = self._bins
        bx1, by1, bx2, by2 = self.bin_range(bbox)
        for bx in range(bx1, bx2 + 1):
            for by in range(by1, by2 + 1):
                occupants = bins.get((bx, by))
                if occupants:
                    out |= occupants
        return out

    def candidates(self, item: Hashable) -> Set[Hashable]:
        """Items sharing at least one bin with ``item`` (item excluded):
        a superset of the items whose bboxes intersect item's bbox."""
        out: Set[Hashable] = set()
        bins = self._bins
        bx1, by1, bx2, by2 = self._ranges[item]
        for bx in range(bx1, bx2 + 1):
            for by in range(by1, by2 + 1):
                occupants = bins.get((bx, by))
                if occupants:
                    out |= occupants
        out.discard(item)
        return out

    def __contains__(self, item: Hashable) -> bool:
        return item in self._ranges

    def __len__(self) -> int:
        return len(self._ranges)

    def __repr__(self) -> str:
        return (
            f"UniformGridIndex(bin_size={self.bin_size}, "
            f"{len(self._ranges)} items, {len(self._bins)} bins)"
        )
