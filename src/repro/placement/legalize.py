"""Residual-overlap removal before channel definition.

Stage 1 ends with a small residual cell overlap (the paper tracks this
quantity explicitly in §3.2.2-3.2.3).  The channel-definition algorithm
of §4.1, however, needs a placement in which cell interiors are disjoint
— a channel is a *rectangle of empty space* between two facing edges.
This module provides the small constraint-resolution shove pass that any
practical implementation needs between the stages: overlapping cells are
pushed apart along the axis of least penetration until the placement is
legal (cells may spill slightly past the target core; the chip outline
simply grows, which the area metrics reflect).

Only the *actual* cell geometry is separated here; the interconnect
margins may legitimately abut (that is what a shared channel is).
``min_gap`` optionally keeps a minimum spacing between facing cell edges
so that every adjacency still admits a channel.
"""

from __future__ import annotations

from typing import List, Tuple

from ..geometry import Rect, TileSet
from .spatial import UniformGridIndex
from .state import PlacementState


def _penetration(a: Rect, b: Rect) -> Tuple[float, float]:
    """Overlap extents (dx, dy) of two rects' bounding boxes."""
    dx = min(a.x2, b.x2) - max(a.x1, b.x1)
    dy = min(a.y2, b.y2) - max(a.y1, b.y1)
    return (dx, dy)


def remove_overlaps(
    state: PlacementState,
    max_passes: int = 400,
    min_gap: float = 0.0,
    tolerance: float = 1e-9,
    use_expanded: bool = False,
) -> float:
    """Shove cells apart until no two cell interiors overlap.

    With ``use_expanded`` the *margin-carrying* shapes are separated
    instead of the raw cell geometry — the §4.3 spacing step: each cell
    edge carries half its channels' required width, so separating the
    expanded shapes provides exactly the space the routed design needs
    ("if insufficient space was allocated, additional space is provided
    as required").  Only valid in static-expansion (stage-2) mode, where
    margins do not depend on position.

    Returns the remaining overlap area of the separated shapes (0.0 on
    success).  The state's caches are rebuilt before returning.
    """
    if max_passes < 1:
        raise ValueError("max_passes must be at least 1")
    if use_expanded and state.dynamic_expansion:
        raise ValueError(
            "use_expanded requires static expansions (dynamic margins move "
            "with the cell, so separating them is ill-defined)"
        )
    n = len(state.names)
    # Work on a local copy of shapes; records are updated in place.
    if use_expanded:
        shapes: List[TileSet] = [
            state._expanded_shape(i, state._world_shape(i)) for i in range(n)
        ]
    else:
        shapes = [state._world_shape(i) for i in range(n)]
    movable = state.movable
    gap = min_gap / 2.0

    # Broad phase: bboxes (grown by the half-gap pad, so padded shapes
    # that intersect are guaranteed to share a bin) live in a uniform
    # grid kept current as cells shift.  A pass that shoves nothing has
    # inspected a superset of every overlapping pair, so the legality
    # guarantee on exit is identical to the all-pairs loop.
    grid = UniformGridIndex.for_bboxes([s.bbox for s in shapes])
    for i in range(n):
        grid.insert(i, shapes[i].bbox.expanded_uniform(gap))

    for _ in range(max_passes):
        moved = False
        for i in range(n):
            for j in sorted(grid.candidates(i)):
                if j < i:
                    continue  # pair handled from the lower index
                pad_i = shapes[i] if gap == 0 else shapes[i].expanded_uniform(gap)
                pad_j = shapes[j] if gap == 0 else shapes[j].expanded_uniform(gap)
                if not pad_i.bbox.intersects(pad_j.bbox):
                    continue
                if pad_i.overlap_area(pad_j) <= tolerance:
                    continue
                if not movable[i] and not movable[j]:
                    continue  # two pre-placed cells: their overlap is the
                              # designer's responsibility, not ours
                dx, dy = _penetration(pad_i.bbox, pad_j.bbox)
                # Push along the axis of least penetration, half each way
                # (a pre-placed cell stays put; its partner absorbs the
                # whole shift).
                share_i = 0.0 if not movable[i] else (1.0 if movable[j] else 2.0)
                share_j = 0.0 if not movable[j] else (1.0 if movable[i] else 2.0)
                if dx <= dy:
                    shift = dx / 2.0 + tolerance
                    sign = 1.0 if shapes[i].bbox.center.x <= shapes[j].bbox.center.x else -1.0
                    _shift_cell(state, shapes, grid, gap, i, -sign * shift * share_i, 0.0)
                    _shift_cell(state, shapes, grid, gap, j, sign * shift * share_j, 0.0)
                else:
                    shift = dy / 2.0 + tolerance
                    sign = 1.0 if shapes[i].bbox.center.y <= shapes[j].bbox.center.y else -1.0
                    _shift_cell(state, shapes, grid, gap, i, 0.0, -sign * shift * share_i)
                    _shift_cell(state, shapes, grid, gap, j, 0.0, sign * shift * share_j)
                moved = True
        if not moved:
            break

    state.rebuild()
    return raw_overlap(shapes, tolerance)


def _shift_cell(
    state: PlacementState,
    shapes: List[TileSet],
    grid: UniformGridIndex,
    gap: float,
    idx: int,
    dx: float,
    dy: float,
) -> None:
    record = state.records[idx]
    record.center = (record.center[0] + dx, record.center[1] + dy)
    shapes[idx] = shapes[idx].translated(dx, dy)
    grid.update(idx, shapes[idx].bbox.expanded_uniform(gap))


def raw_overlap(shapes: List[TileSet], tolerance: float = 1e-9) -> float:
    """Total pairwise overlap area of the given (unexpanded) shapes."""
    total = 0.0
    for i in range(len(shapes)):
        for j in range(i + 1, len(shapes)):
            if shapes[i].bbox.intersects(shapes[j].bbox):
                area = shapes[i].overlap_area(shapes[j])
                if area > tolerance:
                    total += area
    return total
