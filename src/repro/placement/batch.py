"""Batched move proposal/acceptance over the struct-of-arrays mirror.

The serial array kernel (``ArrayPlacementState``) replays the object
core bit-for-bit, but each move still pays interpreter overhead for a
few dozen scalar operations — a hard floor around 10^4 moves/sec.  This
module is the throughput path: it evaluates *batches* of displacement
and interchange proposals with vectorized numpy C1/C2 delta evaluation
and accepts each proposal with the Metropolis rule.

Semantics (synchronous batched SA, PARSAC-style)
------------------------------------------------

Every proposal in a batch touches distinct cells and is evaluated
against the state *frozen at the start of the batch*; all accepted
proposals are then committed together and the exact totals recomputed
(vectorized, from scratch) before the next batch.  Within a batch the
interaction between two accepted moves is therefore not reflected in
their acceptance deltas — the standard synchronous-parallel annealing
approximation.  The committed state and its cost totals are always
exact; only the accept decisions use slightly stale deltas.  Batch size
trades throughput against fidelity: ``batch=1`` is ordinary serial SA.

The kernel runs a *session*: ``begin()`` freezes the SoA mirrors into
numpy arrays, batches mutate those arrays only, and ``finish()`` writes
the surviving placement back through the object model (``rebuild()``),
restoring every serial-path invariant.  C3 never changes inside a
session (displacements and plain interchanges touch neither pin sites
nor aspect ratios), so it is carried as a constant.

Layout notes
------------

numpy dispatch cost, not arithmetic, bounds this kernel, so the arrays
are shaped to keep every hot operation a contiguous-input ufunc call:

* Tiles live in four parallel coordinate vectors (``sx1``..``sy2``)
  rather than an (n, 4) matrix — broadcasting two strided column
  slices costs ~10x a contiguous broadcast.
* The static tile table is *compressed* (real tiles only) and
  augmented with one degenerate "dummy" slot (padding scatters land
  there) and the four border slabs, so border terms ride the same
  overlap pass as cell-vs-cell terms.
* Each commit refreshes ``O_tile`` — every tile's summed overlap with
  other cells' tiles and the slabs — so a later proposal reads its
  "old contribution" with a single gather instead of a second overlap
  pass.
* Net membership is padded with a zero-weight *sentinel net* (and net
  member rows padded by repeating a real member), which makes padded
  entries exact no-ops without a single ``np.where`` mask.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..annealing.engine import AnnealingState
from ..qor.heartbeat import current_heartbeat
from ..telemetry import MetricsRegistry
from .arraycore import ArrayPlacementState

__all__ = ["BatchKernel", "BatchMoveGenerator", "BatchAnnealingState"]

#: The batched move kinds (mirrors ``MOVE_KINDS`` for the serial path).
BATCH_KINDS = ("displace_batch", "interchange_batch")


class BatchKernel:
    """Vectorized displacement / interchange batches over an array state."""

    def __init__(self, state: ArrayPlacementState) -> None:
        self.state = state
        self._active = False
        #: Reusable scratch arrays keyed by (call site, shape): batch
        #: shapes are fixed within a session, so after the first sweep
        #: of each kind every hot operation lands in a preallocated
        #: buffer.  ``scratch_misses`` counts pool allocations — a flat
        #: counter across sweeps is the "no per-sweep allocations"
        #: invariant the e2e bench asserts.
        self._scratch: Dict[Any, np.ndarray] = {}
        self.scratch_misses = 0
        # Fused tent-function gather columns: (x1,x2,xc,y1,y2,yc) →
        # left/bottom/right/top factor pairs (see _expansions).
        self._exp_i1 = np.array([0, 2, 1, 2], dtype=np.intp)
        self._exp_i2 = np.array([5, 3, 5, 4], dtype=np.intp)

    def _buf(self, key, shape, dtype=np.float64) -> np.ndarray:
        arr = self._scratch.get(key)
        if arr is None or arr.shape != tuple(shape) or arr.dtype != dtype:
            self._scratch[key] = arr = np.empty(shape, dtype=dtype)
            self.scratch_misses += 1
        return arr

    def _irows(self, k: int) -> np.ndarray:
        """Cached (k, tmax) row-index table for the flattened-gather
        path of _own_sum (contents are constant per shape)."""
        key = ("rows", k)
        arr = self._scratch.get(key)
        if arr is None:
            self._scratch[key] = arr = np.arange(
                k * self.tmax, dtype=np.int64
            ).reshape(k, self.tmax)
            self.scratch_misses += 1
        return arr

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------

    def begin(self) -> None:
        """Freeze the SoA mirrors into numpy arrays for batched annealing."""
        state = self.state
        n = len(state.names)
        self.n = n
        self.movable = np.array(
            [i for i in range(n) if state.movable[i]], dtype=np.int64
        )
        self.centers = np.array(
            [r.center for r in state.records], dtype=np.float64
        )
        #: (2, n) contiguous coordinate rows of the same centers — the
        #: hot C1 path gathers per-coordinate; kept in sync by _commit.
        self.cxy = np.ascontiguousarray(self.centers.T)

        # Oriented local tiles.  Orientation, instance, and aspect are
        # all frozen during a session, so these tables are static.
        local = []
        for i in range(n):
            gkey, _ = state._variant_keys(i)
            ox1, oy1, ox2, oy2, tiles = state._geom_flat(i, gkey)
            local.append(((ox1, oy1, ox2, oy2), tiles or ((ox1, oy1, ox2, oy2),)))
        tmax = max(len(t) for _, t in local)
        self.tmax = tmax
        # Local tiles padded with inverted boxes (+inf, +inf, -inf, -inf):
        # any finite translation keeps them inverted, and the overlap
        # kernel's relu clamps their area to zero — no masks needed.
        self.ltx1 = np.full((n, tmax), np.inf)
        self.lty1 = np.full((n, tmax), np.inf)
        self.ltx2 = np.full((n, tmax), -np.inf)
        self.lty2 = np.full((n, tmax), -np.inf)
        for i, (_, tiles) in enumerate(local):
            arr = np.asarray(tiles, dtype=np.float64)
            c = len(tiles)
            self.ltx1[i, :c] = arr[:, 0]
            self.lty1[i, :c] = arr[:, 1]
            self.ltx2[i, :c] = arr[:, 2]
            self.lty2[i, :c] = arr[:, 3]
        #: (4, n, tmax) stacked view — _world gathers all four planes at once.
        self.lt = np.stack([self.ltx1, self.lty1, self.ltx2, self.lty2])

        # Expansion model: either the closed-form dynamic estimator
        # (vectorized tent functions) or the static per-side table.
        est = state.estimator
        self.dynamic = state.dynamic_expansion
        if self.dynamic:
            cx, cy = est._cx, est._cy
            hw, hh = est._half_w, est._half_h
            p = est.profile
            # Stacked tent-function parameters for the fused 6-column
            # evaluation: columns (x1, x2, xc, y1, y2, yc).
            self._tc = np.array([cx, cx, cx, cy, cy, cy])
            self._th = np.array([hw, hw, hw, hh, hh, hh])
            self._tm = np.array([p.m_x] * 3 + [p.m_y] * 3)
            sx = (p.m_x - p.b_x) / hw
            sy = (p.m_y - p.b_y) / hh
            self._ts = np.array([sx, sx, sx, sy, sy, sy])
            basefrp = np.full((n, 4), est._base)
            for i in range(n):
                dens = state._dens8[i]
                if dens is not None:
                    o = state.records[i].orientation
                    basefrp[i] *= [est.frp(d) for d in dens[o]]
            self.basefrp = basefrp
            # Local bbox in fused column order (x1, x2, xc, y1, y2, yc).
            bb = np.array([b for b, _ in local], dtype=np.float64)
            self.obb6 = np.column_stack(
                [
                    bb[:, 0],
                    bb[:, 2],
                    (bb[:, 0] + bb[:, 2]) / 2.0,
                    bb[:, 1],
                    bb[:, 3],
                    (bb[:, 1] + bb[:, 3]) / 2.0,
                ]
            )
        else:
            self.stat = np.array(state._stat4, dtype=np.float64)

        # Compressed static tile table: T real tile slots (contiguous
        # per cell), one dummy slot, then the four border slabs.
        counts = [len(t) for _, t in local]
        self.cell_off = np.zeros(n, dtype=np.int64)
        np.cumsum(counts[:-1], out=self.cell_off[1:])
        T = int(sum(counts))
        self.T = T
        S = T + 1 + 4
        self.S = S
        #: (n, tmax) slot of each padded local tile; padding → dummy T.
        self.slotidx = np.full((n, tmax), T, dtype=np.int64)
        for i, c in enumerate(counts):
            self.slotidx[i, :c] = self.cell_off[i] + np.arange(c)
        self.sx1 = np.full(S, np.inf)
        self.sy1 = np.full(S, np.inf)
        self.sx2 = np.full(S, -np.inf)
        self.sy2 = np.full(S, -np.inf)
        tile_cell = np.full(S, -2, dtype=np.int64)
        for i in range(n):
            tile_cell[self.cell_off[i] : self.cell_off[i] + counts[i]] = i
        # Expanded world tiles of every cell at its current center,
        # computed with the kernel's own vectorized expansion math (not
        # the object caches): commits scatter _world outputs into this
        # table, so building it from _world makes every slot a pure
        # function of (local geometry, center) — which is what lets a
        # resumed session reconstruct the mid-anneal table bit-for-bit.
        allc = np.arange(n, dtype=np.int64)
        wx1, wy1, wx2, wy2 = self._world(allc, self.centers, "init")
        idx = self.slotidx.ravel()
        self.sx1[idx] = wx1.ravel()
        self.sy1[idx] = wy1.ravel()
        self.sx2[idx] = wx2.ravel()
        self.sy2[idx] = wy2.ravel()
        # Padding rows scattered into the dummy slot; restore its
        # canonical inverted box.
        self.sx1[T] = np.inf
        self.sy1[T] = np.inf
        self.sx2[T] = -np.inf
        self.sy2[T] = -np.inf
        for t, (x1, y1, x2, y2) in enumerate(state._slab4):
            self.sx1[T + 1 + t] = x1
            self.sy1[T + 1 + t] = y1
            self.sx2[T + 1 + t] = x2
            self.sy2[T + 1 + t] = y2
            tile_cell[T + 1 + t] = -1
        self.tile_cell = tile_cell
        # Pair-count weights: 1 between tiles of different owners (the
        # dummy never overlaps; slab-vs-slab shares owner -1 → 0), so
        # C2 = Σ ov·V / 2 — both cell pairs and borders appear twice.
        self.V = (tile_cell[:, None] != tile_cell[None, :]).astype(np.float64)

        # Pin ownership (needed to group net members by owner below).
        P = len(state._lpx)
        self.pin_cell = np.zeros(max(P, 1), dtype=np.int64)
        for i in range(n):
            s = state._pin_start[i]
            self.pin_cell[s : s + state._pin_count[i]] = i

        # Live nets plus a zero-weight sentinel net (row R-1).  Members
        # are collapsed to one slot per (net, owner cell) carrying the
        # owner's static pin-offset extremes — a net's span only needs
        # each owner's min/max offset plus its live center, and the
        # collapsed width is the distinct-owner count, not the pin
        # count.  Padding repeats the first slot (a duplicated point
        # changes neither a max nor a min) and per-cell net lists are
        # padded with the sentinel, whose zero weight makes its
        # contribution exactly 0.0.  No masks anywhere.
        live = [e for e, mem in enumerate(state._nmem) if mem]
        nlive = len(live)
        R = nlive + 1
        groups = []
        for e in live:
            by_owner = {}
            for p in state._nmem[e]:
                c = int(self.pin_cell[p])
                ox = state._lpx[p] - self.centers[c, 0]
                oy = state._lpy[p] - self.centers[c, 1]
                g = by_owner.get(c)
                if g is None:
                    by_owner[c] = [ox, oy, ox, oy]
                else:
                    g[0] = min(g[0], ox)
                    g[1] = min(g[1], oy)
                    g[2] = max(g[2], ox)
                    g[3] = max(g[3], oy)
            groups.append(by_owner)
        # Owner slots padded to a power of two so the span reductions can
        # run as log2(cm) pairwise maximum/minimum calls — numpy's axis
        # reduce pays ~60ns per output slice, a chain of elementwise
        # np.maximum calls doesn't.
        cm = max((len(g) for g in groups), default=1)
        cm = 1 << (cm - 1).bit_length()
        self.nowner = np.zeros((R, cm), dtype=np.int64)
        self.noffmin = np.zeros((2, R, cm), dtype=np.float64)
        self.noffmax = np.zeros((2, R, cm), dtype=np.float64)
        for r, by_owner in enumerate(groups):
            for s, (c, g) in enumerate(by_owner.items()):
                self.nowner[r, s] = c
                self.noffmin[0, r, s] = g[0]
                self.noffmin[1, r, s] = g[1]
                self.noffmax[0, r, s] = g[2]
                self.noffmax[1, r, s] = g[3]
            w = len(by_owner)
            if w:
                self.nowner[r, w:] = self.nowner[r, 0]
                self.noffmin[:, r, w:] = self.noffmin[:, r, 0:1]
                self.noffmax[:, r, w:] = self.noffmax[:, r, 0:1]
        hw = np.asarray(state._nh, dtype=np.float64)
        vw = np.asarray(state._nv, dtype=np.float64)
        self.w2 = np.zeros((2, R), dtype=np.float64)
        self.w2[0, :nlive] = hw[live]
        self.w2[1, :nlive] = vw[live]
        live_row = {e: r for r, e in enumerate(live)}
        cell_nets = [
            [live_row[e] for e in state._cnets[i] if e in live_row]
            for i in range(n)
        ]
        netmax = max((len(x) for x in cell_nets), default=1) or 1
        self.cnet = np.full((n, netmax), nlive, dtype=np.int64)
        for i, ids in enumerate(cell_nets):
            self.cnet[i, : len(ids)] = ids

        # Pre-gathered per-cell C1 tables over ALL cells, so the per
        # batch ΔC1 path runs on plain contiguous ufuncs (advanced
        # indexing costs ~10µs per call regardless of size — at these
        # shapes the gathers, not the arithmetic, were the bottleneck).
        # Only `bhi`/`blo`/`cs_cell` depend on live centers;
        # _refresh_c1_tables rebuilds them after each commit.
        self.cm = cm
        self.own = self.nowner[self.cnet]
        self.mine = (
            self.own == np.arange(n)[:, None, None]
        ).astype(np.float64)
        self.wcell = self.w2[:, self.cnet]

        core = state.core
        self.core_lo = np.array([core.x1, core.y1])
        self.core_hi = np.array([core.x2, core.y2])

        # Persistent center-dependent tables, preallocated once per
        # session so the per-commit refreshes are pure out= ufunc calls.
        self.R = R
        self.netmax = netmax
        self.nhi = np.empty((2, R, cm))
        self.nlo = np.empty((2, R, cm))
        self.cur_s = np.empty((2, R))
        self.bhi = np.empty((2, n, netmax, cm))
        self.blo = np.empty((2, n, netmax, cm))
        self.cs_cell = np.empty((2, n, netmax))
        self.O_tile = np.empty(S)
        self.O_cell = np.empty(n)

        self.p2 = state.p2
        self.c3 = state._c3_total
        self._refresh_spans()
        self.c1 = float(np.einsum("cr,cr->", self.w2, self.cur_s))
        self._refresh_c1_tables()
        self._refresh_overlaps()
        self._active = True

    def finish(self) -> None:
        """Write the batch-mode placement back through the object model.

        ``rebuild()`` restores every serial-path structure (grid,
        overlaps, adjacency, object caches) from the records, and the
        accumulators are left at the canonical from-scratch values — the
        same contract as ``PlacementState.resync()``.
        """
        state = self.state
        for i, rec in enumerate(state.records):
            rec.center = (float(self.centers[i, 0]), float(self.centers[i, 1]))
        state.rebuild()
        self._active = False

    def export_state_dict(self) -> Dict[str, Any]:
        """A checkpoint payload of the *live* mid-session placement.

        The session's centers are written through to the records (which
        is all ``state_dict`` reads — no rebuild) and the accumulator
        snapshot is patched with the kernel's exact running totals, so a
        resume that loads this payload and calls :meth:`begin` lands on
        bit-for-bit the same kernel state this session is in.
        """
        state = self.state
        for i, rec in enumerate(state.records):
            rec.center = (float(self.centers[i, 0]), float(self.centers[i, 1]))
        data = state.state_dict()
        data["accumulators"] = {
            "c1": self.c1,
            "c2_raw": self.c2,
            "c3_total": self.c3,
        }
        return data

    def cost(self) -> float:
        return self.c1 + self.p2 * self.c2 + self.c3

    # ------------------------------------------------------------------
    # vectorized cost pieces
    # ------------------------------------------------------------------

    @staticmethod
    def _hmax(g: np.ndarray) -> np.ndarray:
        """max over the (power-of-two) last axis via pairwise maximum."""
        s = g.shape[-1]
        while s > 1:
            s //= 2
            g = np.maximum(g[..., :s], g[..., s:])
        return g[..., 0]

    @staticmethod
    def _hmin(g: np.ndarray) -> np.ndarray:
        s = g.shape[-1]
        while s > 1:
            s //= 2
            g = np.minimum(g[..., :s], g[..., s:])
        return g[..., 0]

    @staticmethod
    def _hmax_i(g: np.ndarray) -> np.ndarray:
        """In-place variant of _hmax for scratch buffers (the buffer's
        leading slice is clobbered; the reduced view is returned)."""
        s = g.shape[-1]
        while s > 1:
            s //= 2
            np.maximum(g[..., :s], g[..., s : 2 * s], out=g[..., :s])
        return g[..., 0]

    @staticmethod
    def _hmin_i(g: np.ndarray) -> np.ndarray:
        s = g.shape[-1]
        while s > 1:
            s //= 2
            np.minimum(g[..., :s], g[..., s : 2 * s], out=g[..., :s])
        return g[..., 0]

    def _refresh_spans(self) -> None:
        """Per-net (x, y) spans from the collapsed owner tables."""
        base = self._buf("span_base", (2, self.R, self.cm))
        np.take(self.cxy, self.nowner, axis=1, out=base)
        np.add(base, self.noffmax, out=self.nhi)
        np.add(base, self.noffmin, out=self.nlo)
        hi = self._buf("span_hi", self.nhi.shape)
        lo = self._buf("span_lo", self.nlo.shape)
        np.copyto(hi, self.nhi)
        np.copyto(lo, self.nlo)
        np.subtract(self._hmax_i(hi), self._hmin_i(lo), out=self.cur_s)

    def _refresh_c1_tables(self) -> None:
        """Re-gather the center-dependent per-cell C1 tables (staged
        through the net-level extreme tables _refresh_spans just built)."""
        np.take(self.nhi, self.cnet, axis=1, out=self.bhi)
        np.take(self.nlo, self.cnet, axis=1, out=self.blo)
        np.take(self.cur_s, self.cnet, axis=1, out=self.cs_cell)

    def _refresh_overlaps(self) -> None:
        """Recompute the exact C2 total and the per-tile / per-cell
        interaction sums from the static tile table (one S×S pass)."""
        S = self.S
        w = self._buf("ovl_w", (S, S))
        h = self._buf("ovl_h", (S, S))
        t = self._buf("ovl_t", (S, S))
        np.minimum(self.sx2[:, None], self.sx2[None, :], out=w)
        np.maximum(self.sx1[:, None], self.sx1[None, :], out=t)
        np.subtract(w, t, out=w)
        np.minimum(self.sy2[:, None], self.sy2[None, :], out=h)
        np.maximum(self.sy1[:, None], self.sy1[None, :], out=t)
        np.subtract(h, t, out=h)
        np.maximum(w, 0.0, out=w)
        np.maximum(h, 0.0, out=h)
        np.multiply(w, h, out=w)
        np.einsum("ij,ij->i", w, self.V, out=self.O_tile)
        self.c2 = 0.5 * float(self.O_tile.sum())
        np.add.reduceat(self.O_tile[: self.T], self.cell_off, out=self.O_cell)

    def _c1_total(self) -> float:
        self._refresh_spans()
        return float(np.einsum("cr,cr->", self.w2, self.cur_s))

    def _c2_total(self) -> float:
        self._refresh_overlaps()
        return self.c2

    def _expansions(
        self, cells: np.ndarray, centers: np.ndarray, tag: str
    ) -> np.ndarray:
        """(K, 4) outward (left, bottom, right, top) expansions of the
        given cells at the given centers — the vectorized Eqn-2 model,
        evaluated as one fused 6-column tent-function pass.  ``tag``
        names the call site for scratch-buffer reuse."""
        k = len(cells)
        if not self.dynamic:
            out = self._buf((tag, "stat"), (k, 4))
            np.take(self.stat, cells, axis=0, out=out)
            return out
        pts = self._buf((tag, "pts"), (k, 6))
        np.take(self.obb6, cells, axis=0, out=pts)
        pts[:, :3] += centers[:, 0:1]
        pts[:, 3:] += centers[:, 1:2]
        np.subtract(pts, self._tc, out=pts)
        np.abs(pts, out=pts)
        np.minimum(pts, self._th, out=pts)
        np.multiply(pts, self._ts, out=pts)
        np.subtract(self._tm, pts, out=pts)
        # left = fx(x1)·fy(yc), bottom = fx(xc)·fy(y1),
        # right = fx(x2)·fy(yc), top = fx(xc)·fy(y2)
        a = self._buf((tag, "ea"), (k, 4))
        b = self._buf((tag, "eb"), (k, 4))
        np.take(pts, self._exp_i1, axis=1, out=a)
        np.take(pts, self._exp_i2, axis=1, out=b)
        np.multiply(a, b, out=a)
        np.take(self.basefrp, cells, axis=0, out=b)
        np.multiply(a, b, out=a)
        return a

    def _world(
        self, cells: np.ndarray, centers: np.ndarray, tag: str
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Expanded world tiles of cells at given centers as four
        (K, tmax) coordinate planes (padding stays inverted)."""
        e = self._expansions(cells, centers, tag)
        k = len(cells)
        off = self._buf((tag, "off"), (4, k))
        np.subtract(centers[:, 0], e[:, 0], out=off[0])
        np.subtract(centers[:, 1], e[:, 1], out=off[1])
        np.add(centers[:, 0], e[:, 2], out=off[2])
        np.add(centers[:, 1], e[:, 3], out=off[3])
        w = self._buf((tag, "wt"), (4, k, self.tmax))
        np.take(self.lt, cells, axis=1, out=w)
        np.add(w, off[:, :, None], out=w)
        return w[0], w[1], w[2], w[3]

    def _vs_static(
        self,
        x1: np.ndarray,
        y1: np.ndarray,
        x2: np.ndarray,
        y2: np.ndarray,
        tag: str,
    ) -> np.ndarray:
        """(rows, S) overlap of flattened proposal tiles against the
        full static table (slabs included, own tiles NOT excluded)."""
        rows = x1.size
        w = self._buf((tag, "vsw"), (rows, self.S))
        h = self._buf((tag, "vsh"), (rows, self.S))
        t = self._buf((tag, "vst"), (rows, self.S))
        np.minimum(x2.reshape(-1, 1), self.sx2, out=w)
        np.maximum(x1.reshape(-1, 1), self.sx1, out=t)
        np.subtract(w, t, out=w)
        np.minimum(y2.reshape(-1, 1), self.sy2, out=h)
        np.maximum(y1.reshape(-1, 1), self.sy1, out=t)
        np.subtract(h, t, out=h)
        np.maximum(w, 0.0, out=w)
        np.maximum(h, 0.0, out=h)
        np.multiply(w, h, out=w)
        return w

    def _own_sum(
        self, ov: np.ndarray, k: int, cells: np.ndarray, tag: str
    ) -> np.ndarray:
        """(K,) total of ``ov`` columns owned by each proposal's cell
        (ov is (k*tmax, S) row-major by proposal, C-contiguous)."""
        cols = self._buf((tag, "cols"), (k, self.tmax), dtype=np.int64)
        np.take(self.slotidx, cells, axis=0, out=cols)
        rows = self._irows(k)
        flat = self._buf((tag, "flat"), (k, self.tmax, self.tmax), dtype=np.int64)
        np.multiply(rows[:, :, None], self.S, out=flat)
        np.add(flat, cols[:, None, :], out=flat)
        g = self._buf((tag, "own"), (k, self.tmax, self.tmax))
        np.take(ov.reshape(-1), flat, out=g)
        out = self._buf((tag, "osum"), (k,))
        np.sum(g, axis=(1, 2), out=out)
        return out

    @staticmethod
    def _tiles_overlap(
        ax1, ay1, ax2, ay2, bx1, by1, bx2, by2
    ) -> np.ndarray:
        """(K,) overlap between two per-proposal tile groups, each given
        as (K, tmax) coordinate planes."""
        w = np.minimum(ax2[:, :, None], bx2[:, None, :]) - np.maximum(
            ax1[:, :, None], bx1[:, None, :]
        )
        h = np.minimum(ay2[:, :, None], by2[:, None, :]) - np.maximum(
            ay1[:, :, None], by1[:, None, :]
        )
        return (np.maximum(w, 0.0) * np.maximum(h, 0.0)).sum(axis=(1, 2))

    def _disp_dc1(self, cells: np.ndarray, d: np.ndarray) -> np.ndarray:
        """(K,) ΔC1 of displacing ``cells`` by ``d`` — computed for all
        cells at once over the pre-gathered tables (unmoved cells get an
        exactly-zero delta), then sliced to the batch."""
        df = self._buf("disp_df", (self.n, 2))
        df.fill(0.0)
        df[cells] = d
        hi = self._buf("disp_hi", self.bhi.shape)
        lo = self._buf("disp_lo", self.blo.shape)
        np.multiply(df.T[:, :, None, None], self.mine, out=hi)
        np.add(self.blo, hi, out=lo)
        np.add(self.bhi, hi, out=hi)
        ns = self._buf("disp_ns", self.cs_cell.shape)
        np.subtract(self._hmax_i(hi), self._hmin_i(lo), out=ns)
        np.subtract(ns, self.cs_cell, out=ns)
        dall = self._buf("disp_dall", (self.n,))
        np.einsum("cnm,cnm->n", self.wcell, ns, out=dall)
        out = self._buf("disp_dc1", (len(cells),))
        np.take(dall, cells, out=out)
        return out

    # ------------------------------------------------------------------
    # batches
    # ------------------------------------------------------------------

    def displacement_batch(
        self,
        batch: int,
        temperature: float,
        window: Tuple[float, float],
        rng: np.random.Generator,
    ) -> Tuple[int, int]:
        """One batch of range-limited single-cell displacements.

        Returns (attempts, accepts).  ``window`` is the §3.2.2 range
        limiter's (x, y) half-span at the current temperature.
        """
        if not self._active:
            raise RuntimeError("call begin() before running batches")
        k = min(batch, len(self.movable))
        cells = rng.permutation(self.movable)[:k]
        cur = self._buf("disp_cur", (k, 2))
        np.take(self.centers, cells, axis=0, out=cur)
        step = rng.uniform(-1.0, 1.0, size=(k, 2))
        step[:, 0] *= window[0]
        step[:, 1] *= window[1]
        targets = self._buf("disp_tgt", (k, 2))
        np.add(cur, step, out=targets)
        np.clip(targets, self.core_lo, self.core_hi, out=targets)

        nx1, ny1, nx2, ny2 = self._world(cells, targets, "d")
        ov = self._vs_static(nx1, ny1, nx2, ny2, "d")
        rowsum = self._buf("disp_rowsum", (k * self.tmax,))
        np.sum(ov, axis=1, out=rowsum)
        d_c2 = self._buf("disp_dc2", (k,))
        np.sum(rowsum.reshape(k, self.tmax), axis=1, out=d_c2)
        np.subtract(d_c2, self._own_sum(ov, k, cells, "d"), out=d_c2)
        oc = self._buf("disp_oc", (k,))
        np.take(self.O_cell, cells, out=oc)
        np.subtract(d_c2, oc, out=d_c2)

        move = self._buf("disp_move", (k, 2))
        np.subtract(targets, cur, out=move)
        d_c1 = self._disp_dc1(cells, move)

        np.multiply(d_c2, self.p2, out=d_c2)
        np.add(d_c1, d_c2, out=d_c2)
        accept = self._metropolis(d_c2, temperature, rng)
        if accept.any():
            self._commit(
                cells[accept],
                targets[accept],
                nx1[accept],
                ny1[accept],
                nx2[accept],
                ny2[accept],
            )
        return (k, int(accept.sum()))

    def interchange_batch(
        self, batch: int, temperature: float, rng: np.random.Generator
    ) -> Tuple[int, int]:
        """One batch of pairwise interchanges (§3.2.1 A2, not range
        limited); all cells across the batch are distinct."""
        if not self._active:
            raise RuntimeError("call begin() before running batches")
        k = min(batch, len(self.movable) // 2)
        if k < 1:
            return (0, 0)
        chosen = rng.permutation(self.movable)[: 2 * k]
        a = chosen[:k]
        b = chosen[k:]
        ca = self.centers[a]
        cb = self.centers[b]

        ax1, ay1, ax2, ay2 = self._world(a, cb, "ia")
        bx1, by1, bx2, by2 = self._world(b, ca, "ib")
        nx1 = np.concatenate([ax1, bx1])
        ny1 = np.concatenate([ay1, by1])
        nx2 = np.concatenate([ax2, bx2])
        ny2 = np.concatenate([ay2, by2])
        both = np.concatenate([a, b])
        ov = self._vs_static(nx1, ny1, nx2, ny2, "i")
        stat = ov.sum(axis=1).reshape(2 * k, self.tmax).sum(axis=1)
        stat -= self._own_sum(ov, 2 * k, both, "i1")
        stat -= self._own_sum(ov, 2 * k, np.concatenate([b, a]), "i2")
        new_static = stat[:k] + stat[k:]
        intra_new = self._tiles_overlap(
            ax1, ay1, ax2, ay2, bx1, by1, bx2, by2
        )
        # Old contribution straight from the cached per-cell interaction
        # sums; the a-b pair term is in both caches, subtract it once.
        sa = self.slotidx[a]
        sb = self.slotidx[b]
        intra_old = self._tiles_overlap(
            self.sx1[sa], self.sy1[sa], self.sx2[sa], self.sy2[sa],
            self.sx1[sb], self.sy1[sb], self.sx2[sb], self.sy2[sb],
        )
        d_c2 = (
            new_static + intra_new - (self.O_cell[a] + self.O_cell[b] - intra_old)
        )

        # ΔC1: every net of a or b, with both shifts applied; nets shared
        # by both lists are counted once (via a's list).
        da = cb - ca

        def contrib(rows):
            ow = self.own[rows]
            shift = da.T[:, :, None, None] * (ow == a[:, None, None]) - da.T[
                :, :, None, None
            ] * (ow == b[:, None, None])
            ns = self._hmax(self.bhi[:, rows] + shift) - self._hmin(
                self.blo[:, rows] + shift
            )
            return (
                self.wcell[:, rows] * (ns - self.cs_cell[:, rows])
            ).sum(axis=0)

        shared = (
            self.cnet[b][:, :, None] == self.cnet[a][:, None, :]
        ).any(axis=-1)
        d_c1 = contrib(a).sum(axis=-1) + np.where(
            shared, 0.0, contrib(b)
        ).sum(axis=-1)

        accept = self._metropolis(d_c1 + self.p2 * d_c2, temperature, rng)
        if accept.any():
            acc2 = np.concatenate([accept, accept])
            self._commit(
                both[acc2],
                np.concatenate([cb[accept], ca[accept]]),
                nx1[acc2],
                ny1[acc2],
                nx2[acc2],
                ny2[acc2],
            )
        return (k, int(accept.sum()))

    @staticmethod
    def _metropolis(
        delta: np.ndarray, temperature: float, rng: np.random.Generator
    ) -> np.ndarray:
        if temperature <= 0.0:
            return delta <= 0.0
        # Branchless: downhill deltas clamp to exp(0) = 1, which every
        # draw from [0, 1) beats.
        z = np.clip(delta / temperature, 0.0, 700.0)
        return rng.random(delta.shape[0]) < np.exp(-z)

    def _commit(
        self,
        cells: np.ndarray,
        targets: np.ndarray,
        nx1: np.ndarray,
        ny1: np.ndarray,
        nx2: np.ndarray,
        ny2: np.ndarray,
    ) -> None:
        """Apply accepted proposals and refresh the exact totals."""
        self.centers[cells] = targets
        self.cxy[:, cells] = targets.T
        idx = self.slotidx[cells].ravel()
        self.sx1[idx] = nx1.ravel()
        self.sy1[idx] = ny1.ravel()
        self.sx2[idx] = nx2.ravel()
        self.sy2[idx] = ny2.ravel()
        # Padding rows scattered inverted boxes into the dummy slot; put
        # it back to the canonical inverted box (last write wins, so a
        # real coordinate may have landed there — never read as valid,
        # but keep the table tidy for the next overlap pass).
        t = self.T
        self.sx1[t] = np.inf
        self.sy1[t] = np.inf
        self.sx2[t] = -np.inf
        self.sy2[t] = -np.inf
        # Exact totals of the committed state: accepted proposals were
        # judged against the frozen batch-start state, so their summed
        # deltas would double- or under-count interacting pairs.
        self.c1 = self._c1_total()
        self._refresh_c1_tables()
        self._refresh_overlaps()


class BatchMoveGenerator:
    """Drives ``BatchKernel`` with the §3.2.1 displacement/interchange
    mixture — the batched analogue of ``MoveGenerator`` for the
    throughput anneal (no cascade, no pin/aspect moves)."""

    def __init__(
        self,
        state: ArrayPlacementState,
        limiter,
        r_ratio: float = 10.0,
        batch: int = 48,
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if r_ratio <= 0:
            raise ValueError("r_ratio must be positive")
        if batch < 1:
            raise ValueError("batch must be at least 1")
        self.kernel = BatchKernel(state)
        self.limiter = limiter
        self.displacement_probability = r_ratio / (1.0 + r_ratio)
        self.batch = batch
        self.rng = np.random.default_rng(seed)
        #: Per-kind attempt/accept counters in a MetricsRegistry, so the
        #: flow can export batched move metrics exactly like serial ones.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._pairs = {
            kind: (
                self.metrics.counter(f"moves.{kind}.attempts"),
                self.metrics.counter(f"moves.{kind}.accepts"),
            )
            for kind in BATCH_KINDS
        }

    @property
    def stats(self) -> Dict[str, list]:
        """Move kind -> [attempts, accepts] (view over the registry)."""
        return {
            kind: [attempts.value, accepts.value]
            for kind, (attempts, accepts) in self._pairs.items()
        }

    def begin(self) -> None:
        self.kernel.begin()

    def finish(self) -> None:
        self.kernel.finish()

    def state_dict(self) -> Dict[str, Any]:
        """The generator's private stream state (the numpy
        bit-generator), for bit-for-bit resume of batched runs."""
        return {"rng": self.rng.bit_generator.state}

    def load_state_dict(self, data: Dict[str, Any]) -> None:
        self.rng.bit_generator.state = data["rng"]

    def step(self, temperature: float) -> Tuple[int, int]:
        """One batch: displacement with probability r/(1+r), else
        interchange.  Returns (attempts, accepts)."""
        if self.rng.random() < self.displacement_probability:
            window = (
                self.limiter.window_x(temperature),
                self.limiter.window_y(temperature),
            )
            out = self.kernel.displacement_batch(
                self.batch, temperature, window, self.rng
            )
            row = self._pairs["displace_batch"]
        else:
            out = self.kernel.interchange_batch(
                self.batch, temperature, self.rng
            )
            row = self._pairs["interchange_batch"]
        row[0].value += out[0]
        row[1].value += out[1]
        return out


class BatchAnnealingState(AnnealingState):
    """Adapter presenting a BatchMoveGenerator session to the engine —
    the batched counterpart of ``PlacementAnnealingState``.

    The engine's ``random.Random`` is ignored: every stochastic choice
    of the batched anneal (kind mix, cells, steps, Metropolis draws)
    comes from the generator's own numpy stream, which the cursor's
    ``generator_state`` captures and restores, so a batched run resumes
    bit-for-bit against itself.

    There is deliberately no ``cost_drift``: during a session the object
    model's incremental accumulators are dormant (the kernel recomputes
    exact totals at every commit), so the drift guard has nothing
    meaningful to reconcile and skips states without the hook.
    """

    #: Emit a liveness beat every this many batches inside an inner
    #: loop (the writer's ``min_interval`` throttles actual I/O).
    HEARTBEAT_EVERY = 64

    def __init__(
        self, state: ArrayPlacementState, generator: BatchMoveGenerator
    ) -> None:
        self.state = state
        self.generator = generator
        self._batches = 0

    def step(self, temperature: float, rng: random.Random) -> Tuple[int, int]:
        out = self.generator.step(temperature)
        self._batches += 1
        if self._batches % self.HEARTBEAT_EVERY == 0:
            heartbeat = current_heartbeat()
            if heartbeat.enabled:
                heartbeat.beat(
                    "anneal",
                    T=round(temperature, 6),
                    batches=self._batches,
                    cost=round(self.cost(), 4),
                )
        return out

    def cost(self) -> float:
        kernel = self.generator.kernel
        if kernel._active:
            return kernel.cost()
        return self.state.cost()

    def moves_per_iteration(self) -> int:
        """Batches per A_c unit: ceil(N_c / batch), so a temperature
        step evaluates ~A_c * N_c proposals like the serial mover."""
        n = len(self.state.names)
        return max(1, -(-n // self.generator.batch))

    def state_dict(self) -> Dict:
        kernel = self.generator.kernel
        if kernel._active:
            return kernel.export_state_dict()
        return self.state.state_dict()

    def generator_state_dict(self) -> Dict[str, Any]:
        return self.generator.state_dict()

    def load_generator_state(self, data: Dict[str, Any]) -> None:
        self.generator.load_state_dict(data)

    def telemetry_snapshot(self, temperature: float) -> Dict[str, float]:
        """Per-temperature trace fields from the kernel's live totals
        (same keys as the serial adapter's snapshot)."""
        kernel = self.generator.kernel
        limiter = self.generator.limiter
        if kernel._active:
            c1, c2_raw, p2 = kernel.c1, kernel.c2, kernel.p2
            c3 = kernel.c3
        else:
            state = self.state
            c1, c2_raw, p2 = state.c1(), state.c2_raw(), state.p2
            c3 = state.c3()
        return {
            "c1": round(c1, 4),
            "c2": round(p2 * c2_raw, 4),
            "c2_raw": round(c2_raw, 4),
            "c3": round(c3, 4),
            "window_x": round(limiter.window_x(temperature), 3),
            "window_y": round(limiter.window_y(temperature), 3),
        }
