"""Batched move proposal/acceptance over the struct-of-arrays mirror.

The serial array kernel (``ArrayPlacementState``) replays the object
core bit-for-bit, but each move still pays interpreter overhead for a
few dozen scalar operations — a hard floor around 10^4 moves/sec.  This
module is the throughput path: it evaluates *batches* of displacement
and interchange proposals with vectorized numpy C1/C2 delta evaluation
and accepts each proposal with the Metropolis rule.

Semantics (synchronous batched SA, PARSAC-style)
------------------------------------------------

Every proposal in a batch touches distinct cells and is evaluated
against the state *frozen at the start of the batch*; all accepted
proposals are then committed together and the exact totals recomputed
(vectorized, from scratch) before the next batch.  Within a batch the
interaction between two accepted moves is therefore not reflected in
their acceptance deltas — the standard synchronous-parallel annealing
approximation.  The committed state and its cost totals are always
exact; only the accept decisions use slightly stale deltas.  Batch size
trades throughput against fidelity: ``batch=1`` is ordinary serial SA.

The kernel runs a *session*: ``begin()`` freezes the SoA mirrors into
numpy arrays, batches mutate those arrays only, and ``finish()`` writes
the surviving placement back through the object model (``rebuild()``),
restoring every serial-path invariant.  C3 never changes inside a
session (displacements and plain interchanges touch neither pin sites
nor aspect ratios), so it is carried as a constant.

Layout notes
------------

numpy dispatch cost, not arithmetic, bounds this kernel, so the arrays
are shaped to keep every hot operation a contiguous-input ufunc call:

* Tiles live in four parallel coordinate vectors (``sx1``..``sy2``)
  rather than an (n, 4) matrix — broadcasting two strided column
  slices costs ~10x a contiguous broadcast.
* The static tile table is *compressed* (real tiles only) and
  augmented with one degenerate "dummy" slot (padding scatters land
  there) and the four border slabs, so border terms ride the same
  overlap pass as cell-vs-cell terms.
* Each commit refreshes ``O_tile`` — every tile's summed overlap with
  other cells' tiles and the slabs — so a later proposal reads its
  "old contribution" with a single gather instead of a second overlap
  pass.
* Net membership is padded with a zero-weight *sentinel net* (and net
  member rows padded by repeating a real member), which makes padded
  entries exact no-ops without a single ``np.where`` mask.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .arraycore import ArrayPlacementState

__all__ = ["BatchKernel", "BatchMoveGenerator"]


class BatchKernel:
    """Vectorized displacement / interchange batches over an array state."""

    def __init__(self, state: ArrayPlacementState) -> None:
        self.state = state
        self._active = False

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------

    def begin(self) -> None:
        """Freeze the SoA mirrors into numpy arrays for batched annealing."""
        state = self.state
        n = len(state.names)
        self.n = n
        self.movable = np.array(
            [i for i in range(n) if state.movable[i]], dtype=np.int64
        )
        self.centers = np.array(
            [r.center for r in state.records], dtype=np.float64
        )
        #: (2, n) contiguous coordinate rows of the same centers — the
        #: hot C1 path gathers per-coordinate; kept in sync by _commit.
        self.cxy = np.ascontiguousarray(self.centers.T)

        # Oriented local tiles.  Orientation, instance, and aspect are
        # all frozen during a session, so these tables are static.
        local = []
        for i in range(n):
            gkey, _ = state._variant_keys(i)
            ox1, oy1, ox2, oy2, tiles = state._geom_flat(i, gkey)
            local.append(((ox1, oy1, ox2, oy2), tiles or ((ox1, oy1, ox2, oy2),)))
        tmax = max(len(t) for _, t in local)
        self.tmax = tmax
        # Local tiles padded with inverted boxes (+inf, +inf, -inf, -inf):
        # any finite translation keeps them inverted, and the overlap
        # kernel's relu clamps their area to zero — no masks needed.
        self.ltx1 = np.full((n, tmax), np.inf)
        self.lty1 = np.full((n, tmax), np.inf)
        self.ltx2 = np.full((n, tmax), -np.inf)
        self.lty2 = np.full((n, tmax), -np.inf)
        for i, (_, tiles) in enumerate(local):
            arr = np.asarray(tiles, dtype=np.float64)
            c = len(tiles)
            self.ltx1[i, :c] = arr[:, 0]
            self.lty1[i, :c] = arr[:, 1]
            self.ltx2[i, :c] = arr[:, 2]
            self.lty2[i, :c] = arr[:, 3]
        #: (4, n, tmax) stacked view — _world gathers all four planes at once.
        self.lt = np.stack([self.ltx1, self.lty1, self.ltx2, self.lty2])

        # Expansion model: either the closed-form dynamic estimator
        # (vectorized tent functions) or the static per-side table.
        est = state.estimator
        self.dynamic = state.dynamic_expansion
        if self.dynamic:
            cx, cy = est._cx, est._cy
            hw, hh = est._half_w, est._half_h
            p = est.profile
            # Stacked tent-function parameters for the fused 6-column
            # evaluation: columns (x1, x2, xc, y1, y2, yc).
            self._tc = np.array([cx, cx, cx, cy, cy, cy])
            self._th = np.array([hw, hw, hw, hh, hh, hh])
            self._tm = np.array([p.m_x] * 3 + [p.m_y] * 3)
            sx = (p.m_x - p.b_x) / hw
            sy = (p.m_y - p.b_y) / hh
            self._ts = np.array([sx, sx, sx, sy, sy, sy])
            basefrp = np.full((n, 4), est._base)
            for i in range(n):
                dens = state._dens8[i]
                if dens is not None:
                    o = state.records[i].orientation
                    basefrp[i] *= [est.frp(d) for d in dens[o]]
            self.basefrp = basefrp
            # Local bbox in fused column order (x1, x2, xc, y1, y2, yc).
            bb = np.array([b for b, _ in local], dtype=np.float64)
            self.obb6 = np.column_stack(
                [
                    bb[:, 0],
                    bb[:, 2],
                    (bb[:, 0] + bb[:, 2]) / 2.0,
                    bb[:, 1],
                    bb[:, 3],
                    (bb[:, 1] + bb[:, 3]) / 2.0,
                ]
            )
        else:
            self.stat = np.array(state._stat4, dtype=np.float64)

        # Compressed static tile table: T real tile slots (contiguous
        # per cell), one dummy slot, then the four border slabs.
        counts = [len(t) for _, t in local]
        self.cell_off = np.zeros(n, dtype=np.int64)
        np.cumsum(counts[:-1], out=self.cell_off[1:])
        T = int(sum(counts))
        self.T = T
        S = T + 1 + 4
        self.S = S
        #: (n, tmax) slot of each padded local tile; padding → dummy T.
        self.slotidx = np.full((n, tmax), T, dtype=np.int64)
        for i, c in enumerate(counts):
            self.slotidx[i, :c] = self.cell_off[i] + np.arange(c)
        self.sx1 = np.full(S, np.inf)
        self.sy1 = np.full(S, np.inf)
        self.sx2 = np.full(S, -np.inf)
        self.sy2 = np.full(S, -np.inf)
        tile_cell = np.full(S, -2, dtype=np.int64)
        for i in range(n):
            tiles = state._ltiles[i]
            if tiles is None:
                tiles = (
                    (state._lex1[i], state._ley1[i], state._lex2[i], state._ley2[i]),
                )
            s = self.cell_off[i]
            for t, (x1, y1, x2, y2) in enumerate(tiles):
                self.sx1[s + t] = x1
                self.sy1[s + t] = y1
                self.sx2[s + t] = x2
                self.sy2[s + t] = y2
            tile_cell[s : s + counts[i]] = i
        for t, (x1, y1, x2, y2) in enumerate(state._slab4):
            self.sx1[T + 1 + t] = x1
            self.sy1[T + 1 + t] = y1
            self.sx2[T + 1 + t] = x2
            self.sy2[T + 1 + t] = y2
            tile_cell[T + 1 + t] = -1
        self.tile_cell = tile_cell
        # Pair-count weights: 1 between tiles of different owners (the
        # dummy never overlaps; slab-vs-slab shares owner -1 → 0), so
        # C2 = Σ ov·V / 2 — both cell pairs and borders appear twice.
        self.V = (tile_cell[:, None] != tile_cell[None, :]).astype(np.float64)

        # Pin ownership (needed to group net members by owner below).
        P = len(state._lpx)
        self.pin_cell = np.zeros(max(P, 1), dtype=np.int64)
        for i in range(n):
            s = state._pin_start[i]
            self.pin_cell[s : s + state._pin_count[i]] = i

        # Live nets plus a zero-weight sentinel net (row R-1).  Members
        # are collapsed to one slot per (net, owner cell) carrying the
        # owner's static pin-offset extremes — a net's span only needs
        # each owner's min/max offset plus its live center, and the
        # collapsed width is the distinct-owner count, not the pin
        # count.  Padding repeats the first slot (a duplicated point
        # changes neither a max nor a min) and per-cell net lists are
        # padded with the sentinel, whose zero weight makes its
        # contribution exactly 0.0.  No masks anywhere.
        live = [e for e, mem in enumerate(state._nmem) if mem]
        nlive = len(live)
        R = nlive + 1
        groups = []
        for e in live:
            by_owner = {}
            for p in state._nmem[e]:
                c = int(self.pin_cell[p])
                ox = state._lpx[p] - self.centers[c, 0]
                oy = state._lpy[p] - self.centers[c, 1]
                g = by_owner.get(c)
                if g is None:
                    by_owner[c] = [ox, oy, ox, oy]
                else:
                    g[0] = min(g[0], ox)
                    g[1] = min(g[1], oy)
                    g[2] = max(g[2], ox)
                    g[3] = max(g[3], oy)
            groups.append(by_owner)
        # Owner slots padded to a power of two so the span reductions can
        # run as log2(cm) pairwise maximum/minimum calls — numpy's axis
        # reduce pays ~60ns per output slice, a chain of elementwise
        # np.maximum calls doesn't.
        cm = max((len(g) for g in groups), default=1)
        cm = 1 << (cm - 1).bit_length()
        self.nowner = np.zeros((R, cm), dtype=np.int64)
        self.noffmin = np.zeros((2, R, cm), dtype=np.float64)
        self.noffmax = np.zeros((2, R, cm), dtype=np.float64)
        for r, by_owner in enumerate(groups):
            for s, (c, g) in enumerate(by_owner.items()):
                self.nowner[r, s] = c
                self.noffmin[0, r, s] = g[0]
                self.noffmin[1, r, s] = g[1]
                self.noffmax[0, r, s] = g[2]
                self.noffmax[1, r, s] = g[3]
            w = len(by_owner)
            if w:
                self.nowner[r, w:] = self.nowner[r, 0]
                self.noffmin[:, r, w:] = self.noffmin[:, r, 0:1]
                self.noffmax[:, r, w:] = self.noffmax[:, r, 0:1]
        hw = np.asarray(state._nh, dtype=np.float64)
        vw = np.asarray(state._nv, dtype=np.float64)
        self.w2 = np.zeros((2, R), dtype=np.float64)
        self.w2[0, :nlive] = hw[live]
        self.w2[1, :nlive] = vw[live]
        live_row = {e: r for r, e in enumerate(live)}
        cell_nets = [
            [live_row[e] for e in state._cnets[i] if e in live_row]
            for i in range(n)
        ]
        netmax = max((len(x) for x in cell_nets), default=1) or 1
        self.cnet = np.full((n, netmax), nlive, dtype=np.int64)
        for i, ids in enumerate(cell_nets):
            self.cnet[i, : len(ids)] = ids

        # Pre-gathered per-cell C1 tables over ALL cells, so the per
        # batch ΔC1 path runs on plain contiguous ufuncs (advanced
        # indexing costs ~10µs per call regardless of size — at these
        # shapes the gathers, not the arithmetic, were the bottleneck).
        # Only `bhi`/`blo`/`cs_cell` depend on live centers;
        # _refresh_c1_tables rebuilds them after each commit.
        self.cm = cm
        self.own = self.nowner[self.cnet]
        self.mine = (
            self.own == np.arange(n)[:, None, None]
        ).astype(np.float64)
        self.wcell = self.w2[:, self.cnet]

        core = state.core
        self.core_lo = np.array([core.x1, core.y1])
        self.core_hi = np.array([core.x2, core.y2])

        self.p2 = state.p2
        self.c3 = state._c3_total
        self._refresh_spans()
        self.c1 = float(np.einsum("cr,cr->", self.w2, self.cur_s))
        self._refresh_c1_tables()
        self._refresh_overlaps()
        self._active = True

    def finish(self) -> None:
        """Write the batch-mode placement back through the object model.

        ``rebuild()`` restores every serial-path structure (grid,
        overlaps, adjacency, object caches) from the records, and the
        accumulators are left at the canonical from-scratch values — the
        same contract as ``PlacementState.resync()``.
        """
        state = self.state
        for i, rec in enumerate(state.records):
            rec.center = (float(self.centers[i, 0]), float(self.centers[i, 1]))
        state.rebuild()
        self._active = False

    def cost(self) -> float:
        return self.c1 + self.p2 * self.c2 + self.c3

    # ------------------------------------------------------------------
    # vectorized cost pieces
    # ------------------------------------------------------------------

    @staticmethod
    def _hmax(g: np.ndarray) -> np.ndarray:
        """max over the (power-of-two) last axis via pairwise maximum."""
        s = g.shape[-1]
        while s > 1:
            s //= 2
            g = np.maximum(g[..., :s], g[..., s:])
        return g[..., 0]

    @staticmethod
    def _hmin(g: np.ndarray) -> np.ndarray:
        s = g.shape[-1]
        while s > 1:
            s //= 2
            g = np.minimum(g[..., :s], g[..., s:])
        return g[..., 0]

    def _refresh_spans(self) -> None:
        """Per-net (x, y) spans from the collapsed owner tables."""
        base = self.cxy[:, self.nowner]
        self.nhi = base + self.noffmax
        self.nlo = base + self.noffmin
        self.cur_s = self._hmax(self.nhi) - self._hmin(self.nlo)

    def _refresh_c1_tables(self) -> None:
        """Re-gather the center-dependent per-cell C1 tables (staged
        through the net-level extreme tables _refresh_spans just built)."""
        self.bhi = self.nhi[:, self.cnet]
        self.blo = self.nlo[:, self.cnet]
        self.cs_cell = self.cur_s[:, self.cnet]

    def _refresh_overlaps(self) -> None:
        """Recompute the exact C2 total and the per-tile / per-cell
        interaction sums from the static tile table (one S×S pass)."""
        w = np.minimum(self.sx2[:, None], self.sx2[None, :]) - np.maximum(
            self.sx1[:, None], self.sx1[None, :]
        )
        h = np.minimum(self.sy2[:, None], self.sy2[None, :]) - np.maximum(
            self.sy1[:, None], self.sy1[None, :]
        )
        ov = np.maximum(w, 0.0) * np.maximum(h, 0.0)
        self.O_tile = np.einsum("ij,ij->i", ov, self.V)
        self.c2 = 0.5 * float(self.O_tile.sum())
        self.O_cell = np.add.reduceat(self.O_tile[: self.T], self.cell_off)

    def _c1_total(self) -> float:
        self._refresh_spans()
        return float(np.einsum("cr,cr->", self.w2, self.cur_s))

    def _c2_total(self) -> float:
        self._refresh_overlaps()
        return self.c2

    def _expansions(self, cells: np.ndarray, centers: np.ndarray) -> np.ndarray:
        """(K, 4) outward (left, bottom, right, top) expansions of the
        given cells at the given centers — the vectorized Eqn-2 model,
        evaluated as one fused 6-column tent-function pass."""
        if not self.dynamic:
            return self.stat[cells]
        pts = self.obb6[cells]
        pts[:, :3] += centers[:, 0:1]
        pts[:, 3:] += centers[:, 1:2]
        f = self._tm - np.minimum(np.abs(pts - self._tc), self._th) * self._ts
        # left = fx(x1)·fy(yc), bottom = fx(xc)·fy(y1),
        # right = fx(x2)·fy(yc), top = fx(xc)·fy(y2)
        return f[:, [0, 2, 1, 2]] * f[:, [5, 3, 5, 4]] * self.basefrp[cells]

    def _world(
        self, cells: np.ndarray, centers: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Expanded world tiles of cells at given centers as four
        (K, tmax) coordinate planes (padding stays inverted)."""
        e = self._expansions(cells, centers)
        off = np.empty((4, len(cells)))
        off[0] = centers[:, 0] - e[:, 0]
        off[1] = centers[:, 1] - e[:, 1]
        off[2] = centers[:, 0] + e[:, 2]
        off[3] = centers[:, 1] + e[:, 3]
        w = self.lt[:, cells] + off[:, :, None]
        return w[0], w[1], w[2], w[3]

    def _vs_static(
        self,
        x1: np.ndarray,
        y1: np.ndarray,
        x2: np.ndarray,
        y2: np.ndarray,
    ) -> np.ndarray:
        """(rows, S) overlap of flattened proposal tiles against the
        full static table (slabs included, own tiles NOT excluded)."""
        w = np.minimum(x2.reshape(-1, 1), self.sx2) - np.maximum(
            x1.reshape(-1, 1), self.sx1
        )
        h = np.minimum(y2.reshape(-1, 1), self.sy2) - np.maximum(
            y1.reshape(-1, 1), self.sy1
        )
        return np.maximum(w, 0.0) * np.maximum(h, 0.0)

    def _own_sum(self, ov: np.ndarray, k: int, cells: np.ndarray) -> np.ndarray:
        """(K,) total of ``ov`` columns owned by each proposal's cell
        (ov is (k*tmax, S) row-major by proposal)."""
        cols = self.slotidx[cells]
        rows = np.arange(k * self.tmax).reshape(k, self.tmax)
        return ov[rows[:, :, None], cols[:, None, :]].sum(axis=(1, 2))

    @staticmethod
    def _tiles_overlap(
        ax1, ay1, ax2, ay2, bx1, by1, bx2, by2
    ) -> np.ndarray:
        """(K,) overlap between two per-proposal tile groups, each given
        as (K, tmax) coordinate planes."""
        w = np.minimum(ax2[:, :, None], bx2[:, None, :]) - np.maximum(
            ax1[:, :, None], bx1[:, None, :]
        )
        h = np.minimum(ay2[:, :, None], by2[:, None, :]) - np.maximum(
            ay1[:, :, None], by1[:, None, :]
        )
        return (np.maximum(w, 0.0) * np.maximum(h, 0.0)).sum(axis=(1, 2))

    def _disp_dc1(self, cells: np.ndarray, d: np.ndarray) -> np.ndarray:
        """(K,) ΔC1 of displacing ``cells`` by ``d`` — computed for all
        cells at once over the pre-gathered tables (unmoved cells get an
        exactly-zero delta), then sliced to the batch."""
        df = np.zeros((self.n, 2))
        df[cells] = d
        shift = df.T[:, :, None, None] * self.mine
        ns = self._hmax(self.bhi + shift) - self._hmin(self.blo + shift)
        dall = np.einsum("cnm,cnm->n", self.wcell, ns - self.cs_cell)
        return dall[cells]

    # ------------------------------------------------------------------
    # batches
    # ------------------------------------------------------------------

    def displacement_batch(
        self,
        batch: int,
        temperature: float,
        window: Tuple[float, float],
        rng: np.random.Generator,
    ) -> Tuple[int, int]:
        """One batch of range-limited single-cell displacements.

        Returns (attempts, accepts).  ``window`` is the §3.2.2 range
        limiter's (x, y) half-span at the current temperature.
        """
        if not self._active:
            raise RuntimeError("call begin() before running batches")
        k = min(batch, len(self.movable))
        cells = rng.permutation(self.movable)[:k]
        cur = self.centers[cells]
        step = rng.uniform(-1.0, 1.0, size=(k, 2))
        step[:, 0] *= window[0]
        step[:, 1] *= window[1]
        targets = np.clip(cur + step, self.core_lo, self.core_hi)

        nx1, ny1, nx2, ny2 = self._world(cells, targets)
        ov = self._vs_static(nx1, ny1, nx2, ny2)
        new_sum = ov.sum(axis=1).reshape(k, self.tmax).sum(axis=1)
        new_sum -= self._own_sum(ov, k, cells)
        d_c2 = new_sum - self.O_cell[cells]

        d_c1 = self._disp_dc1(cells, targets - cur)

        accept = self._metropolis(d_c1 + self.p2 * d_c2, temperature, rng)
        if accept.any():
            self._commit(
                cells[accept],
                targets[accept],
                nx1[accept],
                ny1[accept],
                nx2[accept],
                ny2[accept],
            )
        return (k, int(accept.sum()))

    def interchange_batch(
        self, batch: int, temperature: float, rng: np.random.Generator
    ) -> Tuple[int, int]:
        """One batch of pairwise interchanges (§3.2.1 A2, not range
        limited); all cells across the batch are distinct."""
        if not self._active:
            raise RuntimeError("call begin() before running batches")
        k = min(batch, len(self.movable) // 2)
        if k < 1:
            return (0, 0)
        chosen = rng.permutation(self.movable)[: 2 * k]
        a = chosen[:k]
        b = chosen[k:]
        ca = self.centers[a]
        cb = self.centers[b]

        ax1, ay1, ax2, ay2 = self._world(a, cb)
        bx1, by1, bx2, by2 = self._world(b, ca)
        nx1 = np.concatenate([ax1, bx1])
        ny1 = np.concatenate([ay1, by1])
        nx2 = np.concatenate([ax2, bx2])
        ny2 = np.concatenate([ay2, by2])
        both = np.concatenate([a, b])
        ov = self._vs_static(nx1, ny1, nx2, ny2)
        stat = ov.sum(axis=1).reshape(2 * k, self.tmax).sum(axis=1)
        stat -= self._own_sum(ov, 2 * k, both)
        stat -= self._own_sum(ov, 2 * k, np.concatenate([b, a]))
        new_static = stat[:k] + stat[k:]
        intra_new = self._tiles_overlap(
            ax1, ay1, ax2, ay2, bx1, by1, bx2, by2
        )
        # Old contribution straight from the cached per-cell interaction
        # sums; the a-b pair term is in both caches, subtract it once.
        sa = self.slotidx[a]
        sb = self.slotidx[b]
        intra_old = self._tiles_overlap(
            self.sx1[sa], self.sy1[sa], self.sx2[sa], self.sy2[sa],
            self.sx1[sb], self.sy1[sb], self.sx2[sb], self.sy2[sb],
        )
        d_c2 = (
            new_static + intra_new - (self.O_cell[a] + self.O_cell[b] - intra_old)
        )

        # ΔC1: every net of a or b, with both shifts applied; nets shared
        # by both lists are counted once (via a's list).
        da = cb - ca

        def contrib(rows):
            ow = self.own[rows]
            shift = da.T[:, :, None, None] * (ow == a[:, None, None]) - da.T[
                :, :, None, None
            ] * (ow == b[:, None, None])
            ns = self._hmax(self.bhi[:, rows] + shift) - self._hmin(
                self.blo[:, rows] + shift
            )
            return (
                self.wcell[:, rows] * (ns - self.cs_cell[:, rows])
            ).sum(axis=0)

        shared = (
            self.cnet[b][:, :, None] == self.cnet[a][:, None, :]
        ).any(axis=-1)
        d_c1 = contrib(a).sum(axis=-1) + np.where(
            shared, 0.0, contrib(b)
        ).sum(axis=-1)

        accept = self._metropolis(d_c1 + self.p2 * d_c2, temperature, rng)
        if accept.any():
            acc2 = np.concatenate([accept, accept])
            self._commit(
                both[acc2],
                np.concatenate([cb[accept], ca[accept]]),
                nx1[acc2],
                ny1[acc2],
                nx2[acc2],
                ny2[acc2],
            )
        return (k, int(accept.sum()))

    @staticmethod
    def _metropolis(
        delta: np.ndarray, temperature: float, rng: np.random.Generator
    ) -> np.ndarray:
        if temperature <= 0.0:
            return delta <= 0.0
        # Branchless: downhill deltas clamp to exp(0) = 1, which every
        # draw from [0, 1) beats.
        z = np.clip(delta / temperature, 0.0, 700.0)
        return rng.random(delta.shape[0]) < np.exp(-z)

    def _commit(
        self,
        cells: np.ndarray,
        targets: np.ndarray,
        nx1: np.ndarray,
        ny1: np.ndarray,
        nx2: np.ndarray,
        ny2: np.ndarray,
    ) -> None:
        """Apply accepted proposals and refresh the exact totals."""
        self.centers[cells] = targets
        self.cxy[:, cells] = targets.T
        idx = self.slotidx[cells].ravel()
        self.sx1[idx] = nx1.ravel()
        self.sy1[idx] = ny1.ravel()
        self.sx2[idx] = nx2.ravel()
        self.sy2[idx] = ny2.ravel()
        # Padding rows scattered inverted boxes into the dummy slot; put
        # it back to the canonical inverted box (last write wins, so a
        # real coordinate may have landed there — never read as valid,
        # but keep the table tidy for the next overlap pass).
        t = self.T
        self.sx1[t] = np.inf
        self.sy1[t] = np.inf
        self.sx2[t] = -np.inf
        self.sy2[t] = -np.inf
        # Exact totals of the committed state: accepted proposals were
        # judged against the frozen batch-start state, so their summed
        # deltas would double- or under-count interacting pairs.
        self.c1 = self._c1_total()
        self._refresh_c1_tables()
        self._refresh_overlaps()


class BatchMoveGenerator:
    """Drives ``BatchKernel`` with the §3.2.1 displacement/interchange
    mixture — the batched analogue of ``MoveGenerator`` for the
    throughput anneal (no cascade, no pin/aspect moves)."""

    def __init__(
        self,
        state: ArrayPlacementState,
        limiter,
        r_ratio: float = 10.0,
        batch: int = 48,
        seed: int = 0,
    ) -> None:
        if r_ratio <= 0:
            raise ValueError("r_ratio must be positive")
        if batch < 1:
            raise ValueError("batch must be at least 1")
        self.kernel = BatchKernel(state)
        self.limiter = limiter
        self.displacement_probability = r_ratio / (1.0 + r_ratio)
        self.batch = batch
        self.rng = np.random.default_rng(seed)
        self.stats = {
            "displace_batch": [0, 0],
            "interchange_batch": [0, 0],
        }

    def begin(self) -> None:
        self.kernel.begin()

    def finish(self) -> None:
        self.kernel.finish()

    def step(self, temperature: float) -> Tuple[int, int]:
        """One batch: displacement with probability r/(1+r), else
        interchange.  Returns (attempts, accepts)."""
        if self.rng.random() < self.displacement_probability:
            window = (
                self.limiter.window_x(temperature),
                self.limiter.window_y(temperature),
            )
            out = self.kernel.displacement_batch(
                self.batch, temperature, window, self.rng
            )
            row = self.stats["displace_batch"]
        else:
            out = self.kernel.interchange_batch(
                self.batch, temperature, self.rng
            )
            row = self.stats["interchange_batch"]
        row[0] += out[0]
        row[1] += out[1]
        return out
