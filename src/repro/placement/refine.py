"""Stage 2 of TimberWolfMC (§4): channel-driven placement refinement.

Each refinement pass executes three steps:

1. *channel definition* — extract every critical region of the current
   (legalized) placement (§4.1),
2. *global routing* — route all nets over the channel graph (§4.2); the
   routed densities give each channel's required width w = (d+2) * t_s,
3. *placement refinement* — a low-temperature anneal in which every cell
   edge carries a *static* outward expansion of half its channels'
   required width; only single-cell displacements and pin moves are
   generated (orientations, instances, and aspect ratios are frozen —
   changing them would invalidate the per-edge widths, §4.3).

The initial stage-2 window is the fraction mu = 0.03 of the core span;
Eqn 28 converts that into the starting temperature T' for the Table-2
schedule.  Three passes suffice for the TEIL and chip area to converge.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..annealing import (
    Annealer,
    AnnealResult,
    AnyOf,
    FloorStop,
    FrozenStop,
    RangeLimiter,
    WindowStop,
    stage2_schedule,
)
from ..channels import (
    ChannelGraph,
    CongestionReport,
    cell_edge_expansions,
    decompose_free_space,
    extract_critical_regions,
)
from ..config import TimberWolfConfig
from ..geometry import Rect
from ..netlist import Circuit
from ..resilience.drift import DriftGuard
from ..resilience.faults import fault_point
from ..routing import GlobalRouter, RoutingResult
from ..telemetry import current_tracer
from .compact import compact
from .legalize import remove_overlaps
from .moves import MoveGenerator, PlacementAnnealingState
from .stage1 import Stage1Result
from .state import PlacementState

#: Margin (in track spacings) added around the placement when defining the
#: channel-extraction boundary, so boundary channels have somewhere to live.
BOUNDARY_MARGIN_TRACKS = 4.0

#: Stage-2 safety floor in units of S_T.
STAGE2_T_FLOOR = 0.01


@dataclass
class RefinementPass:
    """Artifacts of one (channel define -> route -> refine) execution."""

    index: int
    graph: ChannelGraph
    routing: RoutingResult
    congestion: CongestionReport
    anneal: Optional[AnnealResult]
    teil_after: float
    chip_area_after: float
    #: move kind -> [attempts, accepts] from the pass's anneal, so the
    #: acceptance profile of every stage-2 move class is inspectable.
    move_stats: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def overflow(self) -> int:
        return self.routing.overflow


@dataclass
class RefinementResult:
    """Outcome of the whole stage 2."""

    state: PlacementState
    passes: List[RefinementPass] = field(default_factory=list)
    #: True when a run budget cut refinement short (remaining passes or
    #: the tail of an anneal were skipped).
    truncated: bool = False
    #: First pass index this run executed (> 0 after a stage-2 resume;
    #: earlier passes ran in the original process).
    resumed_at_pass: int = 0

    @property
    def final_pass(self) -> RefinementPass:
        if not self.passes:
            raise ValueError("no refinement passes were run")
        return self.passes[-1]

    @property
    def teil(self) -> float:
        return self.state.teil()

    @property
    def chip_area(self) -> float:
        return self.state.chip_area()


def channel_boundary(state: PlacementState, track_spacing: float) -> Rect:
    """The outer boundary used for channel extraction: the target core
    grown to cover any spilled cells, plus a routing margin."""
    margin = BOUNDARY_MARGIN_TRACKS * track_spacing
    bbox = Rect.bounding(
        [state.core] + [state.world_shape(name).bbox for name in state.names]
    )
    return bbox.expanded_uniform(margin)


def define_and_route(
    circuit: Circuit,
    state: PlacementState,
    config: TimberWolfConfig,
    rng: random.Random,
):
    """Steps 1-2 of a refinement pass; returns (graph, routing, report)."""
    tracer = current_tracer()
    t_s = circuit.track_spacing
    with tracer.span("channels.define"):
        shapes = {name: state.world_shape(name) for name in state.names}
        boundary = channel_boundary(state, t_s)
        # Critical regions give the channels whose widths feed refinement;
        # the complete free-space decomposition gives the routing substrate.
        regions = extract_critical_regions(shapes, boundary)
        free = decompose_free_space(shapes.values(), boundary)
        graph = ChannelGraph(free, t_s, regions=regions)
        for name in state.names:
            cell = circuit.cells[name]
            for pin_name in cell.pins:
                graph.attach_pin(name, pin_name, state.pin_position(name, pin_name))
        if tracer.enabled:
            tracer.event(
                "channels.defined",
                critical_regions=len(regions),
                free_rects=len(free),
                attached_pins=len(graph.pin_nodes),
            )
    router = GlobalRouter(
        graph,
        m_routes=config.m_routes,
        rng=rng,
        workers=config.parallel.workers,
    )
    routing = router.route(circuit)
    report = routing.congestion(graph)
    return graph, routing, report


def run_refinement(
    circuit: Circuit,
    stage1: Stage1Result,
    config: Optional[TimberWolfConfig] = None,
    rng: Optional[random.Random] = None,
    control=None,
    start_pass: int = 0,
) -> RefinementResult:
    """Run the configured number of refinement passes on a stage-1 result.

    ``control`` carries the budget / checkpoint / interrupt context; a
    checkpoint is written at every pass boundary.  ``start_pass`` skips
    completed passes when resuming from a stage-2 checkpoint (the state
    and RNG must already be restored to that boundary).
    """
    config = config if config is not None else TimberWolfConfig()
    rng = rng if rng is not None else random.Random(config.seed + 1)
    state = stage1.state
    t_s = circuit.track_spacing
    result = RefinementResult(state=state, resumed_at_pass=start_pass)
    tracer = current_tracer()

    for pass_index in range(start_pass, config.refinement_passes):
        if control is not None:
            reason = control.budget_exhausted()
            if reason is not None:
                result.truncated = True
                if tracer.enabled:
                    tracer.event(
                        "stage2.budget_exhausted",
                        pass_index=pass_index,
                        reason=reason,
                    )
                break
            control.pass_boundary(pass_index, rng, state)
        with tracer.span("stage2.pass", index=pass_index):
            # Channel definition needs disjoint cells; keep one track of gap
            # so every adjacency still admits a channel.
            with tracer.span("stage2.legalize"):
                residual = remove_overlaps(state, min_gap=t_s)
            if residual > 0:
                warnings.warn(
                    f"legalization left {residual:.1f} units^2 of cell overlap "
                    f"before refinement pass {pass_index}; channels may be "
                    "missing where cells still overlap",
                    stacklevel=2,
                )

            routed = _define_route_expand(
                circuit, state, config, rng, t_s, pass_index, control
            )
            if routed is None:
                # Channel definition / routing failed beyond recovery for
                # this pass (recorded by the supervisor): keep the current
                # placement and try the next pass from scratch.
                continue
            graph, routing, report, expansions = routed
            state.set_static_expansions(expansions)
            # The §4.3 spacing step: separate the margin-carrying shapes so
            # every channel immediately has its required width; the anneal
            # below then re-optimizes wirelength under that constraint.
            with tracer.span("stage2.space"):
                remove_overlaps(state, use_expanded=True)

            is_last = pass_index == config.refinement_passes - 1
            with tracer.span("stage2.refine_anneal", final=is_last):
                anneal, move_stats = _refine_anneal(
                    state, stage1, config, rng, is_last, control
                )
            # "Or, if excessive space was allocated, then the cells are
            # compacted as much as possible" — the anneal's tiny window
            # cannot close large gaps, so a deterministic slide toward the
            # core center finishes the job (channel widths preserved: the
            # compaction operates on the margin-carrying shapes).
            with tracer.span("stage2.compact"):
                compact(state)

            result.passes.append(
                RefinementPass(
                    index=pass_index,
                    graph=graph,
                    routing=routing,
                    congestion=report,
                    anneal=anneal,
                    teil_after=state.teil(),
                    chip_area_after=state.chip_area(),
                    move_stats=move_stats,
                )
            )
            if tracer.enabled:
                tracer.event(
                    "stage2.pass",
                    index=pass_index,
                    teil=round(state.teil(), 2),
                    chip_area=round(state.chip_area(), 2),
                    overflow=routing.overflow,
                    residual_overlap=round(residual, 2),
                )
            if anneal.truncated:
                result.truncated = True
                break

    # Leave the placement legal for downstream consumers — including the
    # reserved channel space (expanded shapes disjoint, §4.3).  When no
    # pass reached set_static_expansions (all supervised away, or the
    # budget ran dry first) the state is still in dynamic-estimator mode
    # and the expanded legalization does not apply.
    with tracer.span("stage2.final_legalize"):
        remove_overlaps(state, use_expanded=not state.dynamic_expansion)
        if not state.dynamic_expansion:
            compact(state)
    return result


def _define_route_expand(
    circuit: Circuit,
    state: PlacementState,
    config: TimberWolfConfig,
    rng: random.Random,
    t_s: float,
    pass_index: int,
    control,
):
    """Steps 1-2 of a pass plus the §4.3 edge expansions, supervised:
    a failure is recorded and the pass degrades to a no-op instead of
    aborting the flow."""

    def body():
        fault_point("channels.define", pass_index=pass_index)
        graph, routing, report = define_and_route(circuit, state, config, rng)
        fault_point("stage2.expansions", pass_index=pass_index)
        expansions = cell_edge_expansions(graph, routing.routes, t_s)
        return graph, routing, report, expansions

    if control is None:
        return body()
    return control.supervisor.run(f"stage2.pass{pass_index}.route", body)


def _refine_anneal(
    state: PlacementState,
    stage1: Stage1Result,
    config: TimberWolfConfig,
    rng: random.Random,
    is_last: bool,
    control=None,
) -> "tuple[AnnealResult, Dict[str, List[int]]]":
    limiter = stage1.limiter
    # Eqn 28: T' makes the window the fraction mu of its full span.
    t_start = limiter.temperature_for_fraction(config.mu)
    schedule = stage2_schedule(
        stage1.plan.average_effective_cell_area, t_start=t_start
    )
    generator = MoveGenerator(
        state,
        limiter,
        r_ratio=config.r_ratio,
        selector=config.selector,
        orientation_moves=False,
        aspect_moves=False,
        pin_moves=True,
        interchange_moves=False,
    )
    floor = FloorStop(schedule.scale * STAGE2_T_FLOOR)
    if is_last:
        # Final pass: stop when the cost is frozen for 3 inner loops.
        stopping = AnyOf(FrozenStop(3), floor)
    else:
        stopping = AnyOf(WindowStop(limiter), floor)
    annealer = Annealer(
        schedule,
        stopping,
        attempts_per_cell=config.stage2_attempts_per_cell,
        max_temperatures=config.max_temperatures,
        rng=rng,
        eta_floor=schedule.scale * STAGE2_T_FLOOR,
    )
    observers = []
    if config.drift_check_every:
        guard = DriftGuard(
            config.drift_check_every,
            config.drift_tolerance,
            config.drift_action,
        )
        observers.append(guard.observer())
    if control is not None:
        observers.append(control.interrupt_observer())
    result = annealer.run(
        PlacementAnnealingState(state, generator),
        budget=control.budget if control is not None else None,
        observers=observers,
    )
    return result, {k: list(v) for k, v in generator.stats.items()}
