"""Array-native stage-1 placement kernel (struct-of-arrays hot path).

``PlacementState`` walks a Python object graph on every move: dict-keyed
pin positions, per-net span dicts, freshly allocated ``TileSet``/``Rect``
objects, and dict-of-dict snapshots.  At paper scale that costs ~80 us
per attempted move — fine for one anneal, prohibitive for multi-chain
runs and design-space sweeps.

``ArrayPlacementState`` keeps the object model as the authoring / IO
layer (construction, ``state_dict``, ``rebuild``, drift audits, and every
cold accessor are inherited unchanged) and replaces only the per-move hot
path with a struct-of-arrays mirror:

* cell geometry     — flat parallel lists / numpy arrays of expanded
  bounding boxes and (rarely) per-tile coordinate tuples,
* pin positions     — one flat coordinate pair per pin, indexed by a
  per-cell slot table instead of name-keyed dicts,
* net incidence     — integer net ids with flat member-pin-id lists,
  weights, and spans,
* variant caches    — per-(instance|aspect, orientation) oriented-bbox
  and pin-offset tuples, flattened once from the object-core caches.

The mirror is rebuilt from the object model by ``rebuild()`` (so every
existing entry point — ``randomize``, ``load_state_dict``, legalization,
``set_static_expansions`` — stays correct), and the move methods write
both the mirror and the authoritative ``records``.

Bit-identity contract
---------------------

The kernel replays any move sequence with *identical* accept/reject
decisions and cost accumulators to the object core.  This is not an
approximation: every floating-point expression is evaluated with the
same operands in the same order as ``PlacementState._refresh_cells``:

* net spans are exact min/max reductions (order-independent),
* the C1/C2/C3 deltas accumulate per-net / per-partner terms in the
  object core's documented order (insertion order for single-cell moves,
  name-sorted for pair moves, index-sorted partner loops),
* the C2 narrow phase reproduces ``TileSet.overlap_area``'s accumulation
  order, including the single-tile fast path,
* adding a zero term is a float no-op, so the broad phase only needs to
  visit a *superset* of the partners whose pair term changes — the same
  grid-candidates-plus-adjacency superset the object core visits,
* shape variants and pin offsets are flattened from the object core's
  own caches (``_oriented_shape`` / ``_pin_positions``), so there is no
  second implementation of the geometry math to drift.

Conversion helpers (``from_object`` / ``to_object`` / ``soa``) give the
lossless round trip at stage boundaries; ``cost_breakdown_vector`` is
the fully vectorized (numpy) C1/C2/C3 evaluation over the SoA mirror,
used for audits and benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

try:  # numpy backs the batch/vectorized paths; the scalar kernel runs without it
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

from ..estimator import CorePlan
from ..geometry import BOTTOM, LEFT, RIGHT, TOP, Rect, TileSet
from ..netlist import Circuit
from .state import _SIDE_MAP_INV, PlacementState, _PIN_CACHE_LIMIT

__all__ = ["ArrayPlacementState", "ArraySnapshot", "make_placement_state"]

#: Registered placement-core implementations (see ``TimberWolfConfig.core``).
PLACEMENT_CORES = ("object", "array")


def make_placement_state(
    core: str,
    circuit: Circuit,
    plan: CorePlan,
    p2: float = 1.0,
    kappa: float = 5.0,
    dynamic_expansion: bool = True,
    static_expansions: Optional[Dict[str, Dict[str, float]]] = None,
) -> PlacementState:
    """Construct the placement state for the configured core."""
    if core not in PLACEMENT_CORES:
        raise ValueError(f"unknown placement core {core!r}")
    cls = ArrayPlacementState if core == "array" else PlacementState
    return cls(
        circuit,
        plan,
        p2=p2,
        kappa=kappa,
        dynamic_expansion=dynamic_expansion,
        static_expansions=static_expansions,
    )


class ArraySnapshot:
    """Undo token of one array-core move: plain scalars and short lists.

    ``kind`` selects the restore path: 0 = single-cell geometry move,
    1 = pair interchange, 2 = pin-group reassignment (no geometry).
    ``geometry`` mirrors the object core's ``_Snapshot.geometry`` flag.
    """

    __slots__ = (
        "kind",
        "geometry",
        "cost_before",
        "cells",
        "recs",
        "ebbs",
        "exp_refs",
        "shape_refs",
        "pins",
        "spans",
        "overlaps",
        "borders",
        "c3s",
        "pin_site",
        "c1",
        "c2_raw",
        "c3_total",
    )

    def __init__(self, kind, geometry, cost_before, cells, recs, ebbs,
                 exp_refs, shape_refs, pins, spans, overlaps, borders, c3s,
                 pin_site, c1, c2_raw, c3_total):
        self.kind = kind
        self.geometry = geometry
        self.cost_before = cost_before
        self.cells = cells
        self.recs = recs
        self.ebbs = ebbs
        self.exp_refs = exp_refs
        self.shape_refs = shape_refs
        self.pins = pins
        self.spans = spans
        self.overlaps = overlaps
        self.borders = borders
        self.c3s = c3s
        self.pin_site = pin_site
        self.c1 = c1
        self.c2_raw = c2_raw
        self.c3_total = c3_total


class ArrayPlacementState(PlacementState):
    """Struct-of-arrays hot path over the object-core placement model."""

    def __init__(self, *args, **kwargs) -> None:
        self._soa_ready = False
        super().__init__(*args, **kwargs)
        self._build_static_soa()
        self._sync_soa()
        self._soa_ready = True

    # ------------------------------------------------------------------
    # SoA construction and synchronization
    # ------------------------------------------------------------------

    def _build_static_soa(self) -> None:
        """Immutable incidence structure: pin slots, net ids, densities."""
        n = len(self.names)
        circuit = self.circuit

        # Flat pin slots: per-cell contiguous ranges in cell.pins order
        # (the iteration order _pin_positions builds its dicts in).
        self._pin_start: List[int] = []
        self._pin_count: List[int] = []
        self._pin_names: List[Tuple[str, ...]] = []
        self._pin_slot: List[Dict[str, int]] = []
        total = 0
        for i in range(n):
            cell = self.cell(i)
            names = tuple(cell.pins)
            self._pin_start.append(total)
            self._pin_count.append(len(names))
            self._pin_names.append(names)
            self._pin_slot.append(
                {name: total + k for k, name in enumerate(names)}
            )
            total += len(names)
        self._num_pins = total
        self._lpx: List[float] = [0.0] * total
        self._lpy: List[float] = [0.0] * total

        # Net ids in circuit.nets order; members as flat pin ids.
        self._net_names: List[str] = list(circuit.nets)
        self._nid: Dict[str, int] = {
            name: e for e, name in enumerate(self._net_names)
        }
        self._nmem: List[List[int]] = []
        self._nh: List[float] = []
        self._nv: List[float] = []
        for name in self._net_names:
            net = circuit.nets[name]
            self._nmem.append(
                [self._pin_slot[idx][pin] for idx, pin in self._net_members[name]]
            )
            self._nh.append(net.h_weight)
            self._nv.append(net.v_weight)
        #: Rank of each net id under name ordering: sorting ids by rank
        #: reproduces the object core's name-sorted pair-move net loop.
        self._nrank: List[int] = [0] * len(self._net_names)
        for rank, name in enumerate(sorted(self._net_names)):
            self._nrank[self._nid[name]] = rank
        self._cnets: List[List[int]] = [
            [self._nid[name] for name in self._cell_nets[i]] for i in range(n)
        ]
        self._lsx: List[float] = [0.0] * len(self._net_names)
        self._lsy: List[float] = [0.0] * len(self._net_names)

        # Macro side densities resolved per orientation (static data).
        self._dens8: List[Optional[Tuple[Tuple, ...]]] = []
        for i in range(n):
            dens = self._side_density[i]
            if dens is None:
                self._dens8.append(None)
            else:
                self._dens8.append(
                    tuple(
                        (
                            dens[_SIDE_MAP_INV[o][LEFT]],
                            dens[_SIDE_MAP_INV[o][BOTTOM]],
                            dens[_SIDE_MAP_INV[o][RIGHT]],
                            dens[_SIDE_MAP_INV[o][TOP]],
                        )
                        for o in range(8)
                    )
                )
        self._slab4: Tuple[Tuple[float, float, float, float], ...] = tuple(
            (s.x1, s.y1, s.x2, s.y2) for s in self._slabs
        )
        self._has_groups: List[bool] = [bool(g) for g in self._groups]

        # Flattened variant caches: (key) -> oriented bbox (+tiles) and
        # (key) -> pin-offset tuples.  Filled lazily from the object
        # core's own caches, so the geometry math has a single source.
        self._g_flat: List[Dict[Tuple, Tuple]] = [dict() for _ in range(n)]
        self._o_flat: List[Dict[Tuple, Tuple]] = [dict() for _ in range(n)]

    def _sync_soa(self) -> None:
        """Refresh the mutable mirrors from the object-core caches (runs
        after every ``rebuild()``, so every cold entry point stays valid)."""
        n = len(self.names)
        self._lex1: List[float] = [0.0] * n
        self._ley1: List[float] = [0.0] * n
        self._lex2: List[float] = [0.0] * n
        self._ley2: List[float] = [0.0] * n
        #: None for single-tile cells (the bbox *is* the tile); else the
        #: world-frame expanded tile coordinates.
        self._ltiles: List[Optional[Tuple]] = [None] * n
        for i in range(n):
            exp = self._expanded[i]
            bb = exp.bbox
            self._lex1[i] = bb.x1
            self._ley1[i] = bb.y1
            self._lex2[i] = bb.x2
            self._ley2[i] = bb.y2
            tiles = exp._tiles
            self._ltiles[i] = (
                None
                if len(tiles) == 1
                else tuple((t.x1, t.y1, t.x2, t.y2) for t in tiles)
            )
            start = self._pin_start[i]
            pins = self._pins[i]
            for k, name in enumerate(self._pin_names[i]):
                x, y = pins[name]
                self._lpx[start + k] = x
                self._lpy[start + k] = y
        for e, name in enumerate(self._net_names):
            sx, sy = self._net_spans[name]
            self._lsx[e] = sx
            self._lsy[e] = sy
        self._stat4: List[Tuple[float, float, float, float]] = [
            (
                static.get(LEFT, 0.0),
                static.get(BOTTOM, 0.0),
                static.get(RIGHT, 0.0),
                static.get(TOP, 0.0),
            )
            for static in self._static
        ]

    def rebuild(self) -> None:
        super().rebuild()
        if self._soa_ready:
            self._sync_soa()

    # ------------------------------------------------------------------
    # variant caches (flattened views over the object-core caches)
    # ------------------------------------------------------------------

    def _geom_flat(self, i: int, key: Tuple) -> Tuple:
        """(ox1, oy1, ox2, oy2, local_tiles|None) of the oriented shape."""
        cache = self._g_flat[i]
        entry = cache.get(key)
        if entry is None:
            if len(cache) >= _PIN_CACHE_LIMIT:
                cache.clear()
            ts = self._oriented_shape(i)  # object-core math + memoization
            bb = ts.bbox
            tiles = ts._tiles
            entry = (
                bb.x1,
                bb.y1,
                bb.x2,
                bb.y2,
                None
                if len(tiles) == 1
                else tuple((t.x1, t.y1, t.x2, t.y2) for t in tiles),
            )
            cache[key] = entry
        return entry

    def _offsets_flat(self, i: int, key: Tuple) -> Tuple[Tuple, Tuple]:
        """Pin offsets in slot order, as (xs, ys) tuples."""
        cache = self._o_flat[i]
        entry = cache.get(key)
        if entry is None:
            if len(cache) >= _PIN_CACHE_LIMIT:
                cache.clear()
            source = self._pin_offset_cache[i]
            offsets = source.get(key)
            if offsets is None:
                # Populate the object-core cache (its dict iterates in
                # cell.pins order — the same order as our slots).
                self._pin_positions(i)
                offsets = source[key]
            entry = (
                tuple(wx for wx, _ in offsets.values()),
                tuple(wy for _, wy in offsets.values()),
            )
            cache[key] = entry
        return entry

    def _variant_keys(self, i: int):
        """(geometry key, pin-offset key) for cell i's current record —
        the same keys the object-core caches use."""
        rec = self.records[i]
        if self._is_macro[i]:
            gkey = (rec.instance, rec.orientation)
            return gkey, gkey
        gkey = (rec.aspect_ratio, rec.orientation)
        return gkey, (
            rec.aspect_ratio,
            rec.orientation,
            tuple(rec.pin_sites.values()),
        )

    # ------------------------------------------------------------------
    # hot-path helpers
    # ------------------------------------------------------------------

    def _cell_geometry(self, i: int):
        """New expanded bbox (+tiles) for cell i's current record.

        Reproduces _refresh_cells' geometry block: oriented bbox,
        ``side_expansions`` on the translated bbox, and the composed
        translate+expand arithmetic of ``translated_expanded``.
        """
        rec = self.records[i]
        gkey, _ = self._variant_keys(i)
        ox1, oy1, ox2, oy2, ltiles = self._geom_flat(i, gkey)
        cx, cy = rec.center
        if self.dynamic_expansion:
            dens = self._dens8[i]
            if dens is None:
                dl = db = dr = dt = None
            else:
                dl, db, dr, dt = dens[rec.orientation]
            left, bottom, right, top = self.estimator.side_expansions(
                ox1 + cx, oy1 + cy, ox2 + cx, oy2 + cy, dl, db, dr, dt
            )
        else:
            left, bottom, right, top = self._stat4[i]
        if ltiles is None:
            return (
                (ox1 + cx) - left,
                (oy1 + cy) - bottom,
                (ox2 + cx) + right,
                (oy2 + cy) + top,
                None,
            )
        tiles = tuple(
            (
                (tx1 + cx) - left,
                (ty1 + cy) - bottom,
                (tx2 + cx) + right,
                (ty2 + cy) + top,
            )
            for tx1, ty1, tx2, ty2 in ltiles
        )
        return (
            min(t[0] for t in tiles),
            min(t[1] for t in tiles),
            max(t[2] for t in tiles),
            max(t[3] for t in tiles),
            tiles,
        )

    def _border_flat(self, x1, y1, x2, y2, tiles) -> float:
        """``_border_overlap`` over flat coordinates (same accumulation)."""
        core = self.core
        if x1 >= core.x1 and x2 <= core.x2 and y1 >= core.y1 and y2 <= core.y2:
            return 0.0
        if tiles is None:
            tiles = ((x1, y1, x2, y2),)
        total = 0.0
        for sx1, sy1, sx2, sy2 in self._slab4:
            if not (x1 < sx2 and sx1 < x2 and y1 < sy2 and sy1 < y2):
                continue
            for tx1, ty1, tx2, ty2 in tiles:
                w = min(tx2, sx2) - max(tx1, sx1)
                if w <= 0.0:
                    continue
                h = min(ty2, sy2) - max(ty1, sy1)
                if h <= 0.0:
                    continue
                total += w * h
        return total

    def _pair_area_flat(self, x1, y1, x2, y2, tiles_i, j) -> float:
        """Narrow-phase overlap of the (already bbox-accepted) pair,
        reproducing ``TileSet.overlap_area``'s loop order with cell i's
        tiles outermost (the object core always calls exp_i.overlap_area)."""
        tiles_j = self._ltiles[j]
        if tiles_i is None and tiles_j is None:
            jx2 = self._lex2[j]
            jy2 = self._ley2[j]
            return (min(x2, jx2) - max(x1, self._lex1[j])) * (
                min(y2, jy2) - max(y1, self._ley1[j])
            )
        a = ((x1, y1, x2, y2),) if tiles_i is None else tiles_i
        b = (
            ((self._lex1[j], self._ley1[j], self._lex2[j], self._ley2[j]),)
            if tiles_j is None
            else tiles_j
        )
        total = 0.0
        for tx1, ty1, tx2, ty2 in a:
            for ux1, uy1, ux2, uy2 in b:
                w = min(tx2, ux2) - max(tx1, ux1)
                if w <= 0.0:
                    continue
                h = min(ty2, uy2) - max(ty1, uy1)
                if h <= 0.0:
                    continue
                total += w * h
        return total

    def _span_delta(self, net_ids, saved_spans) -> None:
        """Recompute spans of ``net_ids`` (in the given order) and
        accumulate the C1 delta with _refresh_cells' exact expression."""
        lpx = self._lpx
        lpy = self._lpy
        lsx = self._lsx
        lsy = self._lsy
        nh = self._nh
        nv = self._nv
        c1 = self._c1
        for e in net_ids:
            mem = self._nmem[e]
            if mem:
                xs = [lpx[p] for p in mem]
                ys = [lpy[p] for p in mem]
                new_x = max(xs) - min(xs)
                new_y = max(ys) - min(ys)
            else:
                new_x = new_y = 0.0
            old_x = lsx[e]
            old_y = lsy[e]
            saved_spans.append((e, old_x, old_y))
            lsx[e] = new_x
            lsy[e] = new_y
            h = nh[e]
            v = nv[e]
            c1 += (new_x * h + new_y * v) - (old_x * h + old_y * v)
        self._c1 = c1

    def _partner_delta(self, i, x1, y1, x2, y2, tiles, skip, saved_over) -> None:
        """Border + partner-pair C2 delta for cell i (object-core order:
        border first, then grid-candidates ∪ adjacency, index-sorted,
        with pair moves skipping the already-handled twin)."""
        old_border = self._borders[i]
        new_border = self._border_flat(x1, y1, x2, y2, tiles)
        self._borders[i] = new_border
        c2 = self._c2_raw + (new_border - old_border)
        partners = self._grid.candidates(i)
        adj = self._adj
        ai = adj[i]
        if ai:
            partners |= ai
        overlaps = self._overlaps
        lex1 = self._lex1
        ley1 = self._ley1
        lex2 = self._lex2
        ley2 = self._ley2
        for j in sorted(partners):
            if skip is not None and j in skip and j < i:
                continue
            key = (i, j) if i < j else (j, i)
            old = overlaps.pop(key, 0.0)
            if (
                lex1[j] >= x2
                or lex2[j] <= x1
                or ley1[j] >= y2
                or ley2[j] <= y1
            ):
                new = 0.0
            else:
                new = self._pair_area_flat(x1, y1, x2, y2, tiles, j)
            if new > 0.0:
                overlaps[key] = new
                ai.add(j)
                adj[j].add(i)
            elif old > 0.0:
                ai.discard(j)
                adj[j].discard(i)
            c2 += new - old
            saved_over.append((i, j, old))
        self._c2_raw = c2

    def _commit_geometry(self, i, x1, y1, x2, y2, tiles) -> None:
        self._lex1[i] = x1
        self._ley1[i] = y1
        self._lex2[i] = x2
        self._ley2[i] = y2
        self._ltiles[i] = tiles
        self._shapes[i] = None
        self._expanded[i] = None  # type: ignore[call-overload]
        self._grid.update_coords(i, x1, y1, x2, y2)

    def _commit_pins(self, i) -> None:
        rec = self.records[i]
        _, okey = self._variant_keys(i)
        offx, offy = self._offsets_flat(i, okey)
        cx, cy = rec.center
        lpx = self._lpx
        lpy = self._lpy
        start = self._pin_start[i]
        for k in range(self._pin_count[i]):
            lpx[start + k] = cx + offx[k]
            lpy[start + k] = cy + offy[k]

    def _commit_c3(self, i) -> None:
        if self._has_groups[i]:
            new_c3 = self._cell_c3(i)
            self._c3_total += new_c3 - self._c3[i]
            self._c3[i] = new_c3

    def _save_pins(self, i) -> Tuple[List[float], List[float]]:
        start = self._pin_start[i]
        end = start + self._pin_count[i]
        return (self._lpx[start:end], self._lpy[start:end])

    # ------------------------------------------------------------------
    # move API (same signatures and semantics as the object core)
    # ------------------------------------------------------------------

    def move_cell(
        self,
        idx: int,
        center: Optional[Tuple[float, float]] = None,
        orientation: Optional[int] = None,
        instance: Optional[int] = None,
        aspect_ratio: Optional[float] = None,
    ) -> Tuple[float, ArraySnapshot]:
        rec = self.records[idx]
        if center is not None:
            rec_center = center
        else:
            rec_center = rec.center
        return self._apply_single(
            idx,
            rec_center,
            rec.orientation if orientation is None else orientation,
            rec.instance if instance is None else instance,
            rec.aspect_ratio if aspect_ratio is None else aspect_ratio,
            invert=False,
        )

    def move_cell_inverted(
        self, idx: int, center: Tuple[float, float]
    ) -> Tuple[float, ArraySnapshot]:
        rec = self.records[idx]
        return self._apply_single(
            idx, center, rec.orientation, rec.instance, rec.aspect_ratio,
            invert=True,
        )

    def _apply_single(
        self, i, new_center, new_o, new_inst, new_ar, invert
    ) -> Tuple[float, ArraySnapshot]:
        rec = self.records[i]
        cost_before = self._c1 + self.p2 * self._c2_raw + self._c3_total
        snap = ArraySnapshot(
            0,
            True,
            cost_before,
            i,
            (rec.center, rec.orientation, rec.instance, rec.aspect_ratio),
            (
                self._lex1[i],
                self._ley1[i],
                self._lex2[i],
                self._ley2[i],
                self._ltiles[i],
            ),
            self._expanded[i],
            self._shapes[i],
            self._save_pins(i),
            [],
            [],
            self._borders[i],
            self._c3[i],
            None,
            self._c1,
            self._c2_raw,
            self._c3_total,
        )
        rec.center = new_center
        rec.orientation = new_o
        rec.instance = new_inst
        rec.aspect_ratio = new_ar
        if invert:
            self._invert_record_aspect(i)
        x1, y1, x2, y2, tiles = self._cell_geometry(i)
        self._commit_geometry(i, x1, y1, x2, y2, tiles)
        self._commit_pins(i)
        self._commit_c3(i)
        self._span_delta(self._cnets[i], snap.spans)
        self._partner_delta(i, x1, y1, x2, y2, tiles, None, snap.overlaps)
        cost = self._c1 + self.p2 * self._c2_raw + self._c3_total
        return (cost - cost_before, snap)

    def swap_cells(self, i: int, j: int) -> Tuple[float, ArraySnapshot]:
        if i == j:
            raise ValueError("cannot swap a cell with itself")
        return self._apply_pair(i, j, invert=False)

    def swap_cells_inverted(self, i: int, j: int) -> Tuple[float, ArraySnapshot]:
        if i == j:
            raise ValueError("cannot swap a cell with itself")
        return self._apply_pair(i, j, invert=True)

    def _apply_pair(self, i, j, invert) -> Tuple[float, ArraySnapshot]:
        a, b = (i, j) if i < j else (j, i)
        ra, rb = self.records[a], self.records[b]
        cost_before = self._c1 + self.p2 * self._c2_raw + self._c3_total
        snap = ArraySnapshot(
            1,
            True,
            cost_before,
            (a, b),
            (
                (ra.center, ra.orientation, ra.instance, ra.aspect_ratio),
                (rb.center, rb.orientation, rb.instance, rb.aspect_ratio),
            ),
            (
                (self._lex1[a], self._ley1[a], self._lex2[a], self._ley2[a],
                 self._ltiles[a]),
                (self._lex1[b], self._ley1[b], self._lex2[b], self._ley2[b],
                 self._ltiles[b]),
            ),
            (self._expanded[a], self._expanded[b]),
            (self._shapes[a], self._shapes[b]),
            (self._save_pins(a), self._save_pins(b)),
            [],
            [],
            (self._borders[a], self._borders[b]),
            (self._c3[a], self._c3[b]),
            None,
            self._c1,
            self._c2_raw,
            self._c3_total,
        )
        ci, cj = self.records[i].center, self.records[j].center
        self.records[i].center = cj
        self.records[j].center = ci
        if invert:
            self._invert_record_aspect(i)
            self._invert_record_aspect(j)
        # Loop 1 — geometry, pins, C3, in ascending cell order (the
        # object core's sorted idx_set).
        geoms = {}
        for k in (a, b):
            x1, y1, x2, y2, tiles = self._cell_geometry(k)
            self._commit_geometry(k, x1, y1, x2, y2, tiles)
            geoms[k] = (x1, y1, x2, y2, tiles)
            self._commit_pins(k)
            self._commit_c3(k)
        # Loop 2 — net spans in name-sorted order.
        net_ids = set(self._cnets[a])
        net_ids.update(self._cnets[b])
        rank = self._nrank
        self._span_delta(sorted(net_ids, key=rank.__getitem__), snap.spans)
        # Loop 3 — borders and partners, ascending cell order; the (a, b)
        # pair itself is evaluated once, in a's partner loop.
        skip = (a, b)
        for k in (a, b):
            x1, y1, x2, y2, tiles = geoms[k]
            self._partner_delta(k, x1, y1, x2, y2, tiles, skip, snap.overlaps)
        cost = self._c1 + self.p2 * self._c2_raw + self._c3_total
        return (cost - cost_before, snap)

    def move_pin_group(
        self, idx: int, group_key: str, side: str, start: int
    ) -> Tuple[float, ArraySnapshot]:
        rec = self.records[idx]
        cost_before = self._c1 + self.p2 * self._c2_raw + self._c3_total
        snap = ArraySnapshot(
            2,
            False,
            cost_before,
            idx,
            None,
            None,
            None,
            None,
            self._save_pins(idx),
            [],
            None,
            None,
            self._c3[idx],
            (group_key, rec.pin_sites[group_key]),
            self._c1,
            self._c2_raw,
            self._c3_total,
        )
        rec.pin_sites[group_key] = (side, start)
        self._commit_pins(idx)
        self._commit_c3(idx)
        self._span_delta(self._cnets[idx], snap.spans)
        cost = self._c1 + self.p2 * self._c2_raw + self._c3_total
        return (cost - cost_before, snap)

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------

    def _restore_pins(self, i, saved) -> None:
        xs, ys = saved
        start = self._pin_start[i]
        end = start + self._pin_count[i]
        self._lpx[start:end] = xs
        self._lpy[start:end] = ys

    def _restore_spans(self, spans) -> None:
        lsx = self._lsx
        lsy = self._lsy
        for e, sx, sy in spans:
            lsx[e] = sx
            lsy[e] = sy

    def _restore_overlaps(self, saved) -> None:
        overlaps = self._overlaps
        adj = self._adj
        for i, j, old in saved:
            key = (i, j) if i < j else (j, i)
            if old > 0.0:
                overlaps[key] = old
                adj[i].add(j)
                adj[j].add(i)
            else:
                overlaps.pop(key, None)
                adj[i].discard(j)
                adj[j].discard(i)

    def _restore_cell(self, i, rec_tuple, ebb, exp_ref, shape_ref) -> None:
        rec = self.records[i]
        rec.center, rec.orientation, rec.instance, rec.aspect_ratio = rec_tuple
        x1, y1, x2, y2, tiles = ebb
        self._lex1[i] = x1
        self._ley1[i] = y1
        self._lex2[i] = x2
        self._ley2[i] = y2
        self._ltiles[i] = tiles
        self._expanded[i] = exp_ref
        self._shapes[i] = shape_ref
        self._grid.update_coords(i, x1, y1, x2, y2)

    def restore(self, snap) -> None:
        if snap.__class__ is not ArraySnapshot:
            # An object-core snapshot (taken before this state was
            # handed an array move): fall back to the inherited restore
            # and resynchronize the mirrors.
            super().restore(snap)
            self._sync_soa()
            return
        kind = snap.kind
        if kind == 2:
            i = snap.cells
            key, site = snap.pin_site
            self.records[i].pin_sites[key] = site
            self._restore_pins(i, snap.pins)
            self._restore_spans(snap.spans)
            self._c3[i] = snap.c3s
            self._c1 = snap.c1
            self._c3_total = snap.c3_total
            return
        if kind == 0:
            i = snap.cells
            self._restore_cell(i, snap.recs, snap.ebbs, snap.exp_refs,
                               snap.shape_refs)
            self._restore_pins(i, snap.pins)
            self._borders[i] = snap.borders
            self._c3[i] = snap.c3s
        else:
            a, b = snap.cells
            self._restore_cell(a, snap.recs[0], snap.ebbs[0],
                               snap.exp_refs[0], snap.shape_refs[0])
            self._restore_cell(b, snap.recs[1], snap.ebbs[1],
                               snap.exp_refs[1], snap.shape_refs[1])
            self._restore_pins(a, snap.pins[0])
            self._restore_pins(b, snap.pins[1])
            self._borders[a] = snap.borders[0]
            self._borders[b] = snap.borders[1]
            self._c3[a] = snap.c3s[0]
            self._c3[b] = snap.c3s[1]
        self._restore_spans(snap.spans)
        self._restore_overlaps(snap.overlaps)
        self._c1 = snap.c1
        self._c2_raw = snap.c2_raw
        self._c3_total = snap.c3_total

    # ------------------------------------------------------------------
    # accessors over the flat mirrors (the object caches go stale after
    # the first array move; everything below reads the mirror instead)
    # ------------------------------------------------------------------

    def pin_position(self, cell_name: str, pin_name: str) -> Tuple[float, float]:
        i = self.index[cell_name]
        p = self._pin_slot[i][pin_name]
        return (self._lpx[p], self._lpy[p])

    def expanded_shape(self, name: str) -> TileSet:
        idx = self.index[name]
        exp = self._expanded[idx]
        if exp is None:
            exp = self._expanded[idx] = self._materialize_expanded(idx)
        return exp

    def _materialize_expanded(self, idx: int) -> TileSet:
        tiles = self._ltiles[idx]
        if tiles is None:
            rects = [
                Rect(
                    self._lex1[idx],
                    self._ley1[idx],
                    self._lex2[idx],
                    self._ley2[idx],
                )
            ]
        else:
            rects = [Rect(*t) for t in tiles]
        out = TileSet.__new__(TileSet)
        out._tiles = tuple(rects)
        if len(rects) == 1:
            out._bbox = rects[0]
            out._area = rects[0].area
        else:
            out._bbox = Rect(
                self._lex1[idx],
                self._ley1[idx],
                self._lex2[idx],
                self._ley2[idx],
            )
            out._area = sum(r.area for r in rects)
        return out

    def chip_bbox(self) -> Rect:
        return Rect(
            min(self._lex1), min(self._ley1), max(self._lex2), max(self._ley2)
        )

    def teil(self) -> float:
        lsy = self._lsy
        return sum(sx + lsy[e] for e, sx in enumerate(self._lsx))

    def net_spans(self) -> Dict[str, Tuple[float, float]]:
        return {
            name: (self._lsx[e], self._lsy[e])
            for e, name in enumerate(self._net_names)
        }

    # ------------------------------------------------------------------
    # object <-> array round trip and numpy views
    # ------------------------------------------------------------------

    @classmethod
    def from_object(cls, state: PlacementState) -> "ArrayPlacementState":
        """Lossless conversion from an object-core placement: the clone
        reproduces records, expansions mode, p2, and the history-exact
        cost accumulators bit-for-bit."""
        clone = cls(
            state.circuit,
            state.plan,
            p2=state.p2,
            kappa=state.kappa,
            dynamic_expansion=state.dynamic_expansion,
        )
        clone.load_state_dict(state.state_dict())
        return clone

    def to_object(self) -> PlacementState:
        """Lossless conversion back to the plain object core."""
        out = PlacementState(
            self.circuit,
            self.plan,
            p2=self.p2,
            kappa=self.kappa,
            dynamic_expansion=self.dynamic_expansion,
        )
        out.load_state_dict(self.state_dict())
        return out

    def soa(self) -> Dict[str, "object"]:
        """Numpy struct-of-arrays views of the placement (read-only
        copies): centers, orientations, instances, aspect ratios (nan for
        macros), expanded bboxes, flat pin coordinates with their cell
        ownership, and per-net spans/weights."""
        if _np is None:  # pragma: no cover - the toolchain ships numpy
            raise RuntimeError("numpy is required for SoA views")
        n = len(self.names)
        centers = _np.array([r.center for r in self.records], dtype=_np.float64)
        aspect = _np.array(
            [
                _np.nan if r.aspect_ratio is None else r.aspect_ratio
                for r in self.records
            ],
            dtype=_np.float64,
        )
        pin_cell = _np.zeros(self._num_pins, dtype=_np.int64)
        for i in range(n):
            start = self._pin_start[i]
            pin_cell[start : start + self._pin_count[i]] = i
        return {
            "centers": centers,
            "orientations": _np.array(
                [r.orientation for r in self.records], dtype=_np.int64
            ),
            "instances": _np.array(
                [r.instance for r in self.records], dtype=_np.int64
            ),
            "aspect_ratios": aspect,
            "expanded_bbox": _np.array(
                list(zip(self._lex1, self._ley1, self._lex2, self._ley2)),
                dtype=_np.float64,
            ),
            "pin_xy": _np.array(
                list(zip(self._lpx, self._lpy)), dtype=_np.float64
            ),
            "pin_cell": pin_cell,
            "net_spans": _np.array(
                list(zip(self._lsx, self._lsy)), dtype=_np.float64
            ),
            "net_weights": _np.array(
                list(zip(self._nh, self._nv)), dtype=_np.float64
            ),
        }

    def load_soa(self, soa: Dict[str, "object"]) -> None:
        """Write a :meth:`soa` view back into the records and rebuild.

        float64 round-trips exactly, so ``load_soa(soa())`` reproduces
        the placement geometry bit-for-bit (pin-site assignments are
        authoring-layer data carried by the records, unchanged here).
        """
        centers = soa["centers"]
        orientations = soa["orientations"]
        instances = soa["instances"]
        aspect = soa["aspect_ratios"]
        for i, rec in enumerate(self.records):
            rec.center = (float(centers[i][0]), float(centers[i][1]))
            rec.orientation = int(orientations[i])
            rec.instance = int(instances[i])
            ar = float(aspect[i])
            rec.aspect_ratio = None if ar != ar else ar
        self.rebuild()

    def cost_breakdown_vector(self) -> Tuple[float, float, float]:
        """(C1, C2_raw, C3) evaluated with vectorized numpy reductions
        over the SoA mirror — the batch audit path (agrees with
        :meth:`cost_breakdown_fresh` to rounding; the incremental
        accumulators are history-exact and may differ by ULPs)."""
        if _np is None:  # pragma: no cover - the toolchain ships numpy
            raise RuntimeError("numpy is required for the vectorized path")
        px = _np.asarray(self._lpx)
        py = _np.asarray(self._lpy)
        flat: List[int] = []
        offsets: List[int] = []
        live: List[int] = []
        for e, mem in enumerate(self._nmem):
            if mem:
                offsets.append(len(flat))
                flat.extend(mem)
                live.append(e)
        c1 = 0.0
        if live:
            idx = _np.asarray(flat, dtype=_np.int64)
            off = _np.asarray(offsets, dtype=_np.int64)
            gx = px[idx]
            gy = py[idx]
            span_x = _np.maximum.reduceat(gx, off) - _np.minimum.reduceat(gx, off)
            span_y = _np.maximum.reduceat(gy, off) - _np.minimum.reduceat(gy, off)
            h = _np.asarray(self._nh)[live]
            v = _np.asarray(self._nv)[live]
            c1 = float(_np.sum(span_x * h + span_y * v))
        x1 = _np.asarray(self._lex1)
        y1 = _np.asarray(self._ley1)
        x2 = _np.asarray(self._lex2)
        y2 = _np.asarray(self._ley2)
        w = _np.minimum(x2[:, None], x2[None, :]) - _np.maximum(
            x1[:, None], x1[None, :]
        )
        h2 = _np.minimum(y2[:, None], y2[None, :]) - _np.maximum(
            y1[:, None], y1[None, :]
        )
        area = _np.where((w > 0.0) & (h2 > 0.0), w * h2, 0.0)
        n = len(self.names)
        upper = _np.triu_indices(n, k=1)
        pair_area = area[upper]
        # Multi-tile cells need the exact tile-level narrow phase for
        # the pairs their bbox accepted.
        multi = [i for i in range(n) if self._ltiles[i] is not None]
        if multi:
            multi_set = set(multi)
            ii, jj = upper
            for k in range(len(pair_area)):
                if pair_area[k] > 0.0:
                    i = int(ii[k])
                    j = int(jj[k])
                    if i in multi_set or j in multi_set:
                        pair_area[k] = self._pair_area_flat(
                            self._lex1[i],
                            self._ley1[i],
                            self._lex2[i],
                            self._ley2[i],
                            self._ltiles[i],
                            j,
                        )
        c2 = float(_np.sum(pair_area))
        for i in range(n):
            c2 += self._border_flat(
                self._lex1[i],
                self._ley1[i],
                self._lex2[i],
                self._ley2[i],
                self._ltiles[i],
            )
        c3 = sum(self._cell_c3(i) for i in range(n))
        return c1, c2, c3
