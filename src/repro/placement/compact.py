"""Placement compaction toward the core center (§4, refinement step 3).

The paper's refinement both *expands* channels that came up short and
"compact[s] as much as possible" where stage 1 allocated excessive
space.  The low-temperature anneal alone compacts very slowly (its
window is a few percent of the core), so this deterministic pass does
the bulk move: cells slide toward the chip center, one axis at a time,
as far as their margin-carrying (expanded) shapes allow — preserving
every channel's reserved width by construction.

Requires static expansions (stage-2 mode), where margins do not depend
on position.  Fixed cells never move.
"""

from __future__ import annotations

from typing import List

from ..geometry import TileSet
from .spatial import UniformGridIndex
from .state import PlacementState


def _max_slide(
    shapes: List[TileSet],
    grid: UniformGridIndex,
    idx: int,
    dx: float,
    dy: float,
    limit: float,
    iterations: int = 14,
    tolerance: float = 1e-9,
) -> float:
    """Largest step in direction (dx, dy) (unit axis vector) up to
    ``limit`` that keeps shape ``idx`` from overlapping any other.

    ``grid`` indexes every shape's current bbox, so each collision probe
    inspects only the cells binned near the trial position instead of
    the whole placement."""

    def collides(step: float) -> bool:
        moved = shapes[idx].translated(dx * step, dy * step)
        bbox = moved.bbox
        for j in grid.query(bbox):
            if j == idx:
                continue
            other = shapes[j]
            if bbox.intersects(other.bbox) and moved.overlap_area(
                other
            ) > tolerance:
                return True
        return False

    if limit <= 0 or collides(limit) is False:
        return max(0.0, limit)
    lo, hi = 0.0, limit  # lo collision-free, hi colliding
    if collides(lo + tolerance):
        return 0.0
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        if collides(mid):
            hi = mid
        else:
            lo = mid
    return lo


def compact(state: PlacementState, passes: int = 3) -> float:
    """Slide cells toward the core center until their expanded shapes
    touch.  Returns the total distance moved.  Stage-2 (static
    expansions) only."""
    if state.dynamic_expansion:
        raise ValueError(
            "compaction requires static expansions (stage-2 mode)"
        )
    if passes < 1:
        raise ValueError("passes must be at least 1")
    n = len(state.names)
    shapes: List[TileSet] = [
        state._expanded_shape(i, state._world_shape(i)) for i in range(n)
    ]
    grid = UniformGridIndex.for_bboxes([s.bbox for s in shapes])
    for i in range(n):
        grid.insert(i, shapes[i].bbox)
    cx, cy = state.core.center.x, state.core.center.y
    total_moved = 0.0

    for _ in range(passes):
        moved_this_pass = 0.0
        for axis in (0, 1):
            target = cx if axis == 0 else cy
            # Innermost cells first, so outer cells can close the gaps
            # they leave behind.
            order = sorted(
                (i for i in range(n) if state.movable[i]),
                key=lambda i: abs(state.records[i].center[axis] - target),
            )
            for i in order:
                pos = state.records[i].center[axis]
                gap = target - pos
                if abs(gap) < 1e-9:
                    continue
                direction = 1.0 if gap > 0 else -1.0
                dx, dy = (direction, 0.0) if axis == 0 else (0.0, direction)
                step = _max_slide(shapes, grid, i, dx, dy, abs(gap))
                if step <= 1e-9:
                    continue
                shapes[i] = shapes[i].translated(dx * step, dy * step)
                grid.update(i, shapes[i].bbox)
                record = state.records[i]
                record.center = (
                    record.center[0] + dx * step,
                    record.center[1] + dy * step,
                )
                moved_this_pass += step
        total_moved += moved_this_pass
        if moved_this_pass < 1e-6:
            break

    state.rebuild()
    return total_moved
