"""Critical-region extraction — the channel definition algorithm of §4.1.

A *critical region* (channel) is created between every pair of parallel
cell edges belonging to different cells (or a cell edge and the core
boundary) such that:

1. the spans of the two edges overlap in one dimension, bounding a
   rectangular region of empty space whose extent equals the common
   span, and
2. no other cell intersects that rectangle.

Unlike Chen's bottlenecks, overlapping critical regions are allowed: a
region created by a vertical edge pair may overlap one created by a
horizontal pair (the n8/n9/n11/n12 corner of Figure 9); *all* of them
are identified and used.

Every region is bordered by exactly two cell edges, so its expected
width under two-layer channel routing is the single parameter

    w = (d + 2) * t_s                                         (Eqn 22)

where d is the channel density — the property the placement-refinement
step relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..geometry import LEFT, RIGHT, BOTTOM, TOP, BoundaryEdge, Rect, TileSet

#: Pseudo-cell name used for the core boundary's inward-facing edges.
CORE_BOUNDARY = "__core__"

VERTICAL, HORIZONTAL = "vertical", "horizontal"


@dataclass(frozen=True)
class EdgeRef:
    """A boundary edge together with the cell it belongs to."""

    cell: str
    edge: BoundaryEdge


@dataclass(frozen=True)
class CriticalRegion:
    """A channel bounded by exactly two facing cell edges.

    ``axis`` is the direction the channel runs: a VERTICAL channel lies
    between two vertical edges (its *width* is the horizontal gap, its
    *length* the common vertical span), and vice versa.
    """

    index: int
    rect: Rect
    axis: str
    side_a: EdgeRef  # lower/left bounding edge (faces into the region)
    side_b: EdgeRef  # upper/right bounding edge

    @property
    def width(self) -> float:
        """Separation of the two bounding edges (the channel thickness)."""
        return self.rect.width if self.axis == VERTICAL else self.rect.height

    @property
    def length(self) -> float:
        """Common span of the two bounding edges (the channel length)."""
        return self.rect.height if self.axis == VERTICAL else self.rect.width

    @property
    def center(self) -> Tuple[float, float]:
        c = self.rect.center
        return (c.x, c.y)

    def capacity(self, track_spacing: float) -> int:
        """Number of wiring tracks that fit across the channel."""
        if track_spacing <= 0:
            raise ValueError("track spacing must be positive")
        return max(0, int(self.width / track_spacing))

    def cells(self) -> Tuple[str, str]:
        return (self.side_a.cell, self.side_b.cell)


def core_boundary_edges(core: Rect) -> List[EdgeRef]:
    """The core boundary as four inward-facing pseudo-cell edges."""
    return [
        EdgeRef(CORE_BOUNDARY, BoundaryEdge(RIGHT, core.x1, core.y1, core.y2)),
        EdgeRef(CORE_BOUNDARY, BoundaryEdge(LEFT, core.x2, core.y1, core.y2)),
        EdgeRef(CORE_BOUNDARY, BoundaryEdge(TOP, core.y1, core.x1, core.x2)),
        EdgeRef(CORE_BOUNDARY, BoundaryEdge(BOTTOM, core.y2, core.x1, core.x2)),
    ]


def extract_critical_regions(
    shapes: Dict[str, TileSet],
    core: Optional[Rect] = None,
    min_width: float = 1e-9,
    min_length: float = 1e-9,
) -> List[CriticalRegion]:
    """Identify every critical region of a legal (overlap-free) placement.

    ``shapes`` maps cell names to their world-frame tile unions.  When
    ``core`` is given, channels between cells and the core boundary are
    included.  Degenerate regions (zero width or length) are dropped.
    """
    edges: List[EdgeRef] = []
    for name, shape in shapes.items():
        for e in shape.boundary_edges():
            edges.append(EdgeRef(name, e))
    if core is not None:
        edges.extend(core_boundary_edges(core))

    all_tiles = [t for shape in shapes.values() for t in shape.tiles]
    regions: List[CriticalRegion] = []

    verticals = [r for r in edges if r.edge.is_vertical]
    horizontals = [r for r in edges if not r.edge.is_vertical]

    for axis, pool in ((VERTICAL, verticals), (HORIZONTAL, horizontals)):
        # A region needs a right/top-facing edge on its low side and a
        # left/bottom-facing edge on its high side.
        low_side = RIGHT if axis == VERTICAL else TOP
        high_side = LEFT if axis == VERTICAL else BOTTOM
        lows = [r for r in pool if r.edge.side == low_side]
        highs = [r for r in pool if r.edge.side == high_side]
        for a in lows:
            for b in highs:
                if a.cell == b.cell and a.cell != CORE_BOUNDARY:
                    continue
                region = _region_between(a, b, axis, min_width, min_length)
                if region is None:
                    continue
                if _blocked(region, all_tiles):
                    continue
                regions.append(
                    CriticalRegion(len(regions), region, axis, a, b)
                )
    return regions


def _region_between(
    a: EdgeRef, b: EdgeRef, axis: str, min_width: float, min_length: float
) -> Optional[Rect]:
    ea, eb = a.edge, b.edge
    gap = eb.position - ea.position
    if gap < min_width:
        return None
    lo = max(ea.lo, eb.lo)
    hi = min(ea.hi, eb.hi)
    if hi - lo < min_length:
        return None
    if axis == VERTICAL:
        return Rect(ea.position, lo, eb.position, hi)
    return Rect(lo, ea.position, hi, eb.position)


def _blocked(region: Rect, tiles: List[Rect]) -> bool:
    """True when any cell tile intrudes into the region's interior."""
    for tile in tiles:
        if tile.intersects(region):
            return True
    return False
