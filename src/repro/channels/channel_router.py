"""A vertical-constraint-aware channel router.

The plain left-edge algorithm in :mod:`repro.channels.leftedge` ignores
*where* a net's pins enter the channel.  Real channels have pins on both
shores: when net T has a top pin and net B a bottom pin in the same
column, T's trunk must run on a higher track than B's or their vertical
branches would short.  These column conflicts form the vertical
constraint graph (VCG); the classical constrained left-edge algorithm
fills tracks top-down, placing only nets whose VCG predecessors are
already placed.

This is the detailed-routing model behind Eqn 22's premise ("channel
routers routinely route a channel in t <= d + 1 tracks"): for channels
whose VCG is acyclic and chains are short, the constrained left-edge
lands at t = max(density, longest VCG path), which the tests exercise.
Cyclic VCGs need doglegs, which TimberWolfMC leaves to the detailed
router; we detect and report them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

TOP, BOTTOM = "top", "bottom"


class ChannelCycleError(RuntimeError):
    """The channel's vertical constraint graph is cyclic (doglegs needed)."""


@dataclass(frozen=True)
class ChannelPin:
    """A pin entering the channel at ``column`` from one shore."""

    net: str
    column: float
    side: str

    def __post_init__(self) -> None:
        if self.side not in (TOP, BOTTOM):
            raise ValueError(f"pin side must be top or bottom, got {self.side!r}")


@dataclass
class ChannelRoute:
    """A completed channel routing."""

    tracks: Dict[str, int]  # net -> track index, 0 = topmost
    num_tracks: int
    intervals: Dict[str, Tuple[float, float]]

    def track_of(self, net: str) -> int:
        return self.tracks[net]


def net_intervals(pins: Sequence[ChannelPin]) -> Dict[str, Tuple[float, float]]:
    """Each net's trunk interval: the span of its pin columns."""
    intervals: Dict[str, Tuple[float, float]] = {}
    for pin in pins:
        lo, hi = intervals.get(pin.net, (pin.column, pin.column))
        intervals[pin.net] = (min(lo, pin.column), max(hi, pin.column))
    return intervals


def vertical_constraints(pins: Sequence[ChannelPin]) -> Dict[str, Set[str]]:
    """above[net] = nets that must run strictly below it.

    A top pin of net T and a bottom pin of net B in the same column force
    T above B (T's branch descends from the top shore, B's rises from the
    bottom; their trunks must not cross the shared column between them).
    """
    top_at: Dict[float, Set[str]] = {}
    bottom_at: Dict[float, Set[str]] = {}
    for pin in pins:
        bucket = top_at if pin.side == TOP else bottom_at
        bucket.setdefault(pin.column, set()).add(pin.net)
    above: Dict[str, Set[str]] = {}
    for column, tops in top_at.items():
        for t in tops:
            for b in bottom_at.get(column, ()):
                if t != b:
                    above.setdefault(t, set()).add(b)
    return above


def channel_density_of_pins(pins: Sequence[ChannelPin]) -> int:
    """Density of the net trunk intervals (see leftedge.channel_density)."""
    from .leftedge import ChannelSegment, channel_density

    segments = [
        ChannelSegment(net, lo, hi)
        for net, (lo, hi) in net_intervals(pins).items()
    ]
    return channel_density(segments)


def route_channel(pins: Sequence[ChannelPin]) -> ChannelRoute:
    """Constrained left-edge routing of a channel.

    Tracks are filled from the top: a net is eligible for the current
    track when every net constrained to run above it has been placed.
    Raises :class:`ChannelCycleError` when the VCG is cyclic.
    """
    intervals = net_intervals(pins)
    above = vertical_constraints(pins)
    # predecessors[net] = number of nets that must be above it.
    predecessors: Dict[str, int] = {net: 0 for net in intervals}
    for t, belows in above.items():
        for b in belows:
            predecessors[b] += 1

    unplaced = set(intervals)
    tracks: Dict[str, int] = {}
    track = 0
    while unplaced:
        eligible = sorted(
            (net for net in unplaced if predecessors[net] == 0),
            key=lambda n: intervals[n],
        )
        if not eligible:
            raise ChannelCycleError(
                f"cyclic vertical constraints among {sorted(unplaced)}"
            )
        last_hi = None
        placed_this_track: List[str] = []
        for net in eligible:
            lo, hi = intervals[net]
            if last_hi is None or lo > last_hi:
                tracks[net] = track
                placed_this_track.append(net)
                last_hi = hi
        for net in placed_this_track:
            unplaced.discard(net)
            for below in above.get(net, ()):
                predecessors[below] -= 1
        track += 1
    return ChannelRoute(tracks=tracks, num_tracks=track, intervals=intervals)


def validate_route(pins: Sequence[ChannelPin], route: ChannelRoute) -> List[str]:
    """Return human-readable violations (empty when the routing is legal)."""
    problems: List[str] = []
    # Trunk overlaps on a shared track.
    by_track: Dict[int, List[str]] = {}
    for net, track in route.tracks.items():
        by_track.setdefault(track, []).append(net)
    for track, nets in by_track.items():
        spans = sorted((route.intervals[n], n) for n in nets)
        for ((l1, h1), n1), ((l2, h2), n2) in zip(spans, spans[1:]):
            if l2 <= h1:
                problems.append(
                    f"track {track}: nets {n1} and {n2} overlap"
                )
    # Vertical constraints respected.
    for t, belows in vertical_constraints(pins).items():
        for b in belows:
            if route.tracks[t] >= route.tracks[b]:
                problems.append(
                    f"constraint violated: {t} must be above {b}"
                )
    return problems
