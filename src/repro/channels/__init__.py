"""Channel definition (§4.1): critical regions, free-space decomposition,
the routing graph, and channel density/width accounting."""

from .density import (
    WIDTH_MARGIN_TRACKS,
    CongestionReport,
    cell_edge_expansions,
    compute_congestion,
    region_densities,
    required_channel_width,
)
from .channel_router import (
    ChannelCycleError,
    ChannelPin,
    ChannelRoute,
    channel_density_of_pins,
    net_intervals,
    route_channel,
    validate_route,
    vertical_constraints,
)
from .freespace import decompose_free_space, free_area
from .graph import ChannelEdge, ChannelGraph
from .leftedge import ChannelSegment, channel_density, left_edge_route, tracks_used
from .regions import (
    CORE_BOUNDARY,
    HORIZONTAL,
    VERTICAL,
    CriticalRegion,
    EdgeRef,
    core_boundary_edges,
    extract_critical_regions,
)

__all__ = [
    "WIDTH_MARGIN_TRACKS",
    "CongestionReport",
    "cell_edge_expansions",
    "compute_congestion",
    "region_densities",
    "required_channel_width",
    "ChannelCycleError",
    "ChannelPin",
    "ChannelRoute",
    "channel_density_of_pins",
    "net_intervals",
    "route_channel",
    "validate_route",
    "vertical_constraints",
    "decompose_free_space",
    "free_area",
    "ChannelEdge",
    "ChannelGraph",
    "ChannelSegment",
    "channel_density",
    "left_edge_route",
    "tracks_used",
    "CORE_BOUNDARY",
    "HORIZONTAL",
    "VERTICAL",
    "CriticalRegion",
    "EdgeRef",
    "core_boundary_edges",
    "extract_critical_regions",
]
