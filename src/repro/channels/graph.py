"""The routing graph over the chip's free space (Figures 8-9).

Nodes are rectangles of empty space — the maximal free-space strips of
:mod:`repro.channels.freespace` — placed at their centers.  Two nodes
sharing a boundary segment are joined by a channel edge carrying:

* ``length`` — Manhattan distance between the node centers (the cost the
  global router minimizes), and
* ``capacity`` — the number of wiring tracks across the shared segment,
  ``floor(shared length / t_s)`` — the C_j of Eqn 24.  For the strip
  lying between two facing cell edges this is exactly the paper's
  channel capacity (channel width over track pitch).

Pins are projected onto the adjacent free space (the P1/P0 projections
of Figure 9) and appear as extra nodes tied to their host strip by an
uncapacitated access edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..geometry import Rect, interval_overlap
from .regions import CriticalRegion


@dataclass(frozen=True)
class ChannelEdge:
    """An undirected edge of the routing graph."""

    u: int
    v: int
    length: float
    capacity: Optional[int]  # None = uncapacitated (pin access edges)

    @property
    def key(self) -> Tuple[int, int]:
        return (self.u, self.v) if self.u < self.v else (self.v, self.u)


def _point_rect_distance(x: float, y: float, r: Rect) -> float:
    dx = max(r.x1 - x, 0.0, x - r.x2)
    dy = max(r.y1 - y, 0.0, y - r.y2)
    return dx + dy


def _shared_segment(a: Rect, b: Rect) -> float:
    """Length of the boundary segment two disjoint-interior rects share."""
    if a.x2 == b.x1 or b.x2 == a.x1:
        return interval_overlap(a.y1, a.y2, b.y1, b.y2)
    if a.y2 == b.y1 or b.y2 == a.y1:
        return interval_overlap(a.x1, a.x2, b.x1, b.x2)
    # Overlapping rects (possible if callers pass critical regions, which
    # may overlap at corners): the crossing capacity is the smaller of the
    # overlap extents.
    if a.intersects(b):
        w = interval_overlap(a.x1, a.x2, b.x1, b.x2)
        h = interval_overlap(a.y1, a.y2, b.y1, b.y2)
        return min(w, h)
    return 0.0


class ChannelGraph:
    """The routing substrate handed to the global router."""

    def __init__(
        self,
        free_rects: List[Rect],
        track_spacing: float = 1.0,
        regions: Optional[List[CriticalRegion]] = None,
    ) -> None:
        if track_spacing <= 0:
            raise ValueError("track spacing must be positive")
        self.node_rects = list(free_rects)
        self.track_spacing = track_spacing
        self.regions: List[CriticalRegion] = list(regions or [])
        self.positions: Dict[int, Tuple[float, float]] = {}
        self._adj: Dict[int, List[Tuple[int, float]]] = {}
        self._edges: Dict[Tuple[int, int], ChannelEdge] = {}
        self.pin_nodes: Dict[Tuple[str, str], int] = {}
        self._pin_host: Dict[int, int] = {}
        for i, r in enumerate(self.node_rects):
            c = r.center
            self.positions[i] = (c.x, c.y)
            self._adj[i] = []
        self._next_node = len(self.node_rects)
        self._connect_nodes()

    # ------------------------------------------------------------------

    def _connect_nodes(self) -> None:
        n = len(self.node_rects)
        for i in range(n):
            a = self.node_rects[i]
            for j in range(i + 1, n):
                b = self.node_rects[j]
                if not a.touches_or_intersects(b):
                    continue
                shared = _shared_segment(a, b)
                if shared <= 0:
                    continue  # pure corner contact does not connect
                length = abs(a.center.x - b.center.x) + abs(
                    a.center.y - b.center.y
                )
                capacity = int(shared / self.track_spacing)
                self._add_edge(i, j, length, capacity)

    def _add_edge(
        self, u: int, v: int, length: float, capacity: Optional[int]
    ) -> None:
        edge = ChannelEdge(u, v, length, capacity)
        if edge.key in self._edges:
            return
        self._edges[edge.key] = edge
        self._adj.setdefault(u, []).append((v, length))
        self._adj.setdefault(v, []).append((u, length))

    # ------------------------------------------------------------------

    def attach_pin(
        self, cell: str, pin: str, position: Tuple[float, float]
    ) -> Optional[int]:
        """Project a pin onto the nearest free space; returns its node id,
        or None when the graph has no nodes."""
        host = self._host_node(position)
        if host is None:
            return None
        node = self._next_node
        self._next_node += 1
        self.pin_nodes[(cell, pin)] = node
        self._pin_host[node] = host
        hx, hy = self.positions[host]
        length = abs(position[0] - hx) + abs(position[1] - hy)
        self.positions[node] = position
        self._adj[node] = []
        self._add_edge(node, host, length, None)
        return node

    def _host_node(self, position: Tuple[float, float]) -> Optional[int]:
        x, y = position
        best = None
        best_d = None
        for i, rect in enumerate(self.node_rects):
            d = _point_rect_distance(x, y, rect)
            if best_d is None or d < best_d:
                best_d = d
                best = i
                if d == 0.0:
                    break
        return best

    # ------------------------------------------------------------------

    def neighbors(self, node: int) -> Iterable[Tuple[int, float]]:
        return self._adj.get(node, ())

    def nodes(self) -> List[int]:
        return list(self._adj)

    def edges(self) -> List[ChannelEdge]:
        return list(self._edges.values())

    def edge(self, u: int, v: int) -> ChannelEdge:
        key = (u, v) if u < v else (v, u)
        return self._edges[key]

    def edge_capacity(self, u: int, v: int) -> Optional[int]:
        return self.edge(u, v).capacity

    def pin_host(self, node: int) -> Optional[int]:
        """The free-space node a pin node is attached to (None otherwise)."""
        return self._pin_host.get(node)

    def is_pin_node(self, node: int) -> bool:
        return node in self._pin_host

    @property
    def num_free_nodes(self) -> int:
        return len(self.node_rects)

    @property
    def num_nodes(self) -> int:
        return self._next_node

    def __repr__(self) -> str:
        return (
            f"ChannelGraph({len(self.node_rects)} free nodes, "
            f"{len(self._edges)} edges, {len(self.pin_nodes)} pins, "
            f"{len(self.regions)} critical regions)"
        )
