"""Channel density, overflow, and the width rule w = (d + 2) * t_s.

After global routing, every channel's density is known and the required
spacing between its two bounding cell edges follows from Eqn 22.  Half of
each channel's width is charged to each bounding cell edge — these are
the static expansions the stage-2 refinement anneals against.

Densities live at two granularities:

* per *routing-graph edge* (the capacity constraints of Eqn 24), and
* per *critical region* — a net crossing any free-space node that
  intersects a region contributes one track to that region's density,
  which then sets the region's required width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from .graph import ChannelGraph
from .regions import CORE_BOUNDARY, CriticalRegion

#: Extra tracks of Eqn 22: channel routers achieve t <= d + 1, plus one
#: track of margin, so the expected width is (d + 2) * t_s.
WIDTH_MARGIN_TRACKS = 2


def required_channel_width(density: int, track_spacing: float) -> float:
    """Eqn 22: expected channel width for two-layer routing."""
    if density < 0:
        raise ValueError("density must be non-negative")
    if track_spacing <= 0:
        raise ValueError("track spacing must be positive")
    return (density + WIDTH_MARGIN_TRACKS) * track_spacing


@dataclass
class CongestionReport:
    """Densities and overflow of one global-routing solution."""

    edge_density: Dict[Tuple[int, int], int] = field(default_factory=dict)
    node_density: Dict[int, int] = field(default_factory=dict)

    def overflow(self, graph: ChannelGraph) -> int:
        """X of Eqn 24: total excess tracks over all channel edges."""
        total = 0
        for key, density in self.edge_density.items():
            capacity = graph.edge(*key).capacity
            if capacity is not None and density > capacity:
                total += density - capacity
        return total

    def max_node_density(self) -> int:
        return max(self.node_density.values(), default=0)


def compute_congestion(
    graph: ChannelGraph, routes: Dict[str, Iterable[Tuple[int, int]]]
) -> CongestionReport:
    """Tally densities from net routes.

    ``routes`` maps net names to collections of (u, v) node-pair edges.
    A net contributes one track to every routing edge it uses and to
    every free-space node it visits (pin nodes count toward their host
    node — the pin's access track still occupies the channel).
    """
    report = CongestionReport()
    num_free = graph.num_free_nodes
    for edges in routes.values():
        seen_edges: Set[Tuple[int, int]] = set()
        seen_nodes: Set[int] = set()
        for u, v in edges:
            key = (u, v) if u < v else (v, u)
            if key not in seen_edges:
                seen_edges.add(key)
                report.edge_density[key] = report.edge_density.get(key, 0) + 1
            for node in (u, v):
                host = node if node < num_free else graph.pin_host(node)
                if host is not None and host not in seen_nodes:
                    seen_nodes.add(host)
                    report.node_density[host] = (
                        report.node_density.get(host, 0) + 1
                    )
    return report


def region_densities(
    graph: ChannelGraph,
    routes: Dict[str, Iterable[Tuple[int, int]]],
) -> Dict[int, int]:
    """Density of every critical region: the number of distinct nets
    whose routes actually cross the region.

    A route edge between two graph nodes is modelled as the L-shaped
    (horizontal-then-vertical) connection of their positions — the way a
    global route traverses adjacent strips — and a net is charged to a
    region when any of its edges' legs passes through the region's
    rectangle.
    """
    region_nets: Dict[int, Set[str]] = {r.index: set() for r in graph.regions}
    for net, edges in routes.items():
        for u, v in edges:
            p = graph.positions[u]
            q = graph.positions[v]
            for region in graph.regions:
                if net in region_nets[region.index]:
                    continue
                if _l_path_crosses(region.rect, p, q):
                    region_nets[region.index].add(net)
    return {idx: len(nets) for idx, nets in region_nets.items()}


def _l_path_crosses(rect, p: Tuple[float, float], q: Tuple[float, float]) -> bool:
    """Does the horizontal-then-vertical path p -> (qx, py) -> q touch the
    rectangle along a segment (not a mere corner point)?"""
    corner = (q[0], p[1])
    return _leg_crosses(rect, p, corner) or _leg_crosses(rect, corner, q)


def _leg_crosses(rect, a: Tuple[float, float], b: Tuple[float, float]) -> bool:
    from ..geometry import interval_overlap

    x1, x2 = sorted((a[0], b[0]))
    y1, y2 = sorted((a[1], b[1]))
    if x1 > rect.x2 or x2 < rect.x1 or y1 > rect.y2 or y2 < rect.y1:
        return False
    # Overlap length along the leg's direction of travel must be positive;
    # a zero-length leg (coincident endpoints) never counts.
    w = interval_overlap(x1, x2, rect.x1, rect.x2)
    h = interval_overlap(y1, y2, rect.y1, rect.y2)
    if x1 == x2 and y1 == y2:
        return False
    if y1 == y2:  # horizontal leg
        return w > 0
    return h > 0  # vertical leg


def cell_edge_expansions(
    graph: ChannelGraph,
    routes: Dict[str, Iterable[Tuple[int, int]]],
    track_spacing: float,
) -> Dict[str, Dict[str, float]]:
    """Static per-cell, per-side expansions for placement refinement (§4.3).

    Each channel's required width (Eqn 22) is split half-and-half between
    its two bounding cell edges; a cell side adjacent to several channels
    takes the widest requirement.
    """
    densities = region_densities(graph, routes)
    expansions: Dict[str, Dict[str, float]] = {}
    for region in graph.regions:
        density = densities.get(region.index, 0)
        half = required_channel_width(density, track_spacing) / 2.0
        for ref in (region.side_a, region.side_b):
            if ref.cell == CORE_BOUNDARY:
                continue
            sides = expansions.setdefault(ref.cell, {})
            sides[ref.edge.side] = max(sides.get(ref.edge.side, 0.0), half)
    return expansions
