"""Maximal-strip decomposition of the free (channel) space.

The critical regions of §4.1 are where channel *widths* are measured,
but a loosely placed chip also has empty space that is not between two
facing cell edges; the global router must still be able to cross it.
This module tiles the complete free area — the boundary rectangle minus
all cell tiles — into maximal horizontal strips.  The strips become the
nodes of the routing graph; two strips sharing a boundary segment are
connected with a crossing capacity of one track per ``t_s`` of shared
segment, which for the strip between two facing cell edges reduces to
exactly the paper's channel capacity (width / t_s).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..geometry import Rect, TileSet


def _free_intervals(
    lo: float, hi: float, blocked: List[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Complement of the blocked intervals within [lo, hi]."""
    if not blocked:
        return [(lo, hi)]
    blocked = sorted(blocked)
    out: List[Tuple[float, float]] = []
    cursor = lo
    for b_lo, b_hi in blocked:
        if b_hi <= cursor:
            continue
        if b_lo >= hi:
            break
        if b_lo > cursor:
            out.append((cursor, min(b_lo, hi)))
        cursor = max(cursor, b_hi)
        if cursor >= hi:
            break
    if cursor < hi:
        out.append((cursor, hi))
    return [(a, b) for a, b in out if b > a]


def decompose_free_space(
    shapes: Iterable[TileSet], boundary: Rect
) -> List[Rect]:
    """Tile ``boundary`` minus all cell tiles into maximal horizontal strips.

    The plane is cut into horizontal bands at every tile's y-extents; in
    each band the free x-intervals are the complement of the covering
    tiles.  Bands with identical x-intervals are merged vertically, so
    each returned rectangle is maximal in y for its x-interval.
    """
    tiles: List[Rect] = []
    for shape in shapes:
        for t in shape.tiles:
            clipped = t.intersection(boundary)
            if clipped is not None and clipped.area > 0:
                tiles.append(clipped)

    cuts = {boundary.y1, boundary.y2}
    for t in tiles:
        if boundary.y1 < t.y1 < boundary.y2:
            cuts.add(t.y1)
        if boundary.y1 < t.y2 < boundary.y2:
            cuts.add(t.y2)
    ys = sorted(cuts)

    rects: List[Rect] = []
    #: open strips: x-interval -> index into rects (still growable).
    active: Dict[Tuple[float, float], int] = {}

    for y_lo, y_hi in zip(ys, ys[1:]):
        if y_hi <= y_lo:
            continue
        blocked = [
            (t.x1, t.x2) for t in tiles if t.y1 < y_hi and t.y2 > y_lo
        ]
        intervals = _free_intervals(boundary.x1, boundary.x2, blocked)
        next_active: Dict[Tuple[float, float], int] = {}
        for iv in intervals:
            prev = active.get(iv)
            if prev is not None and rects[prev].y2 == y_lo:
                rects[prev] = Rect(iv[0], rects[prev].y1, iv[1], y_hi)
                next_active[iv] = prev
            else:
                rects.append(Rect(iv[0], y_lo, iv[1], y_hi))
                next_active[iv] = len(rects) - 1
        active = next_active

    return rects


def free_area(shapes: Iterable[TileSet], boundary: Rect) -> float:
    """Total free area inside the boundary (for invariants in tests)."""
    return sum(r.area for r in decompose_free_space(shapes, boundary))
