"""A greedy left-edge channel router.

TimberWolfMC never performs detailed routing itself, but its width rule
w = (d + 2) * t_s (Eqn 22) leans on the fact that "channel routers are
currently available which routinely route a channel in a number of
tracks t such that t <= d + 1".  This module provides the classical
left-edge algorithm so the repository can *validate* that guarantee on
the channels it produces: for interval sets without vertical-constraint
cycles the left-edge router achieves exactly t = d tracks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class ChannelSegment:
    """One net's horizontal interval within a channel."""

    net: str
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"segment for net {self.net!r} has lo > hi")


def channel_density(segments: Sequence[ChannelSegment]) -> int:
    """The density d: the maximum number of segments crossing any point."""
    events: List[Tuple[float, int]] = []
    for s in segments:
        events.append((s.lo, 1))
        events.append((s.hi, -1))
    # Opens sort before closes at the same coordinate: touching intervals
    # conflict (they would share a via column).
    events.sort(key=lambda e: (e[0], -e[1]))
    density = 0
    best = 0
    for _, delta in events:
        density += delta
        best = max(best, density)
    return best


def left_edge_route(segments: Sequence[ChannelSegment]) -> Dict[str, int]:
    """Assign each segment to a track by the left-edge rule.

    Returns net -> track index (0-based).  Segments of the same net are
    merged into one interval first (a net occupies one track per channel).
    """
    merged: Dict[str, Tuple[float, float]] = {}
    for s in segments:
        if s.net in merged:
            lo, hi = merged[s.net]
            merged[s.net] = (min(lo, s.lo), max(hi, s.hi))
        else:
            merged[s.net] = (s.lo, s.hi)

    order = sorted(merged.items(), key=lambda kv: (kv[1][0], kv[1][1]))
    track_last_hi: List[float] = []
    assignment: Dict[str, int] = {}
    for net, (lo, hi) in order:
        placed = False
        for t, last_hi in enumerate(track_last_hi):
            if lo > last_hi:
                track_last_hi[t] = hi
                assignment[net] = t
                placed = True
                break
        if not placed:
            track_last_hi.append(hi)
            assignment[net] = len(track_last_hi) - 1
    return assignment


def tracks_used(assignment: Dict[str, int]) -> int:
    return (max(assignment.values()) + 1) if assignment else 0
