"""Flow-wide telemetry: structured traces, metrics, and profiling hooks.

The paper's evidence is observational — acceptance-ratio and
range-limiter traces (Figs. 3-6) and per-stage cost/time breakdowns
(Tables 3-4) — so the reproduction carries a first-class, zero-
dependency instrumentation layer:

* :class:`Tracer` + sinks (:class:`NullSink`, :class:`MemorySink`,
  :class:`FileSink`) — structured JSONL events: spans with wall/CPU
  durations, counters, gauges.  The null sink is the default, so
  instrumented hot loops cost approximately nothing when tracing is off.
* :class:`MetricsRegistry` — named counters/gauges/histograms for
  hot-loop aggregation (the per-move-kind attempt/accept statistics
  live here).
* :mod:`repro.telemetry.report` — regenerates the paper's diagnostic
  tables (acceptance-vs-T, cost-vs-iteration, per-stage time/cost) from
  a trace, as CSV and plain text.
* :func:`profiled` — an optional ``cProfile`` span wrapper, enabled by
  ``TimberWolfConfig(enable_profiling=True)``.

Event schema: ``docs/telemetry.md``.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiler import profiled
from .tracer import (
    NULL_TRACER,
    FileSink,
    MemorySink,
    NullSink,
    Sink,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "profiled",
    "NULL_TRACER",
    "FileSink",
    "MemorySink",
    "NullSink",
    "Sink",
    "Tracer",
    "current_tracer",
    "use_tracer",
]
