"""Flow-wide telemetry: structured traces, metrics, and profiling hooks.

The paper's evidence is observational — acceptance-ratio and
range-limiter traces (Figs. 3-6) and per-stage cost/time breakdowns
(Tables 3-4) — so the reproduction carries a first-class, zero-
dependency instrumentation layer:

* :class:`Tracer` + sinks (:class:`NullSink`, :class:`MemorySink`,
  :class:`FileSink`) — structured JSONL events: spans with wall/CPU
  durations, counters, gauges.  The null sink is the default, so
  instrumented hot loops cost approximately nothing when tracing is off.
* :class:`MetricsRegistry` — named counters/gauges/histograms for
  hot-loop aggregation (the per-move-kind attempt/accept statistics
  live here).
* :mod:`repro.telemetry.report` — regenerates the paper's diagnostic
  tables (acceptance-vs-T, cost-vs-iteration, per-stage time/cost) from
  a trace, as CSV and plain text.
* :func:`profiled` — an optional ``cProfile`` span wrapper, enabled by
  ``TimberWolfConfig(enable_profiling=True)``.
* :class:`TraceContext` (:mod:`repro.telemetry.context`) — the
  W3C-traceparent-style identity that follows a run across process
  boundaries (supervisor → worker → chains → router) and across
  checkpointed retries; see docs/telemetry.md.
* :class:`SamplingProfiler` (:mod:`repro.telemetry.profile`) — the
  low-overhead background-thread stack sampler producing collapsed
  stacks (flamegraph input) with per-stage attribution.

Event schema: ``docs/telemetry.md``.
"""

from .context import (
    TRACEPARENT_ENV,
    TraceContext,
    context_from_env,
    inherit_or_mint,
    mint_context,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import SamplingProfiler, attribution_from_collapsed, parse_collapsed
from .profiler import profiled
from .tracer import (
    NULL_TRACER,
    FileSink,
    MemorySink,
    NullSink,
    Sink,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "TRACEPARENT_ENV",
    "TraceContext",
    "context_from_env",
    "inherit_or_mint",
    "mint_context",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SamplingProfiler",
    "attribution_from_collapsed",
    "parse_collapsed",
    "profiled",
    "NULL_TRACER",
    "FileSink",
    "MemorySink",
    "NullSink",
    "Sink",
    "Tracer",
    "current_tracer",
    "use_tracer",
]
