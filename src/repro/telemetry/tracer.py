"""Structured tracing: spans, counters, and gauges over pluggable sinks.

The flow's telemetry is a stream of flat JSON-serializable dicts
("events").  A :class:`Tracer` timestamps each event against a shared
monotonic origin and fans it out to its :class:`Sink` list; the sinks
decide what to do with the stream (append to memory, write JSONL, or
drop everything).  The event schema is documented in
``docs/telemetry.md`` and consumed by :mod:`repro.telemetry.report`.

Design constraints, in order:

1. *Zero cost when disabled.*  The default sink is :class:`NullSink`;
   every emitting method checks ``tracer.enabled`` first, so an
   instrumented hot loop pays one attribute read and a branch.
2. *Zero dependencies.*  Standard library only (``json``, ``time``,
   ``contextvars``).
3. *Exception safety.*  A span always emits its ``span_end`` event, with
   ``ok: false`` and the exception type when the body raised.

Instrumented layers obtain their tracer from :func:`current_tracer`
unless one is passed explicitly, so a single ``use_tracer`` block at the
flow entry point lights up every layer beneath it.
"""

from __future__ import annotations

import contextvars
import json
import time
from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import IO, Any, Dict, Iterator, List, Optional, Sequence, Union


class Sink(ABC):
    """Receives a stream of event dicts from a :class:`Tracer`."""

    #: Tracers skip event construction entirely when every sink reports
    #: ``enabled = False``.
    enabled: bool = True

    @abstractmethod
    def emit(self, event: Dict[str, Any]) -> None:
        """Consume one event.  The dict must not be mutated or retained
        past the call unless the sink copies it (MemorySink keeps the
        reference; tracers never reuse event dicts)."""

    def flush(self) -> None:
        """Push buffered events to durable storage; no-op by default.
        Tracers call this after every ``span_end`` so a trace on disk is
        complete up to the last closed span even if the process dies."""

    def close(self) -> None:
        """Flush and release any resources; idempotent."""


class NullSink(Sink):
    """The default sink: drops everything, reports itself disabled."""

    enabled = False

    def emit(self, event: Dict[str, Any]) -> None:  # pragma: no cover - never called
        pass


class MemorySink(Sink):
    """Accumulates events in a list (tests, in-process reporting).

    ``limit`` bounds memory on unexpectedly long runs: once reached, new
    events are counted in ``dropped`` instead of stored.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 1:
            raise ValueError("limit must be positive")
        self.events: List[Dict[str, Any]] = []
        self.limit = limit
        self.dropped = 0

    def emit(self, event: Dict[str, Any]) -> None:
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(event)


class FileSink(Sink):
    """Writes one JSON object per line (JSONL) to a path or file object.

    Files the sink opens itself are line-buffered, so at most the final
    line of a crashed run's trace can be truncated (the reader skips
    it; see ``report.load_events``).  ``flush_every`` additionally
    forces an explicit flush every N events for caller-supplied file
    objects with larger buffers.
    """

    def __init__(self, path_or_file: Union[str, "IO[str]"], *, flush_every: int = 64) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be positive")
        if hasattr(path_or_file, "write"):
            self._file: Optional[IO[str]] = path_or_file  # type: ignore[assignment]
            self._owns_file = False
            self.path = getattr(path_or_file, "name", None)
        else:
            self._file = open(path_or_file, "w", encoding="utf-8", buffering=1)
            self._owns_file = True
            self.path = str(path_or_file)
        self._flush_every = flush_every
        self._since_flush = 0

    def emit(self, event: Dict[str, Any]) -> None:
        if self._file is None:
            raise ValueError("FileSink is closed")
        self._file.write(json.dumps(event, separators=(",", ":"), default=str))
        self._file.write("\n")
        self._since_flush += 1
        if self._since_flush >= self._flush_every:
            self._file.flush()
            self._since_flush = 0

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()
            self._since_flush = 0

    def close(self) -> None:
        if self._file is None:
            return
        self._file.flush()
        if self._owns_file:
            self._file.close()
        self._file = None


class _SpanHandle:
    """Identity of an open span (returned by ``Tracer.span``)."""

    __slots__ = ("span_id", "name", "t0_wall", "t0_cpu")

    def __init__(self, span_id: int, name: str, t0_wall: float, t0_cpu: float) -> None:
        self.span_id = span_id
        self.name = name
        self.t0_wall = t0_wall
        self.t0_cpu = t0_cpu


class Tracer:
    """Fans timestamped events out to a list of sinks.

    All wall-clock fields use ``time.monotonic`` (offsets from the
    tracer's construction instant, so traces are diffable across runs);
    CPU time uses ``time.process_time``.
    """

    def __init__(self, sink: Union[Sink, Sequence[Sink], None] = None) -> None:
        if sink is None:
            sinks: List[Sink] = [NullSink()]
        elif isinstance(sink, Sink):
            sinks = [sink]
        else:
            sinks = list(sink)
        self._sinks = sinks
        self._t0 = time.monotonic()
        self._next_span_id = 1
        self._span_stack: List[_SpanHandle] = []
        self._context: Dict[str, Any] = {}

    # -- sink management ----------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when at least one sink consumes events."""
        for s in self._sinks:
            if s.enabled:
                return True
        return False

    @property
    def sinks(self) -> List[Sink]:
        return list(self._sinks)

    def add_sink(self, sink: Sink) -> None:
        self._sinks.append(sink)

    def remove_sink(self, sink: Sink) -> None:
        self._sinks.remove(sink)

    def close(self) -> None:
        for s in self._sinks:
            s.close()

    # -- ambient context ----------------------------------------------------

    def set_context(self, **fields: Any) -> None:
        """Stamp ``fields`` onto every event this tracer emits from now
        on (``None`` removes a key).  The distributed-trace identity
        (``trace_id``) rides here so every span, counter, and ingested
        chain event of a process carries the same trace; event-local
        fields with the same name win over the sticky context."""
        for key, value in fields.items():
            if value is None:
                self._context.pop(key, None)
            else:
                self._context[key] = value

    @property
    def context(self) -> Dict[str, Any]:
        return dict(self._context)

    # -- emission -----------------------------------------------------------

    def _now(self) -> float:
        return time.monotonic() - self._t0

    def _emit(self, event: Dict[str, Any]) -> None:
        if self._context:
            for key, value in self._context.items():
                event.setdefault(key, value)
        for s in self._sinks:
            if s.enabled:
                s.emit(event)

    def event(self, name: str, **fields: Any) -> None:
        """Emit a point event, tagged with the enclosing span (if any)."""
        if not self.enabled:
            return
        ev: Dict[str, Any] = {"ev": "event", "name": name, "t": round(self._now(), 6)}
        if self._span_stack:
            ev["span"] = self._span_stack[-1].span_id
        ev.update(fields)
        self._emit(ev)

    def counter(self, name: str, value: Union[int, float] = 1, **fields: Any) -> None:
        """Emit a monotonically accumulated quantity."""
        if not self.enabled:
            return
        ev: Dict[str, Any] = {
            "ev": "counter",
            "name": name,
            "t": round(self._now(), 6),
            "value": value,
        }
        if self._span_stack:
            ev["span"] = self._span_stack[-1].span_id
        ev.update(fields)
        self._emit(ev)

    def gauge(self, name: str, value: Union[int, float], **fields: Any) -> None:
        """Emit a point-in-time measurement."""
        if not self.enabled:
            return
        ev: Dict[str, Any] = {
            "ev": "gauge",
            "name": name,
            "t": round(self._now(), 6),
            "value": value,
        }
        if self._span_stack:
            ev["span"] = self._span_stack[-1].span_id
        ev.update(fields)
        self._emit(ev)

    def ingest(self, events: Sequence[Dict[str, Any]], **extra: Any) -> None:
        """Merge events recorded by *another* tracer into this stream.

        The parallel layer runs each chain segment under a private
        in-memory tracer (in a worker process or not) and ships the
        recorded events back; this method re-emits them here so one
        merged trace covers the whole run.  Three translations keep the
        merged stream well-formed:

        * span ids are remapped into this tracer's id space (each batch
          gets fresh ids, so chains can never collide); the whole batch
          is scanned for span ids before any event is rewritten, so a
          parent link survives even when the batch arrives out of order
          (a child's ``span_begin`` before its parent's);
        * root spans and span-less events of the batch are attached to
          the currently open span (the coordinator's ``stage1`` span),
          so ``report.span_paths`` nests them under the flow;
        * timestamps are restated against this tracer's origin — the
          producer's monotonic offset is preserved as ``t_origin``.

        ``extra`` fields (e.g. ``chain=3``) are stamped onto every
        ingested event.
        """
        if not self.enabled or not events:
            return
        ambient = self._span_stack[-1].span_id if self._span_stack else None
        # Pre-scan: allocate a fresh id for every span id seen anywhere
        # in the batch, so remapping is order-independent — a parent
        # referenced before (or after) its own span_begin still resolves.
        mapping: Dict[int, int] = {}
        for source in events:
            span = source.get("span")
            if span is not None and span not in mapping:
                mapping[span] = self._next_span_id
                self._next_span_id += 1
        now = round(self._now(), 6)
        for source in events:
            ev = dict(source)
            span = ev.get("span")
            if span is not None:
                ev["span"] = mapping[span]
            parent = ev.get("parent")
            if parent is not None:
                if parent in mapping:
                    ev["parent"] = mapping[parent]
                else:
                    # A parent id the batch never defines (producer
                    # truncation): drop the dangling link.
                    del ev["parent"]
                    parent = None
            if ambient is not None:
                if span is None:
                    ev["span"] = ambient
                elif parent is None and ev.get("ev") == "span_begin":
                    ev["parent"] = ambient
            ev["t_origin"] = ev.get("t")
            ev["t"] = now
            ev.update(extra)
            self._emit(ev)

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[Optional[_SpanHandle]]:
        """A timed region: emits ``span_begin`` on entry and ``span_end``
        (with wall/CPU durations and an ``ok`` flag) on exit, even when
        the body raises.  Spans nest; each carries its parent's id."""
        if not self.enabled:
            yield None
            return
        handle = _SpanHandle(
            self._next_span_id, name, time.monotonic(), time.process_time()
        )
        self._next_span_id += 1
        begin: Dict[str, Any] = {
            "ev": "span_begin",
            "name": name,
            "t": round(self._now(), 6),
            "span": handle.span_id,
        }
        if self._span_stack:
            begin["parent"] = self._span_stack[-1].span_id
        begin.update(fields)
        self._emit(begin)
        self._span_stack.append(handle)
        ok = True
        error: Optional[str] = None
        try:
            yield handle
        except BaseException as exc:
            ok = False
            error = type(exc).__name__
            raise
        finally:
            self._span_stack.pop()
            end: Dict[str, Any] = {
                "ev": "span_end",
                "name": name,
                "t": round(self._now(), 6),
                "span": handle.span_id,
                "wall_s": round(time.monotonic() - handle.t0_wall, 6),
                "cpu_s": round(time.process_time() - handle.t0_cpu, 6),
                "ok": ok,
            }
            if error is not None:
                end["error"] = error
            self._emit(end)
            # A closed span is a natural durability point: flush so the
            # on-disk trace is complete up to here even on a later crash.
            for s in self._sinks:
                if s.enabled:
                    s.flush()


#: The process-wide disabled tracer; ``current_tracer`` falls back to it.
NULL_TRACER = Tracer()

_CURRENT: "contextvars.ContextVar[Tracer]" = contextvars.ContextVar(
    "repro_tracer", default=NULL_TRACER
)


def current_tracer() -> Tracer:
    """The tracer installed by the innermost :func:`use_tracer` block
    (the disabled :data:`NULL_TRACER` outside any block)."""
    return _CURRENT.get()


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the current tracer for the dynamic extent
    of the block (contextvar-based, so async- and thread-safe)."""
    token = _CURRENT.set(tracer)
    try:
        yield tracer
    finally:
        _CURRENT.reset(token)
