"""Optional ``cProfile`` hook: profile a span, emit the hot functions.

Enabled by ``TimberWolfConfig(enable_profiling=True)``; the flow wraps
each stage span in :func:`profiled` so the trace gains one ``profile``
event per stage listing the top functions by cumulative time.  The
profiler only runs when a real (enabled) tracer is installed — with the
null sink the context manager is a no-op, so the flag costs nothing in
ordinary runs even when left on.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from .tracer import Tracer, current_tracer

#: How many functions a ``profile`` event lists.
DEFAULT_TOP = 15


def top_functions(stats: pstats.Stats, top: int = DEFAULT_TOP) -> List[Dict[str, Any]]:
    """The ``top`` entries of a profile by cumulative time, as flat dicts."""
    rows = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        filename, line, name = func
        rows.append(
            {
                "func": f"{filename}:{line}:{name}",
                "ncalls": nc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    rows.sort(key=lambda r: -r["cumtime_s"])
    return rows[:top]


@contextmanager
def profiled(
    name: str,
    enabled: bool = True,
    tracer: Optional[Tracer] = None,
    top: int = DEFAULT_TOP,
) -> Iterator[None]:
    """Profile the body with ``cProfile`` and emit a ``profile`` event.

    No-op when ``enabled`` is false or the tracer has nowhere to put the
    result.  Exception-safe: the event is emitted (and the profiler
    disabled) even when the body raises.
    """
    tracer = tracer if tracer is not None else current_tracer()
    if not enabled or not tracer.enabled:
        yield
        return
    prof = cProfile.Profile()
    prof.enable()
    try:
        yield
    finally:
        prof.disable()
        stats = pstats.Stats(prof)
        tracer.event(
            "profile",
            profiled=name,
            total_calls=getattr(stats, "total_calls", None),
            total_time_s=round(getattr(stats, "total_tt", 0.0), 6),
            top=top_functions(stats, top),
        )
