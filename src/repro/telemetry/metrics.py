"""Named counters, gauges, and histograms for in-process aggregation.

Where the tracer records *when* things happened, the registry records
*how often* and *how large* — cheap enough to update from the annealing
hot loop (a counter increment is one attribute add).  The registry is
how the per-move-kind attempt/accept statistics (formerly the ad-hoc
``MoveGenerator.stats`` dict) are kept, and a snapshot of it can be
flushed into a trace as a single ``metrics`` event.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count.  Hot-path users may bump
    ``value`` directly; ``inc`` is the readable spelling."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Streaming summary statistics (count/sum/min/max/mean) of a series.

    No buckets: the diagnostic tables the paper calls for need only the
    moments, and a bucketless histogram is one comparison per observe.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 6),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name} n={self.count} mean={self.mean:.3g})"


class MetricsRegistry:
    """Get-or-create store of named metrics.

    Names are free-form dotted strings (``moves.displace.attempts``);
    requesting an existing name returns the same object, so independent
    layers can share series without plumbing references around.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable dump of every registered metric."""
        out: Dict[str, Any] = {}
        if self._counters:
            out["counters"] = {n: c.value for n, c in sorted(self._counters.items())}
        if self._gauges:
            out["gauges"] = {n: g.value for n, g in sorted(self._gauges.items())}
        if self._histograms:
            out["histograms"] = {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            }
        return out

    def emit(self, tracer, name: str = "metrics") -> None:
        """Flush a snapshot into a trace as one ``metrics`` event."""
        if tracer.enabled:
            tracer.event(name, **self.snapshot())
