"""Turn a telemetry trace into the paper's diagnostic artifacts.

Given a JSONL trace (or an in-memory event list) this module rebuilds:

* the acceptance-ratio-vs-temperature table — the Fig. 3/5 analogue,
  one row per temperature step of each anneal in the trace;
* the cost-vs-iteration table — the Fig. 4/6 analogue, tracking the
  total cost and its C1/C2/C3 components across temperature steps;
* the per-stage time/cost summary — the Table 4 analogue, aggregating
  every span by its path with wall/CPU totals.

Each table is available as ``(headers, rows)`` for programmatic use,
as CSV files, and as plain text.  Run as a CLI::

    python -m repro.telemetry.report TRACE.jsonl [--out-dir DIR]
"""

from __future__ import annotations

import argparse
import csv
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..bench.metrics import format_table

Event = Dict[str, Any]
Table = Tuple[List[str], List[List[Any]]]


def load_events(source: Union[str, Path, Iterable[Event]]) -> List[Event]:
    """Events from a JSONL path or an already-parsed iterable.

    A trace from a crashed or killed run can end in a partial line (the
    FileSink is line-buffered, so at most the *final* line is cut off):
    a malformed final line is silently skipped.  A malformed line with
    valid JSON after it is real corruption and still raises.
    """
    if isinstance(source, (str, Path)):
        events = []
        with open(source, "r", encoding="utf-8") as fh:
            lines = [ln.strip() for ln in fh]
        while lines and not lines[-1]:
            lines.pop()
        for index, line in enumerate(lines):
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    break  # truncated tail of an interrupted run
                raise
        return events
    return list(source)


def span_paths(events: Sequence[Event]) -> Dict[int, str]:
    """Map each span id to its slash-joined path from the root span."""
    names: Dict[int, str] = {}
    parents: Dict[int, Optional[int]] = {}
    for ev in events:
        if ev.get("ev") == "span_begin":
            sid = ev["span"]
            names[sid] = ev["name"]
            parents[sid] = ev.get("parent")
    paths: Dict[int, str] = {}

    def resolve(sid: int) -> str:
        if sid in paths:
            return paths[sid]
        parent = parents.get(sid)
        name = names.get(sid, f"span{sid}")
        path = name if parent is None else f"{resolve(parent)}/{name}"
        paths[sid] = path
        return path

    for sid in names:
        resolve(sid)
    return paths


def _temperature_events(events: Sequence[Event]) -> List[Tuple[str, Event]]:
    paths = span_paths(events)
    out = []
    for ev in events:
        if ev.get("ev") == "event" and ev.get("name") == "anneal.temperature":
            out.append((paths.get(ev.get("span", -1), ""), ev))
    return out


def acceptance_table(events: Sequence[Event]) -> Table:
    """Acceptance ratio vs. temperature, one row per temperature step.

    Multi-chain traces tag each per-temperature event with its chain id
    (the ``chain`` column; blank for single-chain runs).
    """
    headers = [
        "phase",
        "step",
        "T",
        "attempts",
        "accepts",
        "acceptance",
        "window_x",
        "window_y",
        "moves_per_sec",
        "chain",
    ]
    rows: List[List[Any]] = []
    for phase, ev in _temperature_events(events):
        rows.append(
            [
                phase,
                ev.get("step"),
                ev.get("T"),
                ev.get("attempts"),
                ev.get("accepts"),
                ev.get("acceptance"),
                ev.get("window_x"),
                ev.get("window_y"),
                ev.get("moves_per_sec"),
                ev.get("chain", ""),
            ]
        )
    return headers, rows


def cost_table(events: Sequence[Event]) -> Table:
    """Cost (and its C1/C2/C3 components) vs. temperature step."""
    headers = ["phase", "step", "T", "cost", "c1", "c2", "c3", "chain"]
    rows: List[List[Any]] = []
    for phase, ev in _temperature_events(events):
        rows.append(
            [
                phase,
                ev.get("step"),
                ev.get("T"),
                ev.get("cost"),
                ev.get("c1"),
                ev.get("c2"),
                ev.get("c3"),
                ev.get("chain", ""),
            ]
        )
    return headers, rows


def chain_summary(events: Sequence[Event]) -> Table:
    """Per-chain roll-up of a multi-chain (``parallel1``) anneal.

    One row per chain: temperature steps run, move totals, the chain's
    last reported cost, how many times the exchange step restarted it
    from the best state, and whether it won.  Empty for single-chain
    traces (no ``chain``-tagged events).
    """
    headers = [
        "chain",
        "steps",
        "attempts",
        "accepts",
        "acceptance",
        "final_cost",
        "exchanges_in",
        "winner",
    ]
    per_chain: Dict[Any, Dict[str, Any]] = {}
    exchanges: Dict[Any, int] = {}
    winner = None
    for ev in events:
        if ev.get("ev") != "event":
            continue
        name = ev.get("name")
        if name == "anneal.temperature" and "chain" in ev:
            entry = per_chain.setdefault(
                ev["chain"], {"steps": 0, "attempts": 0, "accepts": 0, "cost": None}
            )
            entry["steps"] += 1
            entry["attempts"] += ev.get("attempts") or 0
            entry["accepts"] += ev.get("accepts") or 0
            entry["cost"] = ev.get("cost")
        elif name == "parallel.exchange":
            for target in ev.get("targets", ()):
                exchanges[target] = exchanges.get(target, 0) + 1
        elif name == "parallel.winner":
            winner = ev.get("chain")
    rows: List[List[Any]] = []
    for chain in sorted(per_chain):
        entry = per_chain[chain]
        acceptance = (
            round(entry["accepts"] / entry["attempts"], 4)
            if entry["attempts"]
            else 0.0
        )
        rows.append(
            [
                chain,
                entry["steps"],
                entry["attempts"],
                entry["accepts"],
                acceptance,
                entry["cost"],
                exchanges.get(chain, 0),
                "yes" if chain == winner else "",
            ]
        )
    return headers, rows


def stage_summary(events: Sequence[Event]) -> Table:
    """Per-stage wall/CPU totals aggregated over every span occurrence."""
    paths = span_paths(events)
    agg: Dict[str, List[float]] = {}  # path -> [count, wall, cpu, failures]
    order: List[str] = []
    for ev in events:
        if ev.get("ev") != "span_end":
            continue
        path = paths.get(ev.get("span", -1), ev.get("name", "?"))
        if path not in agg:
            agg[path] = [0, 0.0, 0.0, 0]
            order.append(path)
        entry = agg[path]
        entry[0] += 1
        entry[1] += float(ev.get("wall_s", 0.0))
        entry[2] += float(ev.get("cpu_s", 0.0))
        if not ev.get("ok", True):
            entry[3] += 1
    headers = ["stage", "calls", "wall_s", "cpu_s", "failed"]
    rows = [
        [path, int(agg[path][0]), round(agg[path][1], 4), round(agg[path][2], 4),
         int(agg[path][3])]
        for path in sorted(order)
    ]
    return headers, rows


def stage_cost_table(events: Sequence[Event]) -> Table:
    """Per-stage cost checkpoints (TEIL / chip area / overflow events)."""
    headers = ["stage", "teil", "chip_area", "overflow"]
    rows: List[List[Any]] = []
    for ev in events:
        if ev.get("ev") != "event":
            continue
        if ev.get("name") in ("stage1.result", "stage2.pass"):
            label = ev["name"]
            if ev.get("name") == "stage2.pass" and "index" in ev:
                label = f"stage2.pass[{ev['index']}]"
            rows.append(
                [label, ev.get("teil"), ev.get("chip_area"), ev.get("overflow", "")]
            )
    return headers, rows


def write_csv(table: Table, path: Union[str, Path]) -> None:
    headers, rows = table
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)


def render_text(events: Sequence[Event]) -> str:
    """All tables as one plain-text report.

    A trace with no annealing events (a routing-only run, or one cut
    off before the first temperature step) still renders: the
    annealing tables are replaced by a note and the stage summaries
    are emitted from whatever spans the trace does contain.
    """
    sections = []
    if not _temperature_events(events):
        sections.append(
            "note: no annealing events in this trace "
            "(acceptance/cost tables omitted)"
        )
        tables = [
            ("per-stage cost checkpoints (Table 3 analogue)", stage_cost_table(events)),
            ("per-stage time summary (Table 4 analogue)", stage_summary(events)),
        ]
    else:
        chains = chain_summary(events)
        tables = [
            ("acceptance ratio vs temperature (Fig. 3/5 analogue)", acceptance_table(events)),
            ("cost vs iteration (Fig. 4/6 analogue)", cost_table(events)),
            ("per-stage cost checkpoints (Table 3 analogue)", stage_cost_table(events)),
            ("per-stage time summary (Table 4 analogue)", stage_summary(events)),
        ]
        if chains[1]:
            tables.insert(2, ("multi-chain summary (best-of-K exchange)", chains))
    for title, table in tables:
        headers, rows = table
        body = format_table(headers, rows) if rows else "(no matching events)"
        sections.append(f"== {title} ==\n{body}")
    return "\n\n".join(sections) + "\n"


def write_report(
    events: Sequence[Event], out_dir: Union[str, Path]
) -> Dict[str, Path]:
    """Write every artifact into ``out_dir``; returns name -> path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    artifacts = {
        "acceptance_vs_temperature.csv": acceptance_table(events),
        "cost_vs_iteration.csv": cost_table(events),
        "stage_costs.csv": stage_cost_table(events),
        "stage_summary.csv": stage_summary(events),
        "chains.csv": chain_summary(events),
    }
    written: Dict[str, Path] = {}
    for name, table in artifacts.items():
        path = out / name
        write_csv(table, path)
        written[name] = path
    text_path = out / "report.txt"
    text_path.write_text(render_text(events), encoding="utf-8")
    written["report.txt"] = text_path
    return written


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's diagnostic tables from a trace."
    )
    parser.add_argument("trace", type=Path, help="JSONL trace file")
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=None,
        help="also write CSV + text artifacts into this directory",
    )
    args = parser.parse_args(argv)

    events = load_events(args.trace)
    if not events:
        print(f"no events in {args.trace}")
        return 1
    print(render_text(events), end="")
    if args.out_dir is not None:
        written = write_report(events, args.out_dir)
        print(f"\nwrote {len(written)} artifacts to {args.out_dir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
