"""Low-overhead sampling profiler: where the anneal's wall-clock goes.

:mod:`repro.telemetry.profiler` wraps a stage in ``cProfile``, which is
exact but costs tens of percent on the move loop — fine for one-off
investigation, unusable always-on.  This module is the production
counterpart: a background thread samples the target thread's stack at a
fixed rate via ``sys._current_frames()`` and aggregates the samples
into Brendan-Gregg-style *collapsed stacks* (``frame;frame;frame N``),
the input format of every flamegraph renderer.  Sampling cost is a few
microseconds per tick, so at the default ~100 Hz the overhead on the
hot loop stays within the CI-gated budget (≤5 %, see
``benchmarks/bench_moves_per_sec.py``).

A signal-based sampler (``setitimer``/``SIGPROF``) would be cheaper
still, but the flow already owns SIGINT/SIGTERM for checkpointing
(``resilience.signals.trap_signals``) and worker processes reset their
signal disposition on start; a daemon thread composes with all of that
and works on every platform.

Per-stage attribution falls out of the stacks themselves: every sample
taken inside stage 1 passes through ``run_stage1`` (and through
``BatchMoveGenerator`` or the object core's ``MoveGenerator``), router
samples pass through ``route``/``m_shortest_routes``, so
:meth:`SamplingProfiler.attribution` can bucket samples by the
flow-level frames they contain without any cooperation from the flow.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

#: Default sampling rate.  A prime-ish rate avoids lockstep with
#: periodic work (the classic profiler-bias defence).
DEFAULT_HZ = 97.0

#: Frames deeper than this are truncated (guards against pathological
#: recursion blowing up the sample keys).
MAX_DEPTH = 96

#: Flow-level frame names used to bucket samples into stages.  Ordered:
#: the first marker found walking root→leaf wins, so the outermost
#: stage owns the sample.
STAGE_MARKERS: Tuple[Tuple[str, str], ...] = (
    ("stage1", "run_stage1"),
    ("stage2", "run_refinement"),
    ("router", "route_nets_parallel"),
    ("router", "m_shortest_routes"),
    ("router", "route"),
    ("legalize", "legalize"),
)

#: Kernel-level frame substrings for hot-path attribution (the
#: BatchKernel-vs-object-core split the perf docs track).
KERNEL_MARKERS: Tuple[Tuple[str, str], ...] = (
    ("batch_kernel", "repro.placement.batch"),
    ("array_core", "repro.placement.array"),
    ("object_core", "repro.placement.state"),
    ("router", "repro.routing"),
    ("annealing", "repro.annealing"),
)


def _frame_label(frame) -> str:
    """``module.function`` for one frame (module trimmed to the last
    two components so collapsed stacks stay readable)."""
    module = frame.f_globals.get("__name__", "?")
    return f"{module}.{frame.f_code.co_name}"


class SamplingProfiler:
    """Samples one thread's stack from a daemon thread.

    Usage::

        prof = SamplingProfiler(hz=97)
        with prof:
            run_the_flow()
        Path("profile.collapsed").write_text(prof.collapsed())

    The profiled thread defaults to the thread that calls
    :meth:`start`.  Samples accumulate across start/stop cycles;
    :meth:`collapsed` renders them at any point.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        thread_id: Optional[int] = None,
        max_depth: int = MAX_DEPTH,
    ) -> None:
        if hz <= 0:
            raise ValueError("hz must be positive")
        self.hz = float(hz)
        self.max_depth = max_depth
        self._thread_id = thread_id
        self._samples: Counter = Counter()
        self._sampler: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started_at: Optional[float] = None
        self.wall_seconds = 0.0
        self.sample_count = 0
        self.missed = 0  # ticks where the target thread had no frame

    # -- lifecycle ----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._sampler is not None and self._sampler.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        if self._thread_id is None:
            self._thread_id = threading.get_ident()
        self._stop.clear()
        self._started_at = time.monotonic()
        self._sampler = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._sampler.start()
        return self

    def stop(self) -> None:
        if self._sampler is None:
            return
        self._stop.set()
        self._sampler.join(timeout=2.0)
        self._sampler = None
        if self._started_at is not None:
            self.wall_seconds += time.monotonic() - self._started_at
            self._started_at = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- the sampler thread -------------------------------------------------

    def _run(self) -> None:
        interval = 1.0 / self.hz
        take = self._take_sample
        while not self._stop.wait(interval):
            take()

    def _take_sample(self) -> None:
        frame = sys._current_frames().get(self._thread_id)
        if frame is None:
            self.missed += 1
            return
        stack: List[str] = []
        depth = 0
        while frame is not None and depth < self.max_depth:
            stack.append(_frame_label(frame))
            frame = frame.f_back
            depth += 1
        stack.reverse()  # root first, leaf last — the collapsed order
        self._samples[tuple(stack)] += 1
        self.sample_count += 1

    # -- output -------------------------------------------------------------

    @property
    def samples(self) -> Dict[Tuple[str, ...], int]:
        return dict(self._samples)

    def collapsed(self) -> str:
        """The flamegraph input: one ``a;b;c count`` line per distinct
        stack, most-sampled first."""
        lines = [
            f"{';'.join(stack)} {count}"
            for stack, count in self._samples.most_common()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.collapsed(), encoding="utf-8")
        return path

    def attribution(self) -> Dict[str, Any]:
        """Per-stage and per-kernel sample buckets plus the hottest leaf
        frames — the "where did the time go" summary the obs server and
        the tracer event surface."""
        total = sum(self._samples.values())
        stages: Counter = Counter()
        kernels: Counter = Counter()
        leaves: Counter = Counter()
        for stack, count in self._samples.items():
            leaves[stack[-1]] += count
            stage = "other"
            for name, marker in STAGE_MARKERS:
                if any(f.endswith(f".{marker}") for f in stack):
                    stage = name
                    break
            stages[stage] += count
            kernel = "other"
            for name, marker in KERNEL_MARKERS:
                if any(f.startswith(marker) for f in stack):
                    kernel = name
                    break
            kernels[kernel] += count

        def pct(bucket: Counter) -> Dict[str, Dict[str, float]]:
            return {
                name: {
                    "samples": n,
                    "pct": round(100.0 * n / total, 2) if total else 0.0,
                }
                for name, n in bucket.most_common()
            }

        return {
            "samples": total,
            "hz": self.hz,
            "wall_seconds": round(self.wall_seconds, 3),
            "missed": self.missed,
            "stages": pct(stages),
            "kernels": pct(kernels),
            "hot_frames": pct(Counter(dict(leaves.most_common(15)))),
        }

    def summary(self) -> Dict[str, Any]:
        """Compact form for tracer events / JSON routes."""
        attr = self.attribution()
        attr["distinct_stacks"] = len(self._samples)
        return attr


def parse_collapsed(text: str) -> Counter:
    """Inverse of :meth:`SamplingProfiler.collapsed` (obs views re-load
    profiles from disk).  Malformed lines are skipped, torn-tail style."""
    samples: Counter = Counter()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if not stack or not count.isdigit():
            continue
        samples[tuple(stack.split(";"))] += int(count)
    return samples


def attribution_from_collapsed(text: str) -> Dict[str, Any]:
    """The :meth:`SamplingProfiler.attribution` document recomputed from
    an on-disk collapsed-stack file."""
    prof = SamplingProfiler()
    prof._samples = parse_collapsed(text)
    prof.sample_count = sum(prof._samples.values())
    return prof.attribution()
