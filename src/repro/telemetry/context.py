"""Distributed trace identity: one trace across every process of a run.

The flow spans up to four process tiers — the service supervisor, the
worker subprocess it launches, the multi-chain coordinator's chain
workers, and the router fan-out pool — and a retried job adds a second
worker attempt resumed from a checkpoint.  A :class:`TraceContext` is
the identity that survives all of it: a W3C-traceparent-style triple of
``trace_id`` (16 bytes hex, minted once per logical run), ``span_id``
(8 bytes hex, one per process hop), and ``flags``.

Propagation is deliberately boring:

* **env** — :data:`TRACEPARENT_ENV` carries the serialized header
  across ``subprocess.Popen`` (the supervisor stamps it into the worker
  environment) and across ``fork`` (chain and router workers inherit
  it for free);
* **checkpoint** — the checkpoint payload records the trace id, so a
  ``resume`` — manual or a supervisor retry — continues the *same*
  trace instead of minting a new one;
* **events** — every tracer event, heartbeat, events.jsonl journal
  line, and registry run row is stamped with ``trace_id`` via
  ``Tracer.set_context`` / ``HeartbeatWriter.set_context``.

The header format is the W3C one (``00-<trace>-<span>-<flags>``) so any
external tooling that speaks traceparent can join our traces.
"""

from __future__ import annotations

import os
import re
import secrets
from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional

#: Environment variable the context rides across process boundaries.
TRACEPARENT_ENV = "REPRO_TRACEPARENT"

#: The one traceparent version we emit.
_VERSION = "00"

_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


@dataclass(frozen=True)
class TraceContext:
    """One hop of a distributed trace (immutable)."""

    trace_id: str
    span_id: str
    flags: int = 1

    def __post_init__(self) -> None:
        if not re.fullmatch(r"[0-9a-f]{32}", self.trace_id):
            raise ValueError(f"trace_id must be 32 hex chars: {self.trace_id!r}")
        if not re.fullmatch(r"[0-9a-f]{16}", self.span_id):
            raise ValueError(f"span_id must be 16 hex chars: {self.span_id!r}")
        if not 0 <= self.flags <= 0xFF:
            raise ValueError(f"flags out of range: {self.flags!r}")

    # -- serialization ------------------------------------------------------

    def to_traceparent(self) -> str:
        """The W3C ``version-traceid-spanid-flags`` header."""
        return f"{_VERSION}-{self.trace_id}-{self.span_id}-{self.flags:02x}"

    @staticmethod
    def parse(header: str) -> Optional["TraceContext"]:
        """Parse a traceparent header; None when malformed (propagation
        must degrade to a fresh trace, never crash the flow)."""
        match = _TRACEPARENT_RE.match(header.strip().lower())
        if match is None:
            return None
        _, trace_id, span_id, flags = match.groups()
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None
        return TraceContext(trace_id, span_id, int(flags, 16))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "flags": self.flags,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> Optional["TraceContext"]:
        try:
            return TraceContext(
                str(data["trace_id"]),
                str(data.get("span_id") or new_span_id()),
                int(data.get("flags", 1)),
            )
        except (KeyError, TypeError, ValueError):
            return None

    # -- hops ---------------------------------------------------------------

    def child(self) -> "TraceContext":
        """The next hop: same trace, fresh span id (called once per
        process or attempt so each hop is distinguishable)."""
        return replace(self, span_id=new_span_id())

    def env(self, environ: Optional[Mapping[str, str]] = None) -> Dict[str, str]:
        """A subprocess environment carrying this context (a copy of
        ``environ``, default ``os.environ``, with the header set)."""
        out = dict(os.environ if environ is None else environ)
        out[TRACEPARENT_ENV] = self.to_traceparent()
        return out


def new_trace_id() -> str:
    return secrets.token_hex(16)


def new_span_id() -> str:
    return secrets.token_hex(8)


def mint_context(flags: int = 1) -> TraceContext:
    """A brand-new trace (the root hop): called at ``place`` /
    ``service submit`` — everywhere a logical run is born."""
    return TraceContext(new_trace_id(), new_span_id(), flags)


def context_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[TraceContext]:
    """The context a parent process handed us (None outside any trace)."""
    header = (os.environ if environ is None else environ).get(TRACEPARENT_ENV)
    if not header:
        return None
    return TraceContext.parse(header)


def inherit_or_mint(
    environ: Optional[Mapping[str, str]] = None,
) -> TraceContext:
    """The standard entry-point resolution: continue the trace a parent
    propagated via env (as a fresh child hop), else mint a new one."""
    parent = context_from_env(environ)
    if parent is not None:
        return parent.child()
    return mint_context()
