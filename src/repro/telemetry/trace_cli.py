"""CLI handler for ``python -m repro trace``.

Offline access to the same trace views the obs server serves: ``show``
prints a span tree (with per-span wall time and event counts) straight
from a rundir or a single trace JSONL; ``export`` writes the merged
trace document as JSON or as the standalone HTML waterfall.  Kept in
its own module so ``repro.__main__`` registers the command without
importing the obs view code until it actually runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional


def add_trace_command(subparsers: argparse._SubParsersAction) -> None:
    """Register ``trace`` (with ``show`` / ``export``) on the parser."""
    trace_p = subparsers.add_parser(
        "trace",
        help="inspect recorded trace files: span trees, waterfalls, "
        "HTML/JSON export",
    )
    verbs = trace_p.add_subparsers(dest="trace_command", required=True)

    show_p = verbs.add_parser(
        "show", help="print the span tree of a rundir or trace JSONL"
    )
    show_p.add_argument(
        "path", help="rundir holding trace*.jsonl, or one trace file"
    )
    show_p.add_argument(
        "--waterfall",
        action="store_true",
        help="flat Gantt rows (offset/width bars) instead of the tree",
    )
    show_p.set_defaults(func=cmd_trace_show)

    export_p = verbs.add_parser(
        "export", help="write the merged trace document (JSON or HTML)"
    )
    export_p.add_argument(
        "path", help="rundir holding trace*.jsonl, or one trace file"
    )
    export_p.add_argument(
        "--out", default=None, help="output file (default: stdout)"
    )
    export_p.add_argument(
        "--html",
        action="store_true",
        help="render the standalone HTML waterfall instead of JSON",
    )
    export_p.set_defaults(func=cmd_trace_export)


def _document(path_arg: str) -> Optional[Dict[str, Any]]:
    """The trace document for a rundir — or for one explicit JSONL file,
    wrapped in a single-process document of the same shape."""
    from ..obs.trace import span_tree, trace_document, trace_ids_of, waterfall
    from .report import load_events

    path = Path(path_arg)
    if path.is_dir():
        return trace_document(path)
    if not path.is_file():
        return None
    events = load_events(path)
    roots = span_tree(events)
    tids = trace_ids_of(events)
    return {
        "run_id": None,
        "rundir": str(path.parent),
        "trace_id": tids[0] if len(tids) == 1 else None,
        "trace_ids": tids,
        "processes": [
            {
                "file": path.name,
                "events": len(events),
                "trace_ids": tids,
                "spans": roots,
                "waterfall": waterfall(roots),
            }
        ],
        "span_count": len(waterfall(roots)),
    }


def _format_span(node: Dict[str, Any], depth: int, lines: List[str]) -> None:
    dur = f"{node['wall_s']:.3f}s" if node.get("wall_s") is not None else "open"
    status = ""
    if node.get("ok") is False:
        status = " FAILED"
    elif node.get("end") is None:
        status = " (unclosed)"
    chain = f" chain={node['chain']}" if node.get("chain") is not None else ""
    events = f" events={node['events']}" if node.get("events") else ""
    lines.append(
        f"{'  ' * depth}{node['name']}  {dur}{chain}{events}{status}"
    )
    for child in sorted(
        node["children"], key=lambda n: (n["start"] is None, n["start"])
    ):
        _format_span(child, depth + 1, lines)


def _format_waterfall(rows: List[Dict[str, Any]]) -> List[str]:
    starts = [r["start"] for r in rows if r["start"] is not None]
    ends = [r["end"] for r in rows if r["end"] is not None]
    if not starts:
        return ["(no spans)"]
    t0 = min(starts)
    total = max((max(ends) if ends else t0) - t0, 1e-9)
    width = 40
    lines: List[str] = []
    for row in rows:
        if row["start"] is None:
            continue
        left = int(width * (row["start"] - t0) / total)
        right = int(width * ((row["end"] or row["start"]) - t0) / total)
        bar = " " * left + "#" * max(right - left, 1)
        dur = f"{row['wall_s']:.3f}s" if row.get("wall_s") is not None else "open"
        name = ("  " * row["depth"] + str(row["name"]))[:30]
        lines.append(f"{name:<30} |{bar:<{width}}| {dur}")
    return lines


def cmd_trace_show(args: argparse.Namespace) -> int:
    doc = _document(args.path)
    if doc is None:
        print(f"no trace files under {args.path}", file=sys.stderr)
        return 1
    lines: List[str] = []
    if doc.get("trace_ids"):
        lines.append("trace " + ", ".join(doc["trace_ids"]))
    for proc in doc["processes"]:
        lines.append(f"-- {proc['file']} ({proc['events']} events)")
        if args.waterfall:
            lines.extend(_format_waterfall(proc["waterfall"]))
        else:
            for root in sorted(
                proc["spans"], key=lambda n: (n["start"] is None, n["start"])
            ):
                _format_span(root, 0, lines)
    print("\n".join(lines))
    return 0


def cmd_trace_export(args: argparse.Namespace) -> int:
    doc = _document(args.path)
    if doc is None:
        print(f"no trace files under {args.path}", file=sys.stderr)
        return 1
    if args.html:
        from ..obs.trace import render_trace_html

        text = render_trace_html(doc)
    else:
        text = json.dumps(doc, indent=2, sort_keys=True, default=str) + "\n"
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0
