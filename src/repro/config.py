"""Configuration for the TimberWolfMC flow, with quality presets.

The paper's knobs and the values it recommends:

* ``attempts_per_cell`` — A_c, new states per cell per temperature.
  A_c ~ 400 saturates quality for 30-60-cell circuits (Figures 5-6);
  A_c = 25 is ~16x cheaper at a ~13 % TEIL penalty, appropriate early
  in a design.
* ``r_ratio`` — r, single-cell displacements per pairwise interchange;
  anything in 7-15 is within one percent of the best TEIL (Figure 3).
* ``rho`` — range-limiter shrink exponent; 4 minimizes both final TEIL
  and residual overlap (§3.2.2).
* ``eta`` — the overlap-penalty normalization target of Eqn 9;
  performance is flat for 0.25 <= eta <= 1.0.
* ``kappa`` — the pin-site overflow constant of Eqn 10 (kappa = 5).
* ``mu`` — stage-2 initial window as a fraction of the core span
  (mu = 0.03, §4.3).
* ``m_routes`` — M, alternative routes stored per net (§4.2.1, M ~ 20).
* ``refinement_passes`` — stage-2 iterations (three suffice, §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from .estimator import ModulationProfile

#: Allowed responses to incremental-cost drift past the tolerance.
DRIFT_ACTIONS = ("warn", "resync", "raise")

#: Displacement-point selectors (§3.2.3): the evenly-dispersed Ds or the
#: uniformly-random Dr baseline.
SELECTOR_DS = "ds"
SELECTOR_DR = "dr"

#: Stage-1 placement cores: the original object-graph inner loop or the
#: struct-of-arrays kernel (same decisions and costs on seeded replays).
CORES = ("object", "array")

#: Cooling schedules: the paper's Tables 1/2, or the VPR-style
#: acceptance-ratio-driven schedule (alpha and the displacement window
#: both follow the measured r_accept).
COOLING_SCHEDULES = ("table", "adaptive")

#: Stage-1 move drivers: "serial" steps one Metropolis move at a time
#: (bit-identical across cores); "batched" evaluates PARSAC-style
#: synchronous sweeps on the array kernel (same schedule and
#: accounting, a different — QoR-parity-gated — move stream).
MOVERS = ("serial", "batched")


@dataclass(frozen=True)
class ParallelConfig:
    """The parallel execution layer's knobs (``repro.parallel``).

    * ``workers`` — process-pool size.  1 (the default) keeps today's
      serial code path byte-identical: no processes are spawned for
      either the multi-chain anneal or the router fan-out.
    * ``chains`` — K, independent stage-1 annealing chains.  1 runs the
      classic single-chain stage 1; K > 1 runs K chains with periodic
      best-of-K exchange.  The result depends only on (seed, chains,
      exchange_period), never on ``workers``.
    * ``exchange_period`` — E, temperature decrements between
      synchronization points where chains are ranked by cost and the
      worst restart from a perturbed copy of the best state.
    """

    workers: int = 1
    chains: int = 1
    exchange_period: int = 10

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.chains < 1:
            raise ValueError("chains must be at least 1")
        if self.exchange_period < 1:
            raise ValueError("exchange_period must be at least 1")

    def to_dict(self) -> Dict:
        return {
            "workers": self.workers,
            "chains": self.chains,
            "exchange_period": self.exchange_period,
        }


@dataclass(frozen=True)
class TimberWolfConfig:
    """All tunables of the two-stage flow.  Defaults follow the paper."""

    seed: int = 0
    attempts_per_cell: int = 100
    r_ratio: float = 10.0
    rho: float = 4.0
    eta: float = 0.5
    kappa: float = 5.0
    mu: float = 0.03
    selector: str = SELECTOR_DS
    #: Stage-1 inner-loop implementation: "array" (struct-of-arrays
    #: kernel, the default) or "object" (the original object graph).
    #: Both replay identically move-for-move at the same seed.
    core: str = "array"
    #: "table" follows the paper's Tables 1/2; "adaptive" drives alpha
    #: and the displacement window from the measured acceptance ratio.
    cooling: str = "table"
    #: Stage-1 move driver: "serial" (one move per Metropolis step) or
    #: "batched" (synchronous sweeps on the array kernel; requires
    #: ``core="array"``).  Batched runs resume bit-for-bit against
    #: themselves but are QoR-parity-gated against serial, not
    #: bit-identical to it.
    mover: str = "serial"
    #: Proposals evaluated per batched sweep (ignored by the serial
    #: mover).
    batch_moves: int = 48
    core_aspect_ratio: float = 1.0
    core_slack: float = 1.0
    #: Scales the estimator's Cw; 1.0 is the paper's flow, 0.0 disables
    #: the dynamic interconnect-area estimation entirely (ablation).
    estimator_scale: float = 1.0
    m_routes: int = 20
    refinement_passes: int = 3
    max_temperatures: int = 240
    refine_attempts_per_cell: int = 0  # 0 = same as attempts_per_cell
    profile: ModulationProfile = field(default_factory=ModulationProfile)
    #: Wrap each flow stage in a cProfile span and emit a ``profile``
    #: trace event per stage.  Only takes effect when the run is traced
    #: (an enabled tracer is installed); costs nothing otherwise.
    enable_profiling: bool = False
    #: Reconcile the incremental C1/C2/C3 accumulators against a full
    #: recomputation every N temperature steps (0 disables the audit).
    drift_check_every: int = 0
    #: Largest tolerated relative drift before ``drift_action`` applies.
    drift_tolerance: float = 1e-6
    #: What to do past the tolerance: "warn", "resync", or "raise".
    drift_action: str = "warn"
    #: The parallel execution layer (multi-chain anneal + router
    #: fan-out); the default is fully serial.
    parallel: ParallelConfig = field(default_factory=ParallelConfig)

    def __post_init__(self) -> None:
        if self.attempts_per_cell < 1:
            raise ValueError("attempts_per_cell must be at least 1")
        if self.r_ratio <= 0:
            raise ValueError("r_ratio must be positive")
        if not 1.0 <= self.rho <= 10.0:
            raise ValueError("rho must lie in [1, 10]")
        if self.eta <= 0:
            raise ValueError("eta must be positive")
        if not 0.0 < self.mu <= 1.0:
            raise ValueError("mu must lie in (0, 1]")
        if self.selector not in (SELECTOR_DS, SELECTOR_DR):
            raise ValueError(f"unknown selector {self.selector!r}")
        if self.core not in CORES:
            raise ValueError(f"core must be one of {CORES}, got {self.core!r}")
        if self.cooling not in COOLING_SCHEDULES:
            raise ValueError(
                f"cooling must be one of {COOLING_SCHEDULES}, "
                f"got {self.cooling!r}"
            )
        if self.mover not in MOVERS:
            raise ValueError(
                f"mover must be one of {MOVERS}, got {self.mover!r}"
            )
        if self.mover == "batched" and self.core != "array":
            raise ValueError(
                "mover='batched' requires core='array': the batched "
                "sweep kernel runs on the struct-of-arrays core only "
                "(pass --core array or drop --mover batched)"
            )
        if self.batch_moves < 1:
            raise ValueError("batch_moves must be at least 1")
        if self.m_routes < 1:
            raise ValueError("m_routes must be at least 1")
        if self.refinement_passes < 0:
            raise ValueError("refinement_passes must be non-negative")
        if self.estimator_scale < 0:
            raise ValueError("estimator_scale must be non-negative")
        if self.drift_check_every < 0:
            raise ValueError("drift_check_every must be non-negative")
        if self.drift_tolerance <= 0:
            raise ValueError("drift_tolerance must be positive")
        if self.drift_action not in DRIFT_ACTIONS:
            raise ValueError(
                f"drift_action must be one of {DRIFT_ACTIONS}, "
                f"got {self.drift_action!r}"
            )

    @property
    def displacement_probability(self) -> float:
        """p with r = p / (1 - p): probability of a single-cell displacement
        rather than a pairwise interchange."""
        return self.r_ratio / (1.0 + self.r_ratio)

    @property
    def stage2_attempts_per_cell(self) -> int:
        return self.refine_attempts_per_cell or self.attempts_per_cell

    def with_seed(self, seed: int) -> "TimberWolfConfig":
        return replace(self, seed=seed)

    def to_dict(self) -> Dict:
        """A plain-data form (checkpoint envelopes, JSON exports)."""
        data = {
            f.name: getattr(self, f.name)
            for f in self.__dataclass_fields__.values()
        }
        profile = data.pop("profile")
        data["profile"] = {
            "m_x": profile.m_x,
            "b_x": profile.b_x,
            "m_y": profile.m_y,
            "b_y": profile.b_y,
        }
        data["parallel"] = data.pop("parallel").to_dict()
        return data

    @staticmethod
    def from_dict(data: Dict) -> "TimberWolfConfig":
        """Inverse of :meth:`to_dict`.  Unknown keys are rejected so a
        checkpoint from an incompatible build fails loudly."""
        data = dict(data)
        profile = data.pop("profile", None)
        parallel = data.pop("parallel", None)
        known = set(TimberWolfConfig.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown config fields: {sorted(unknown)}")
        if profile is not None:
            data["profile"] = ModulationProfile(**profile)
        if parallel is not None:
            data["parallel"] = ParallelConfig(**parallel)
        return TimberWolfConfig(**data)

    # -- presets -----------------------------------------------------------

    @staticmethod
    def smoke(seed: int = 0) -> "TimberWolfConfig":
        """Tiny settings for unit tests: seconds, not minutes.

        The full Table-1 ladder needs ~100+ temperature steps to cool the
        five decades from T-inf to the quench floor, so the temperature
        budget stays paper-sized while the inner loop shrinks.
        """
        return TimberWolfConfig(
            seed=seed,
            attempts_per_cell=4,
            max_temperatures=130,
            m_routes=4,
            refinement_passes=1,
        )

    @staticmethod
    def fast(seed: int = 0) -> "TimberWolfConfig":
        """The paper's 'early design stage' operating point (A_c ~ 25)."""
        return TimberWolfConfig(
            seed=seed,
            attempts_per_cell=25,
            max_temperatures=160,
            m_routes=8,
            refinement_passes=2,
        )

    @staticmethod
    def paper(seed: int = 0) -> "TimberWolfConfig":
        """The quality operating point (A_c = 400, M = 20, 3 passes)."""
        return TimberWolfConfig(
            seed=seed,
            attempts_per_cell=400,
            max_temperatures=240,
            m_routes=20,
            refinement_passes=3,
        )
