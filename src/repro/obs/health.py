"""Anneal-health analytics from a run's heartbeat history.

Sechen's own diagnostics for a healthy anneal are the acceptance-ratio
trajectory (Fig. 3: ~1 at T∞, a smooth sigmoid decline through the
productive mid-range, ~0 in the quench) and the cost-vs-iteration curve
(Fig. 5: monotone-ish descent flattening into the freeze).  This module
recomputes those signals live from the ``heartbeat.history.jsonl`` ring
and turns them into operator-facing verdicts:

* **acceptance trajectory** vs. the Fig.-3 ideal — a logistic decline
  in annealing progress — with *too-hot* (still accepting nearly
  everything deep into the run) and *quenched* (acceptance collapsed
  almost immediately) anomaly flags;
* **cost plateau / stall detection** — the trailing cost window is
  flat: expected during the freeze (low acceptance), suspicious while
  uphill moves are still routinely taken;
* **ETA** — the schedule-derived ``eta_steps``/``eta_seconds`` from the
  latest beat plus a measured estimate (median wall time per observed
  temperature step × steps left);
* **divergence** — the heartbeat's C1/C2/C3 cost components no longer
  sum to the cost accumulator the annealer is optimizing, i.e. the
  incremental bookkeeping drifted from the checkpointed truth the
  :class:`~repro.resilience.drift.DriftGuard` reconciles against.

All heuristics are advisory: the output labels each flag and leaves the
kill decision to the operator (or the future job API).
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict, List, Optional

from ..qor.monitor import STALE_AFTER
from .fleet import beat_age, classify_state

#: Trailing anneal beats examined for a cost plateau.
PLATEAU_WINDOW = 10

#: Relative cost span below which the trailing window counts as flat.
PLATEAU_REL_TOLERANCE = 1e-3

#: Acceptance above this after half the run means the schedule never cooled.
TOO_HOT_ACCEPTANCE = 0.9

#: Acceptance below this in the first quarter of the run means a quench.
QUENCHED_ACCEPTANCE = 0.05

#: Relative |cost - (C1+C2+C3)| beyond which the run counts as diverged
#: (the components are rounded to 4 decimals in the heartbeat, so a
#: healthy run sits orders of magnitude below this).
DIVERGENCE_REL_TOLERANCE = 1e-3
DIVERGENCE_ABS_TOLERANCE = 0.05


def fig3_ideal_acceptance(progress: float) -> float:
    """The idealized Fig.-3 acceptance ratio at annealing progress
    ``progress`` in [0, 1]: a logistic decline from ~1 to ~0 centred on
    the productive mid-range."""
    progress = min(1.0, max(0.0, progress))
    return 1.0 / (1.0 + math.exp(10.0 * (progress - 0.5)))


def _anneal_beats(history: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [
        beat
        for beat in history
        if beat.get("phase") == "anneal" and "acceptance" in beat
    ]


def _progress_of(beat: Dict[str, Any], index: int, count: int) -> float:
    """Annealing progress of one beat: completed steps over projected
    total (step + eta_steps) when the beat carries an ETA, positional
    fraction of the observed trajectory otherwise."""
    step = beat.get("step")
    eta = beat.get("eta_steps")
    if isinstance(step, (int, float)) and isinstance(eta, (int, float)):
        total = step + eta
        if total > 0:
            return min(1.0, step / total)
    return index / max(1, count - 1)


def acceptance_health(beats: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The acceptance trajectory compared against the Fig.-3 ideal."""
    if not beats:
        return {"samples": 0, "flags": []}
    deviations: List[float] = []
    flags: List[str] = []
    trajectory: List[Dict[str, Any]] = []
    for index, beat in enumerate(beats):
        progress = _progress_of(beat, index, len(beats))
        acceptance = float(beat.get("acceptance", 0.0))
        ideal = fig3_ideal_acceptance(progress)
        deviations.append(abs(acceptance - ideal))
        trajectory.append(
            {
                "step": beat.get("step"),
                "T": beat.get("T"),
                "acceptance": acceptance,
                "ideal": round(ideal, 4),
                "progress": round(progress, 4),
            }
        )
    last = trajectory[-1]
    if last["progress"] >= 0.5 and last["acceptance"] > TOO_HOT_ACCEPTANCE:
        flags.append("too_hot")
    early = [t for t in trajectory if t["progress"] <= 0.25]
    if early and all(t["acceptance"] < QUENCHED_ACCEPTANCE for t in early):
        flags.append("quenched")
    return {
        "samples": len(trajectory),
        "mean_fig3_deviation": round(sum(deviations) / len(deviations), 4),
        "last": last,
        "flags": flags,
        "trajectory": trajectory[-50:],
    }


def cost_health(beats: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Plateau detection over the trailing cost window."""
    costs = [float(b["cost"]) for b in beats if "cost" in b]
    if len(costs) < 2:
        return {"samples": len(costs), "plateau": False, "flags": []}
    window = costs[-PLATEAU_WINDOW:]
    span = max(window) - min(window)
    scale = max(1.0, abs(window[-1]))
    plateau = len(window) >= min(PLATEAU_WINDOW, 3) and (
        span / scale
    ) < PLATEAU_REL_TOLERANCE
    acceptance = float(beats[-1].get("acceptance", 0.0))
    flags: List[str] = []
    if plateau:
        # Flat cost is the normal freeze signature once almost nothing
        # is accepted; with uphill moves still flowing it means the
        # accepted moves stopped buying anything — a genuine stall.
        flags.append(
            "frozen" if acceptance < 0.1 else "cost_stall"
        )
    return {
        "samples": len(costs),
        "plateau": plateau,
        "window": [round(c, 4) for c in window],
        "window_rel_span": round(span / scale, 8),
        "best": round(min(costs), 4),
        "last": round(costs[-1], 4),
        "flags": flags,
    }


def eta_health(beats: List[Dict[str, Any]], history: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The schedule ETA from the latest anneal beat, cross-checked with
    a wall-clock estimate measured from heartbeat timestamps."""
    if not beats:
        return {"eta_steps": None, "eta_seconds": None}
    last = beats[-1]
    out: Dict[str, Any] = {
        "eta_steps": last.get("eta_steps"),
        "eta_seconds": last.get("eta_seconds"),
        "eta_estimated": bool(last.get("eta_estimated", False)),
    }
    stamps = [float(b["updated"]) for b in beats if "updated" in b]
    if len(stamps) >= 3 and isinstance(last.get("eta_steps"), (int, float)):
        gaps = sorted(
            b - a for a, b in zip(stamps, stamps[1:]) if b - a > 0
        )
        if gaps:
            median_gap = gaps[len(gaps) // 2]
            out["seconds_per_step_measured"] = round(median_gap, 3)
            out["eta_seconds_measured"] = round(
                median_gap * float(last["eta_steps"]), 1
            )
    return out


def divergence_health(beats: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Whether C1 + C2 + C3 still reconstructs the cost accumulator."""
    checked = 0
    worst = 0.0
    diverged = False
    for beat in beats:
        if not all(k in beat for k in ("c1", "c2", "c3", "cost")):
            continue
        checked += 1
        total = float(beat["c1"]) + float(beat["c2"]) + float(beat["c3"])
        cost = float(beat["cost"])
        residual = abs(cost - total)
        rel = residual / max(1.0, abs(cost))
        worst = max(worst, rel)
        if rel > DIVERGENCE_REL_TOLERANCE and residual > DIVERGENCE_ABS_TOLERANCE:
            diverged = True
    return {
        "checked": checked,
        "worst_rel_residual": round(worst, 8),
        "diverged": diverged,
        "flags": ["diverged"] if diverged else [],
    }


def analyze_health(
    history: List[Dict[str, Any]],
    beat: Optional[Dict[str, Any]] = None,
    now: Optional[float] = None,
    stale_after: float = STALE_AFTER,
) -> Dict[str, Any]:
    """The full ``/runs/<id>/health`` document for one run.

    ``history`` is the parsed heartbeat ring (oldest first); ``beat``
    the latest snapshot (defaults to the newest history entry).
    """
    now = now if now is not None else time.time()
    if beat is None and history:
        beat = history[-1]
    beats = _anneal_beats(history)
    state = classify_state(beat, now, stale_after)
    acceptance = acceptance_health(beats)
    cost = cost_health(beats)
    eta = eta_health(beats, history)
    divergence = divergence_health(beats)
    flags = list(acceptance.get("flags", []))
    flags += cost.get("flags", [])
    flags += divergence.get("flags", [])
    if state == "stale":
        flags.append("stalled")
    healthy = state in ("running", "done") and not [
        f for f in flags if f != "frozen"
    ]
    return {
        "state": state,
        "age_seconds": beat_age(beat, now),
        "phase": (beat or {}).get("phase"),
        "stage": (beat or {}).get("stage"),
        "history_beats": len(history),
        "anneal_beats": len(beats),
        "healthy": healthy,
        "flags": sorted(set(flags)),
        "acceptance": acceptance,
        "cost": cost,
        "eta": eta,
        "divergence": divergence,
    }
