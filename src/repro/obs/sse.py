"""Server-Sent Events: the wire format and the heartbeat tailer.

SSE (``text/event-stream``) is the simplest push channel a browser —
or the future job API — can consume without polling: one long-lived
HTTP response carrying ``event:``/``data:`` frames.  The tailer turns a
run's atomic heartbeat snapshot plus its ``heartbeat.history.jsonl``
ring into an ordered event stream:

* ``beat`` — every heartbeat the run publishes, in ``seq`` order (the
  ring supplies the beats that landed between two polls, so a fast
  annealer does not alias down to the poll rate);
* ``stage`` — a flow stage/phase transition (start → anneal → route →
  done), emitted alongside the beat that revealed it;
* ``final`` — the run's last beat; the stream closes after it.

The tailer never touches the writer's files other than to read them,
and tolerates snapshot replacement and ring compaction mid-read.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from ..qor.heartbeat import history_path, read_heartbeat, read_history
from ..qor.monitor import FINAL_PHASES
from ..qor.recorder import RunRecorder


def format_sse(
    data: Any, event: Optional[str] = None, event_id: Optional[str] = None
) -> bytes:
    """One SSE frame: optional ``event``/``id`` lines, then the JSON
    payload as ``data`` lines, then the blank separator line."""
    lines = []
    if event is not None:
        lines.append(f"event: {event}")
    if event_id is not None:
        lines.append(f"id: {event_id}")
    payload = data if isinstance(data, str) else json.dumps(
        data, separators=(",", ":"), default=str
    )
    for chunk in payload.splitlines() or [""]:
        lines.append(f"data: {chunk}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def keepalive() -> bytes:
    """An SSE comment frame: keeps proxies from timing the stream out."""
    return b": keepalive\n\n"


class HeartbeatTailer:
    """Follows one rundir's heartbeat as an ordered beat iterator.

    Polls the atomic snapshot for the newest ``seq`` and backfills the
    intermediate beats from the history ring, so consumers observe every
    published beat exactly once and in order (ring permitting — beats
    compacted away before the first poll are gone, like any ring).
    """

    def __init__(
        self,
        rundir: Union[str, Path],
        poll_interval: float = 0.25,
        since_seq: int = 0,
    ) -> None:
        self.rundir = Path(rundir)
        self.snapshot_path = self.rundir / RunRecorder.HEARTBEAT_NAME
        self.history_file = history_path(self.snapshot_path)
        self.poll_interval = poll_interval
        self.last_seq = since_seq

    def poll(self) -> Iterator[Dict[str, Any]]:
        """Every beat newer than the cursor, oldest first (may be empty)."""
        snapshot = read_heartbeat(self.snapshot_path)
        if snapshot is None:
            return
        newest = int(snapshot.get("seq", 0) or 0)
        if newest <= self.last_seq:
            return
        backfill = read_history(self.history_file, since_seq=self.last_seq)
        emitted = False
        for beat in backfill:
            seq = int(beat.get("seq", 0) or 0)
            if seq <= self.last_seq:
                continue
            self.last_seq = seq
            emitted = True
            yield beat
        if newest > self.last_seq or not emitted:
            # No ring (or the snapshot outran it): emit the snapshot.
            self.last_seq = newest
            yield snapshot

    def beats(
        self,
        stop: Optional[threading.Event] = None,
        timeout: Optional[float] = None,
        max_beats: Optional[int] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Stream beats until the run's final beat, ``stop`` is set,
        ``timeout`` seconds elapse, or ``max_beats`` were delivered.
        Yields None between empty polls so callers can interleave
        keepalives."""
        deadline = time.monotonic() + timeout if timeout is not None else None
        delivered = 0
        while True:
            if stop is not None and stop.is_set():
                return
            if deadline is not None and time.monotonic() > deadline:
                return
            got = False
            for beat in self.poll():
                got = True
                delivered += 1
                yield beat
                if beat.get("final") or beat.get("phase") in FINAL_PHASES:
                    return
                if max_beats is not None and delivered >= max_beats:
                    return
            if not got:
                yield None  # idle poll: caller may emit a keepalive
                time.sleep(self.poll_interval)


def stream_events(
    rundir: Union[str, Path],
    stop: Optional[threading.Event] = None,
    timeout: Optional[float] = None,
    poll_interval: float = 0.25,
    since_seq: int = 0,
    keepalive_every: float = 15.0,
    max_beats: Optional[int] = None,
) -> Iterator[bytes]:
    """The ``/runs/<id>/events`` body: SSE frames for one run.

    Emits a ``stage`` event whenever the beat's phase or stage changed,
    a ``beat`` event for every heartbeat, and a ``final`` event (then
    ends) when the run publishes its last beat.
    """
    tailer = HeartbeatTailer(
        rundir, poll_interval=poll_interval, since_seq=since_seq
    )
    last_marker: Optional[tuple] = None
    last_emit = time.monotonic()
    for beat in tailer.beats(stop=stop, timeout=timeout, max_beats=max_beats):
        if beat is None:
            if time.monotonic() - last_emit >= keepalive_every:
                last_emit = time.monotonic()
                yield keepalive()
            continue
        marker = (beat.get("phase"), beat.get("stage"))
        seq = str(beat.get("seq", ""))
        if marker != last_marker:
            last_marker = marker
            yield format_sse(
                {
                    "run_id": beat.get("run_id"),
                    "phase": beat.get("phase"),
                    "stage": beat.get("stage"),
                    "seq": beat.get("seq"),
                },
                event="stage",
                event_id=seq,
            )
        final = bool(beat.get("final") or beat.get("phase") in FINAL_PHASES)
        yield format_sse(beat, event="final" if final else "beat", event_id=seq)
        last_emit = time.monotonic()
