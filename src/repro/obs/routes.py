"""URL routing for the observability server, separated from sockets.

Each route is a pure function from (fleet, path, query) to a
:class:`Response`, so the whole HTTP surface is unit-testable without
binding a port.  The handler in :mod:`~repro.obs.server` only parses
the request line and writes the response out.

Endpoints:

====================  =====================================================
``GET /``             endpoint index (JSON)
``GET /healthz``      server liveness probe
``GET /runs``         fleet listing: registry rows joined with heartbeats
``GET /runs/<id>``    one run's manifest + heartbeat + QoR + registry row
``GET /runs/<id>/history``  the raw heartbeat ring (``?since_seq&limit``)
``GET /runs/<id>/health``   anneal-health analytics (see ``obs.health``)
``GET /runs/<id>/events``   SSE progress stream (``?since_seq&timeout``)
``GET /metrics``      Prometheus scrape page over every live heartbeat
``GET /jobs``         placement-service queue overview (when serving a
                      service root: counts, lease, drain flag, jobs)
``GET /jobs/<id>``    one job's row + directory status + recent events
``GET /jobs/events``  SSE stream of queue events (``?job_id&timeout``)
====================  =====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional

from ..qor.prometheus import render_prometheus_fleet
from .fleet import Fleet
from .health import analyze_health

#: Query-cap on SSE streams so an abandoned client cannot pin a thread
#: forever even if its socket never errors.
MAX_STREAM_SECONDS = 3600.0


@dataclass
class Response:
    """What a route produced: a body or a frame stream, never both."""

    status: int = 200
    content_type: str = "application/json"
    body: bytes = b""
    #: When set, the connection streams these frames (SSE) instead of
    #: sending ``body``; the iterator owns its own termination.
    stream: Optional[Iterator[bytes]] = None
    headers: Dict[str, str] = field(default_factory=dict)


def _json_response(payload: Any, status: int = 200) -> Response:
    body = json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
    return Response(status=status, body=body.encode("utf-8"))


def _error(status: int, message: str) -> Response:
    return _json_response({"error": message, "status": status}, status=status)


def _query_float(query: Dict[str, str], key: str) -> Optional[float]:
    raw = query.get(key)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def _query_int(query: Dict[str, str], key: str) -> Optional[int]:
    value = _query_float(query, key)
    return int(value) if value is not None else None


def handle_request(
    fleet: Fleet,
    path: str,
    query: Optional[Dict[str, str]] = None,
    stop_event=None,
    service=None,
) -> Response:
    """Dispatch one GET request against the fleet.

    ``service`` is the placement-service root (or None): when set, the
    ``/jobs`` routes join the job queue into the same server.
    """
    query = query or {}
    parts = [p for p in path.split("/") if p]

    if not parts:
        endpoints = [
            "/runs",
            "/runs/<id>",
            "/runs/<id>/history",
            "/runs/<id>/health",
            "/runs/<id>/events",
            "/metrics",
            "/healthz",
        ]
        if service is not None:
            endpoints += ["/jobs", "/jobs/<id>", "/jobs/events"]
        return _json_response({"service": "repro-obs", "endpoints": endpoints})
    if parts[0] == "jobs":
        return _handle_jobs(service, parts, query, stop_event)
    if parts == ["healthz"]:
        return _json_response({"ok": True})
    if parts == ["metrics"]:
        text = render_prometheus_fleet(fleet.heartbeats())
        return Response(
            body=text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )
    if parts[0] == "runs":
        if len(parts) == 1:
            return _json_response({"runs": fleet.runs()})
        run_id = parts[1]
        if len(parts) == 2:
            detail = fleet.detail(run_id)
            if detail is None:
                return _error(404, f"unknown run {run_id!r}")
            return _json_response(detail)
        if len(parts) == 3 and parts[2] == "history":
            rundir = fleet.find_rundir(run_id)
            if rundir is None:
                return _error(404, f"unknown run {run_id!r}")
            history = fleet.history(
                run_id,
                since_seq=_query_int(query, "since_seq"),
                limit=_query_int(query, "limit"),
            )
            return _json_response({"run_id": run_id, "history": history})
        if len(parts) == 3 and parts[2] == "health":
            rundir = fleet.find_rundir(run_id)
            if rundir is None:
                return _error(404, f"unknown run {run_id!r}")
            detail = fleet.detail(run_id) or {}
            health = analyze_health(
                fleet.history(run_id),
                beat=detail.get("heartbeat"),
                stale_after=fleet.stale_after,
            )
            health["run_id"] = detail.get("run_id", run_id)
            return _json_response(health)
        if len(parts) == 3 and parts[2] == "events":
            rundir = fleet.find_rundir(run_id)
            if rundir is None:
                return _error(404, f"unknown run {run_id!r}")
            from .sse import stream_events

            timeout = _query_float(query, "timeout")
            timeout = (
                min(timeout, MAX_STREAM_SECONDS)
                if timeout is not None
                else MAX_STREAM_SECONDS
            )
            return Response(
                content_type="text/event-stream",
                headers={"Cache-Control": "no-cache", "X-Accel-Buffering": "no"},
                stream=stream_events(
                    rundir,
                    stop=stop_event,
                    timeout=timeout,
                    since_seq=_query_int(query, "since_seq") or 0,
                    max_beats=_query_int(query, "max_beats"),
                ),
            )
    return _error(404, f"no route for {path!r}")


def _handle_jobs(
    service, parts, query: Dict[str, str], stop_event
) -> Response:
    """The ``/jobs`` routes, backed by the placement-service store."""
    if service is None:
        return _error(404, "no service root configured (serve --service)")
    import sqlite3

    from ..service.events import stream_job_events
    from ..service.store import StoreError
    from ..service.view import ServiceView
    from ..service.worker import ServicePaths

    if parts == ["jobs", "events"]:
        timeout = _query_float(query, "timeout")
        timeout = (
            min(timeout, MAX_STREAM_SECONDS)
            if timeout is not None
            else MAX_STREAM_SECONDS
        )
        return Response(
            content_type="text/event-stream",
            headers={"Cache-Control": "no-cache", "X-Accel-Buffering": "no"},
            stream=stream_job_events(
                ServicePaths(service).events,
                stop=stop_event,
                timeout=timeout,
                job_id=query.get("job_id"),
                from_start=bool(_query_int(query, "from_start")),
                max_events=_query_int(query, "max_events"),
            ),
        )
    try:
        with ServiceView(service, readonly=True) as view:
            if len(parts) == 1:
                return _json_response(view.overview())
            if len(parts) == 2:
                try:
                    doc = view.status(parts[1])
                except StoreError as exc:
                    return _error(404, str(exc))
                doc["events"] = view.history(
                    job_id=doc["job_id"],
                    limit=_query_int(query, "limit") or 50,
                )
                return _json_response(doc)
    except sqlite3.OperationalError as exc:
        return _error(503, f"service store unavailable: {exc}")
    return _error(404, f"no route for /{'/'.join(parts)}")
