"""URL routing for the observability server, separated from sockets.

Each route is a pure function from (fleet, path, query) to a
:class:`Response`, so the whole HTTP surface is unit-testable without
binding a port.  The handler in :mod:`~repro.obs.server` only parses
the request line and writes the response out.

Endpoints:

====================  =====================================================
``GET /``             endpoint index (JSON)
``GET /healthz``      server liveness probe
``GET /runs``         fleet listing: registry rows joined with heartbeats
``GET /runs/<id>``    one run's manifest + heartbeat + QoR + registry row
``GET /runs/<id>/history``  the raw heartbeat ring (``?since_seq&limit``)
``GET /runs/<id>/health``   anneal-health analytics (see ``obs.health``)
``GET /runs/<id>/events``   SSE progress stream (``?since_seq&timeout``)
``GET /runs/<id>/trace``    merged span tree + waterfall of the run's
                      trace files (``?format=html`` renders a Gantt page)
``GET /runs/<id>/profile``  sampling-profiler collapsed stacks
                      (flamegraph input; ``?format=json`` for attribution)
``GET /trace/<trace_id>``   fleet-wide trace lookup: every rundir (and
                      service journal line) stamped with the trace id —
                      a retried job's attempts merge into one document
``GET /metrics``      Prometheus scrape page over every live heartbeat,
                      plus ``repro_jobs``/queue-latency gauges when a
                      service root is configured
``GET /jobs``         placement-service queue overview (when serving a
                      service root: counts, lease, drain flag, jobs)
``GET /jobs/<id>``    one job's row + directory status + recent events
``GET /jobs/events``  SSE stream of queue events (``?job_id&timeout``)
====================  =====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional

from ..qor.prometheus import render_prometheus_fleet
from .fleet import Fleet
from .health import analyze_health

#: Query-cap on SSE streams so an abandoned client cannot pin a thread
#: forever even if its socket never errors.
MAX_STREAM_SECONDS = 3600.0


@dataclass
class Response:
    """What a route produced: a body or a frame stream, never both."""

    status: int = 200
    content_type: str = "application/json"
    body: bytes = b""
    #: When set, the connection streams these frames (SSE) instead of
    #: sending ``body``; the iterator owns its own termination.
    stream: Optional[Iterator[bytes]] = None
    headers: Dict[str, str] = field(default_factory=dict)


def _json_response(payload: Any, status: int = 200) -> Response:
    body = json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
    return Response(status=status, body=body.encode("utf-8"))


def _error(status: int, message: str) -> Response:
    return _json_response({"error": message, "status": status}, status=status)


def _query_float(query: Dict[str, str], key: str) -> Optional[float]:
    raw = query.get(key)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def _query_int(query: Dict[str, str], key: str) -> Optional[int]:
    value = _query_float(query, key)
    return int(value) if value is not None else None


def handle_request(
    fleet: Fleet,
    path: str,
    query: Optional[Dict[str, str]] = None,
    stop_event=None,
    service=None,
) -> Response:
    """Dispatch one GET request against the fleet.

    ``service`` is the placement-service root (or None): when set, the
    ``/jobs`` routes join the job queue into the same server.
    """
    query = query or {}
    parts = [p for p in path.split("/") if p]

    if not parts:
        endpoints = [
            "/runs",
            "/runs/<id>",
            "/runs/<id>/history",
            "/runs/<id>/health",
            "/runs/<id>/events",
            "/runs/<id>/trace",
            "/runs/<id>/profile",
            "/trace/<trace_id>",
            "/metrics",
            "/healthz",
        ]
        if service is not None:
            endpoints += ["/jobs", "/jobs/<id>", "/jobs/events"]
        return _json_response({"service": "repro-obs", "endpoints": endpoints})
    if parts[0] == "jobs":
        return _handle_jobs(service, parts, query, stop_event)
    if parts[0] == "trace" and len(parts) == 2:
        return _handle_fleet_trace(fleet, parts[1], query, service)
    if parts == ["healthz"]:
        return _json_response({"ok": True})
    if parts == ["metrics"]:
        text = render_prometheus_fleet(fleet.heartbeats())
        if service is not None:
            text += _job_metrics(service)
        return Response(
            body=text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )
    if parts[0] == "runs":
        if len(parts) == 1:
            return _json_response({"runs": fleet.runs()})
        run_id = parts[1]
        if len(parts) == 2:
            detail = fleet.detail(run_id)
            if detail is None:
                return _error(404, f"unknown run {run_id!r}")
            return _json_response(detail)
        if len(parts) == 3 and parts[2] == "history":
            rundir = fleet.find_rundir(run_id)
            if rundir is None:
                return _error(404, f"unknown run {run_id!r}")
            history = fleet.history(
                run_id,
                since_seq=_query_int(query, "since_seq"),
                limit=_query_int(query, "limit"),
            )
            return _json_response({"run_id": run_id, "history": history})
        if len(parts) == 3 and parts[2] == "health":
            rundir = fleet.find_rundir(run_id)
            if rundir is None:
                return _error(404, f"unknown run {run_id!r}")
            detail = fleet.detail(run_id) or {}
            health = analyze_health(
                fleet.history(run_id),
                beat=detail.get("heartbeat"),
                stale_after=fleet.stale_after,
            )
            health["run_id"] = detail.get("run_id", run_id)
            return _json_response(health)
        if len(parts) == 3 and parts[2] == "trace":
            rundir = fleet.find_rundir(run_id)
            if rundir is None:
                return _error(404, f"unknown run {run_id!r}")
            from .trace import render_trace_html, trace_document

            doc = trace_document(rundir, run_id=run_id)
            if doc is None:
                return _error(404, f"run {run_id!r} has no trace files")
            if query.get("format") == "html":
                return Response(
                    body=render_trace_html(doc).encode("utf-8"),
                    content_type="text/html; charset=utf-8",
                )
            return _json_response(doc)
        if len(parts) == 3 and parts[2] == "profile":
            rundir = fleet.find_rundir(run_id)
            if rundir is None:
                return _error(404, f"unknown run {run_id!r}")
            from .trace import profile_document

            doc = profile_document(rundir)
            if doc is None:
                return _error(404, f"run {run_id!r} has no profile")
            if query.get("format") == "json":
                return _json_response(doc)
            return Response(
                body=doc["collapsed"].encode("utf-8"),
                content_type="text/plain; charset=utf-8",
            )
        if len(parts) == 3 and parts[2] == "events":
            rundir = fleet.find_rundir(run_id)
            if rundir is None:
                return _error(404, f"unknown run {run_id!r}")
            from .sse import stream_events

            timeout = _query_float(query, "timeout")
            timeout = (
                min(timeout, MAX_STREAM_SECONDS)
                if timeout is not None
                else MAX_STREAM_SECONDS
            )
            return Response(
                content_type="text/event-stream",
                headers={"Cache-Control": "no-cache", "X-Accel-Buffering": "no"},
                stream=stream_events(
                    rundir,
                    stop=stop_event,
                    timeout=timeout,
                    since_seq=_query_int(query, "since_seq") or 0,
                    max_beats=_query_int(query, "max_beats"),
                ),
            )
    return _error(404, f"no route for {path!r}")


def _handle_fleet_trace(
    fleet: Fleet, trace_id: str, query: Dict[str, str], service
) -> Response:
    """``/trace/<trace_id>``: join every artifact of one distributed
    trace — all rundirs recorded under it (a retried job has the
    supervisor's rundir reused across attempts, a resumed CLI run may
    have several) plus the service journal lines it stamped."""
    from .trace import render_trace_html, trace_document

    rundirs = fleet.find_by_trace(trace_id)
    runs = []
    for rundir in rundirs:
        doc = trace_document(rundir, run_id=fleet._rundir_run_id(rundir))
        if doc is not None:
            runs.append(doc)
        else:
            runs.append(
                {
                    "run_id": fleet._rundir_run_id(rundir),
                    "rundir": str(rundir),
                    "processes": [],
                    "span_count": 0,
                }
            )
    journal = []
    if service is not None:
        from ..service.events import read_events
        from ..service.worker import ServicePaths

        for ev in read_events(ServicePaths(service).events):
            tid = ev.get("trace_id")
            if tid and str(tid).startswith(trace_id):
                journal.append(ev)
    if not runs and not journal:
        return _error(404, f"no artifacts for trace {trace_id!r}")
    trace_ids = sorted(
        {t for doc in runs for t in doc.get("trace_ids", ())}
        | {str(ev["trace_id"]) for ev in journal if ev.get("trace_id")}
    )
    doc = {
        "trace_id": trace_ids[0] if len(trace_ids) == 1 else None,
        "trace_ids": trace_ids,
        "runs": runs,
        "journal": journal,
        "span_count": sum(r.get("span_count", 0) for r in runs),
    }
    if query.get("format") == "html":
        return Response(
            body=render_trace_html(doc).encode("utf-8"),
            content_type="text/html; charset=utf-8",
        )
    return _json_response(doc)


#: Queue-latency quantiles exported on ``/metrics``.
_QUEUE_QUANTILES = (0.5, 0.95)


def _job_metrics(service) -> str:
    """The placement-service section of the ``/metrics`` scrape page:
    per-state job gauges and queue-latency quantiles (seconds from
    submit to first worker start, over finished-or-running jobs)."""
    import sqlite3

    from ..service.spec import JOB_STATES
    from ..service.view import ServiceView

    try:
        with ServiceView(service, readonly=True) as view:
            counts = view.counts()
            jobs = view.jobs(limit=1000)
    except (sqlite3.Error, OSError):
        # A store mid-creation degrades the scrape to heartbeats only.
        return ""
    lines = [
        "# HELP repro_jobs Placement-service jobs by lifecycle state.",
        "# TYPE repro_jobs gauge",
    ]
    for state in JOB_STATES:
        lines.append(f'repro_jobs{{state="{state}"}} {counts.get(state, 0)}')
    latencies = sorted(
        job.started - job.created
        for job in jobs
        if job.started is not None and job.started >= job.created
    )
    lines += [
        "# HELP repro_job_queue_latency_seconds Submit-to-start latency"
        " of jobs that have started.",
        "# TYPE repro_job_queue_latency_seconds gauge",
    ]
    for quantile in _QUEUE_QUANTILES:
        if latencies:
            index = min(
                len(latencies) - 1, int(quantile * (len(latencies) - 1) + 0.5)
            )
            value = f"{latencies[index]:.6f}"
        else:
            value = "NaN"
        lines.append(
            f'repro_job_queue_latency_seconds{{quantile="{quantile:g}"}} {value}'
        )
    lines.append(f"repro_job_queue_latency_count {len(latencies)}")
    return "\n".join(lines) + "\n"


def _handle_jobs(
    service, parts, query: Dict[str, str], stop_event
) -> Response:
    """The ``/jobs`` routes, backed by the placement-service store."""
    if service is None:
        return _error(404, "no service root configured (serve --service)")
    import sqlite3

    from ..service.events import stream_job_events
    from ..service.store import StoreError
    from ..service.view import ServiceView
    from ..service.worker import ServicePaths

    if parts == ["jobs", "events"]:
        timeout = _query_float(query, "timeout")
        timeout = (
            min(timeout, MAX_STREAM_SECONDS)
            if timeout is not None
            else MAX_STREAM_SECONDS
        )
        return Response(
            content_type="text/event-stream",
            headers={"Cache-Control": "no-cache", "X-Accel-Buffering": "no"},
            stream=stream_job_events(
                ServicePaths(service).events,
                stop=stop_event,
                timeout=timeout,
                job_id=query.get("job_id"),
                from_start=bool(_query_int(query, "from_start")),
                max_events=_query_int(query, "max_events"),
            ),
        )
    try:
        with ServiceView(service, readonly=True) as view:
            if len(parts) == 1:
                return _json_response(view.overview())
            if len(parts) == 2:
                try:
                    doc = view.status(parts[1])
                except StoreError as exc:
                    return _error(404, str(exc))
                doc["events"] = view.history(
                    job_id=doc["job_id"],
                    limit=_query_int(query, "limit") or 50,
                )
                return _json_response(doc)
    except sqlite3.OperationalError as exc:
        return _error(503, f"service store unavailable: {exc}")
    return _error(404, f"no route for /{'/'.join(parts)}")
