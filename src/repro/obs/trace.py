"""Trace views: span trees, waterfalls, and profiles from recorded runs.

A run that traced itself (``--trace``, or a service worker's automatic
``trace-attempt*.jsonl``) leaves JSONL event files in its rundir.  This
module turns them into the documents the obs server and the ``repro
trace`` CLI serve:

* :func:`span_tree` — nested spans (begin/end pairs joined, unclosed
  spans kept with ``end: null`` so a crashed attempt is still legible);
* :func:`waterfall` — the flat Gantt rows (start/end offsets against
  the trace origin, depth, path) a renderer draws directly;
* :func:`trace_document` — one rundir's merged view: one *process
  section* per trace file (a retried job has one file per attempt),
  plus the trace ids found in them;
* :func:`render_trace_html` — a dependency-free HTML waterfall;
* :func:`profile_document` — the sampling profiler's collapsed stacks
  re-aggregated into the per-stage attribution summary.

Everything reads files tolerantly (torn tails, missing files) — these
are live runs being observed, not archives.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..telemetry.profile import attribution_from_collapsed
from ..telemetry.report import load_events

#: Trace files a rundir may hold: the CLI's ``--trace`` convention is
#: ``trace.jsonl``; service workers write ``trace-attempt-NN.jsonl``.
TRACE_GLOB = "trace*.jsonl"

#: The sampling profiler's output in a rundir.
PROFILE_NAME = "profile.collapsed"

#: Begin-event bookkeeping fields excluded from a span's ``fields``.
_SPAN_META = {
    "ev", "name", "t", "span", "parent", "t_origin", "trace_id", "trace_span",
    "chain",
}


def trace_files(rundir: Union[str, Path]) -> List[Path]:
    """Every trace JSONL in a rundir, oldest attempt first."""
    rundir = Path(rundir)
    if not rundir.is_dir():
        return []
    return sorted(rundir.glob(TRACE_GLOB))


def span_tree(events: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Join begin/end pairs into nested span nodes (roots returned).

    Events with an unknown parent become roots; spans without an end
    (the process died inside them) keep ``end: null`` / ``ok: null``.
    """
    nodes: Dict[Any, Dict[str, Any]] = {}
    roots: List[Dict[str, Any]] = []
    for ev in events:
        kind = ev.get("ev")
        if kind == "span_begin":
            node = {
                "span": ev.get("span"),
                "name": ev.get("name"),
                "start": ev.get("t"),
                "end": None,
                "wall_s": None,
                "cpu_s": None,
                "ok": None,
                "chain": ev.get("chain"),
                "trace_id": ev.get("trace_id"),
                "fields": {
                    k: v for k, v in ev.items() if k not in _SPAN_META
                },
                "events": 0,
                "children": [],
            }
            nodes[ev.get("span")] = node
            parent = nodes.get(ev.get("parent"))
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        elif kind == "span_end":
            node = nodes.get(ev.get("span"))
            if node is not None:
                node["end"] = ev.get("t")
                node["wall_s"] = ev.get("wall_s")
                node["cpu_s"] = ev.get("cpu_s")
                node["ok"] = ev.get("ok")
                if "error" in ev:
                    node["error"] = ev["error"]
        elif kind in ("event", "counter", "gauge"):
            node = nodes.get(ev.get("span"))
            if node is not None:
                node["events"] += 1
    return roots


def waterfall(roots: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Flatten a span tree into ordered Gantt rows.

    ``start``/``end`` are seconds from the trace origin; an unclosed
    span's end is extended to the latest end seen anywhere (so the bar
    shows "still open when the trace stopped", not zero width).
    """
    rows: List[Dict[str, Any]] = []

    def walk(node: Dict[str, Any], depth: int, prefix: str) -> None:
        path = f"{prefix}/{node['name']}" if prefix else str(node["name"])
        rows.append(
            {
                "name": node["name"],
                "path": path,
                "depth": depth,
                "start": node["start"],
                "end": node["end"],
                "wall_s": node["wall_s"],
                "ok": node["ok"],
                "chain": node.get("chain"),
                "events": node["events"],
            }
        )
        for child in sorted(
            node["children"], key=lambda n: (n["start"] is None, n["start"])
        ):
            walk(child, depth + 1, path)

    for root in sorted(roots, key=lambda n: (n["start"] is None, n["start"])):
        walk(root, 0, "")
    horizon = max(
        (r["end"] for r in rows if r["end"] is not None), default=None
    )
    for row in rows:
        if row["end"] is None and row["start"] is not None:
            row["end"] = horizon if horizon is not None else row["start"]
            row["open"] = True
    return rows


def trace_ids_of(events: Sequence[Dict[str, Any]]) -> List[str]:
    """Distinct ``trace_id`` stamps in one event stream (normally one)."""
    seen: List[str] = []
    for ev in events:
        tid = ev.get("trace_id")
        if tid and tid not in seen:
            seen.append(tid)
    return seen


def trace_document(
    rundir: Union[str, Path], run_id: Optional[str] = None
) -> Optional[Dict[str, Any]]:
    """One rundir's merged trace view, or None when it holds no trace.

    One *process section* per trace file: a service job retried after a
    SIGKILL leaves ``trace-attempt-01.jsonl`` and
    ``trace-attempt-02.jsonl`` in the same rundir, and both attempts
    appear here under the same trace id.
    """
    files = trace_files(rundir)
    if not files:
        return None
    processes: List[Dict[str, Any]] = []
    all_trace_ids: List[str] = []
    for path in files:
        events = load_events(path)
        roots = span_tree(events)
        tids = trace_ids_of(events)
        for tid in tids:
            if tid not in all_trace_ids:
                all_trace_ids.append(tid)
        processes.append(
            {
                "file": path.name,
                "events": len(events),
                "trace_ids": tids,
                "spans": roots,
                "waterfall": waterfall(roots),
            }
        )
    return {
        "run_id": run_id,
        "rundir": str(rundir),
        "trace_id": all_trace_ids[0] if len(all_trace_ids) == 1 else None,
        "trace_ids": all_trace_ids,
        "processes": processes,
        "span_count": sum(
            len(p["waterfall"]) for p in processes
        ),
    }


def profile_document(rundir: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """The rundir's sampling profile: raw collapsed stacks plus the
    recomputed per-stage attribution (None when never profiled)."""
    path = Path(rundir) / PROFILE_NAME
    if not path.is_file():
        return None
    text = path.read_text(encoding="utf-8")
    doc = attribution_from_collapsed(text)
    doc["file"] = str(path)
    doc["collapsed"] = text
    return doc


# -- HTML rendering ---------------------------------------------------------

_HTML_HEAD = """<!doctype html>
<html><head><meta charset="utf-8"><title>{title}</title><style>
body {{ font: 13px/1.5 system-ui, sans-serif; margin: 2em; color: #222; }}
h1, h2 {{ font-weight: 600; }} h1 {{ font-size: 1.3em; }} h2 {{ font-size: 1.05em; }}
.meta {{ color: #666; margin-bottom: 1em; }}
.lane {{ position: relative; height: 22px; margin: 1px 0; }}
.label {{ position: absolute; left: 0; width: 28em; overflow: hidden;
  white-space: nowrap; text-overflow: ellipsis; color: #333; }}
.track {{ position: absolute; left: 29em; right: 0; top: 3px; height: 16px;
  background: #f3f3f3; border-radius: 3px; }}
.bar {{ position: absolute; top: 0; height: 16px; border-radius: 3px;
  background: #4c82c3; min-width: 2px; }}
.bar.failed {{ background: #c0392b; }} .bar.open {{ background: #e6a23c; }}
.dur {{ color: #888; font-size: 11px; margin-left: 4px; }}
table {{ border-collapse: collapse; margin: 0.5em 0 1.5em; }}
td, th {{ padding: 2px 10px; text-align: left; border-bottom: 1px solid #eee; }}
</style></head><body>
"""


def _render_waterfall(rows: List[Dict[str, Any]]) -> str:
    starts = [r["start"] for r in rows if r["start"] is not None]
    ends = [r["end"] for r in rows if r["end"] is not None]
    if not starts:
        return "<p class=meta>no spans</p>"
    t0, t1 = min(starts), max(ends) if ends else min(starts)
    total = max(t1 - t0, 1e-9)
    out: List[str] = []
    for row in rows:
        if row["start"] is None:
            continue
        left = 100.0 * (row["start"] - t0) / total
        width = max(100.0 * ((row["end"] or row["start"]) - row["start"]) / total, 0.15)
        classes = "bar"
        if row.get("ok") is False:
            classes += " failed"
        if row.get("open"):
            classes += " open"
        indent = "&nbsp;" * (2 * row["depth"])
        label = html.escape(str(row["name"]))
        if row.get("chain") is not None:
            label += f" <span class=dur>chain {row['chain']}</span>"
        dur = (
            f"{row['wall_s']:.3f}s" if row.get("wall_s") is not None else "open"
        )
        out.append(
            f'<div class=lane><span class=label>{indent}{label}'
            f'<span class=dur>{dur}</span></span>'
            f'<span class=track><span class="{classes}" '
            f'style="left:{left:.2f}%;width:{width:.2f}%"></span></span></div>'
        )
    return "\n".join(out)


def render_trace_html(doc: Dict[str, Any]) -> str:
    """The whole trace document as a standalone HTML waterfall page."""
    title = f"trace {doc.get('trace_id') or doc.get('run_id') or ''}".strip()
    parts = [_HTML_HEAD.format(title=html.escape(title or "trace"))]
    parts.append(f"<h1>{html.escape(title or 'trace')}</h1>")
    meta = []
    if doc.get("run_id"):
        meta.append(f"run {html.escape(str(doc['run_id']))}")
    if doc.get("trace_ids"):
        meta.append(
            "trace " + ", ".join(html.escape(t) for t in doc["trace_ids"])
        )
    parts.append(f"<p class=meta>{' · '.join(meta)}</p>")
    journal = doc.get("journal")
    if journal:
        parts.append("<h2>service journal</h2><table>")
        parts.append("<tr><th>ts</th><th>event</th><th>job</th><th>detail</th></tr>")
        for ev in journal:
            detail = {
                k: v
                for k, v in ev.items()
                if k not in ("ts", "event", "job_id", "trace_id")
            }
            parts.append(
                "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>"
                % (
                    html.escape(f"{ev.get('ts', 0):.3f}"),
                    html.escape(str(ev.get("event"))),
                    html.escape(str(ev.get("job_id") or "")),
                    html.escape(json.dumps(detail, sort_keys=True, default=str)),
                )
            )
        parts.append("</table>")
    sections = doc.get("runs") or [doc]
    for run in sections:
        for proc in run.get("processes", ()):
            head = proc["file"]
            if run is not doc and run.get("run_id"):
                head = f"{run['run_id']} · {head}"
            parts.append(f"<h2>{html.escape(head)}</h2>")
            parts.append(_render_waterfall(proc["waterfall"]))
    parts.append("</body></html>\n")
    return "\n".join(parts)
