"""The fleet model: every run the observability server can see.

A :class:`Fleet` watches a *runs root* (a directory whose children are
rundirs — each holding ``manifest.json`` / ``heartbeat.json`` /
``heartbeat.history.jsonl`` / ``qor.json``) and, optionally, a SQLite
run registry.  It joins the two read-only sources into one live view:

* the **registry** contributes identity and lifecycle (circuit, config
  hash, seed, recorded status) for every run ever registered;
* the **heartbeat** contributes liveness — the freshest beat, its age,
  and the derived state.

States:

``running``
    a non-final beat younger than ``stale_after`` seconds;
``stale``
    a non-final beat older than that — the process is hung, killed
    without trapping, or starved;
``done`` / ``failed`` / ``interrupted``
    a final beat landed (or, for registry-only rows, the recorded
    status);
``pending``
    a rundir (or registry row) with no beat yet.

Everything here reads atomic files and never blocks on — or mutates —
the runs it observes, the same contract ``status``/``watch`` honour.
"""

from __future__ import annotations

import sqlite3
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..qor.heartbeat import history_path, read_heartbeat, read_history
from ..qor.monitor import (  # noqa: F401  (classifier shared with status/watch)
    STALE_AFTER,
    beat_age,
    classify_state,
    load_rundir,
    progress_line,
)
from ..qor.recorder import RunRecorder

#: Registry statuses mapped to fleet states (for rows with no rundir).
REGISTRY_STATES = {
    "ok": "done",
    "truncated": "done",
    "failed": "failed",
    "interrupted": "interrupted",
    "running": "pending",
}


class Fleet:
    """A read-only join of a runs root and an optional registry."""

    def __init__(
        self,
        root: Union[str, Path],
        registry: Optional[Union[str, Path]] = None,
        stale_after: float = STALE_AFTER,
    ) -> None:
        self.root = Path(root)
        self.registry_path = Path(registry) if registry is not None else None
        self.stale_after = stale_after

    # -- discovery ----------------------------------------------------------

    def rundirs(self) -> List[Path]:
        """Every rundir under the root (a child directory holding a
        manifest or heartbeat; the root itself when it is one)."""
        found: List[Path] = []
        if self._is_rundir(self.root):
            found.append(self.root)
        if self.root.is_dir():
            for child in sorted(self.root.iterdir()):
                if child.is_dir() and self._is_rundir(child):
                    found.append(child)
        return found

    @staticmethod
    def _is_rundir(path: Path) -> bool:
        return (path / RunRecorder.MANIFEST_NAME).is_file() or (
            path / RunRecorder.HEARTBEAT_NAME
        ).is_file()

    def find_rundir(self, run_id: str) -> Optional[Path]:
        """The rundir for a run id (exact or unique prefix), matching
        the manifest/heartbeat run id first and the directory name as a
        fallback."""
        exact: Optional[Path] = None
        prefixed: List[Path] = []
        for rundir in self.rundirs():
            rid = self._rundir_run_id(rundir)
            candidates = [c for c in (rid, rundir.name) if c]
            if run_id in candidates:
                exact = rundir
                break
            if any(c.startswith(run_id) for c in candidates):
                prefixed.append(rundir)
        if exact is not None:
            return exact
        if len(prefixed) == 1:
            return prefixed[0]
        return None

    @staticmethod
    def _rundir_run_id(rundir: Path) -> Optional[str]:
        info = load_rundir(rundir)
        manifest = info.get("manifest")
        if manifest and manifest.get("run_id"):
            return str(manifest["run_id"])
        beat = info.get("heartbeat")
        if beat and beat.get("run_id"):
            return str(beat["run_id"])
        return None

    @staticmethod
    def _rundir_trace_id(rundir: Path) -> Optional[str]:
        """The distributed-trace id a rundir was recorded under
        (manifest first, live heartbeat as fallback)."""
        info = load_rundir(rundir)
        manifest = info.get("manifest")
        if manifest and manifest.get("trace_id"):
            return str(manifest["trace_id"])
        beat = info.get("heartbeat")
        if beat and beat.get("trace_id"):
            return str(beat["trace_id"])
        return None

    def find_by_trace(self, trace_id: str) -> List[Path]:
        """Every rundir recorded under a trace id (exact or unique-ish
        prefix, minimum 8 chars to keep prefixes meaningful)."""
        if len(trace_id) < 8:
            return []
        out: List[Path] = []
        for rundir in self.rundirs():
            tid = self._rundir_trace_id(rundir)
            if tid is not None and tid.startswith(trace_id):
                out.append(rundir)
        return out

    # -- registry join ------------------------------------------------------

    def _registry_rows(self) -> Dict[str, Dict[str, Any]]:
        """Registry run rows keyed by run id (empty without a registry)."""
        if self.registry_path is None or not self.registry_path.is_file():
            return {}
        from ..qor.registry import RunRegistry

        try:
            with RunRegistry(self.registry_path, readonly=True) as registry:
                rows = registry.runs(limit=1000)
        except sqlite3.Error:
            # A registry mid-creation (or unreadable) degrades the view
            # to heartbeats only; it must not take the server down.
            return {}
        return {row["run_id"]: row for row in rows}

    # -- views --------------------------------------------------------------

    def summarize(
        self, rundir: Path, registry_row: Optional[Dict[str, Any]] = None,
        now: Optional[float] = None,
    ) -> Dict[str, Any]:
        """The compact ``/runs`` entry for one rundir."""
        now = now if now is not None else time.time()
        info = load_rundir(rundir)
        beat = info.get("heartbeat")
        manifest = info.get("manifest") or {}
        run_id = manifest.get("run_id") or (beat or {}).get("run_id") or rundir.name
        summary: Dict[str, Any] = {
            "run_id": run_id,
            "rundir": str(rundir),
            "state": classify_state(beat, now, self.stale_after),
            "phase": (beat or {}).get("phase"),
            "stage": (beat or {}).get("stage"),
            "seq": (beat or {}).get("seq"),
            "age_seconds": beat_age(beat, now),
            "circuit": (manifest.get("circuit") or {}).get("name")
            or (beat or {}).get("circuit"),
            "trace_id": manifest.get("trace_id") or (beat or {}).get("trace_id"),
            "progress": progress_line(beat) if beat else None,
        }
        for key in ("T", "acceptance", "cost", "eta_seconds", "round",
                    "nets_done", "nets_total", "status"):
            if beat and key in beat:
                summary[key] = beat[key]
        if registry_row is not None:
            summary["registry_status"] = registry_row.get("status")
            summary["seed"] = registry_row.get("seed")
        qor = info.get("qor")
        if qor is not None:
            summary["qor"] = {
                k: qor.get(k)
                for k in ("teil", "chip_area", "overflow", "wall_seconds")
            }
        return summary

    def runs(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """The fleet listing: one summary per rundir, plus registry-only
        rows (runs recorded without a rundir under this root)."""
        now = now if now is not None else time.time()
        registry_rows = self._registry_rows()
        out: List[Dict[str, Any]] = []
        seen: set = set()
        for rundir in self.rundirs():
            row = self.summarize(rundir, now=now)
            rid = row["run_id"]
            row_registry = registry_rows.get(rid)
            if row_registry is not None:
                row["registry_status"] = row_registry.get("status")
                row["seed"] = row_registry.get("seed")
            seen.add(rid)
            out.append(row)
        for rid, reg in registry_rows.items():
            if rid in seen:
                continue
            out.append(
                {
                    "run_id": rid,
                    "rundir": None,
                    "state": REGISTRY_STATES.get(
                        str(reg.get("status")), "pending"
                    ),
                    "phase": None,
                    "stage": None,
                    "seq": None,
                    "age_seconds": None,
                    "circuit": reg.get("circuit"),
                    "progress": None,
                    "registry_status": reg.get("status"),
                    "seed": reg.get("seed"),
                }
            )
        out.sort(key=lambda r: (r["run_id"] or ""))
        return out

    def detail(self, run_id: str) -> Optional[Dict[str, Any]]:
        """The full ``/runs/<id>`` document: manifest + heartbeat + QoR
        + registry row + summary, or None for an unknown id."""
        rundir = self.find_rundir(run_id)
        registry_rows = self._registry_rows()
        if rundir is None:
            # Registry-only run (exact or unique-prefix match).
            matches = [
                rid for rid in registry_rows if rid == run_id
            ] or [rid for rid in registry_rows if rid.startswith(run_id)]
            if len(matches) != 1:
                return None
            reg = registry_rows[matches[0]]
            return {
                "run_id": matches[0],
                "rundir": None,
                "state": REGISTRY_STATES.get(str(reg.get("status")), "pending"),
                "registry": reg,
                "manifest": None,
                "heartbeat": None,
                "qor": None,
            }
        info = load_rundir(rundir)
        summary = self.summarize(rundir)
        doc: Dict[str, Any] = {
            "run_id": summary["run_id"],
            "rundir": str(rundir),
            "state": summary["state"],
            "age_seconds": summary["age_seconds"],
            "manifest": info.get("manifest"),
            "heartbeat": info.get("heartbeat"),
            "qor": info.get("qor"),
            "registry": registry_rows.get(summary["run_id"]),
        }
        return doc

    def history(self, run_id: str, since_seq: Optional[int] = None,
                limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """The run's heartbeat history ring (empty when unknown/absent)."""
        rundir = self.find_rundir(run_id)
        if rundir is None:
            return []
        return read_history(
            history_path(rundir / RunRecorder.HEARTBEAT_NAME),
            since_seq=since_seq,
            limit=limit,
        )

    def heartbeats(self) -> List[Dict[str, Any]]:
        """The freshest beat of every rundir (the ``/metrics`` feed)."""
        beats: List[Dict[str, Any]] = []
        for rundir in self.rundirs():
            beat = read_heartbeat(rundir / RunRecorder.HEARTBEAT_NAME)
            if beat is not None:
                if not beat.get("run_id"):
                    beat = dict(beat, run_id=rundir.name)
                beats.append(beat)
        return beats
