"""ObsClient: the flow's in-process handle on the observability layer.

The flow drivers do not know about rundirs, rings, or servers — they
know the ambient heartbeat.  :class:`ObsClient` is the thin idiom
layer on top of it: named stage transitions and ad-hoc progress events
that land in the heartbeat snapshot *and* the history ring, where the
SSE stream picks them up as ``stage`` events.

The null path costs what the raw heartbeat costs — one attribute read
and a branch — so instrumenting a hot loop with an ObsClient stays
inside the existing ≤3 % telemetry budget.
"""

from __future__ import annotations

from typing import Any, Optional

from ..qor.heartbeat import current_heartbeat


class ObsClient:
    """Pushes flow progress into the ambient (or an explicit) heartbeat.

    ``heartbeat=None`` (the default) resolves the ambient heartbeat at
    every call, so one client built at flow entry stays correct across
    ``use_heartbeat`` blocks — and is free when none is installed.
    """

    def __init__(self, heartbeat: Optional[Any] = None) -> None:
        self._heartbeat = heartbeat

    @property
    def heartbeat(self) -> Any:
        return (
            self._heartbeat
            if self._heartbeat is not None
            else current_heartbeat()
        )

    @property
    def enabled(self) -> bool:
        return bool(self.heartbeat.enabled)

    def stage(self, stage: str, **fields: Any) -> None:
        """Record a flow stage transition: sets the sticky ``stage``
        context (every subsequent beat carries it) and publishes one
        ``flow`` beat immediately so streams see the boundary even when
        the stage's own loop has not beaten yet."""
        heartbeat = self.heartbeat
        if not heartbeat.enabled:
            return
        heartbeat.set_context(stage=stage)
        heartbeat.beat("flow", status=stage, **fields)

    def event(self, phase: str, **fields: Any) -> None:
        """Publish one ad-hoc progress beat under ``phase``."""
        heartbeat = self.heartbeat
        if not heartbeat.enabled:
            return
        heartbeat.beat(phase, **fields)
