"""Live observability: the fleet-wide run monitor server.

``python -m repro serve`` mounts this package over a runs root and an
optional run registry:

* :mod:`~repro.obs.fleet` — the read-only join of rundirs + registry
  (state: running / stale / done / failed / interrupted / pending);
* :mod:`~repro.obs.routes` / :mod:`~repro.obs.server` — the HTTP
  surface (``/runs``, ``/runs/<id>``, ``/runs/<id>/health``,
  ``/runs/<id>/events``, ``/metrics``);
* :mod:`~repro.obs.sse` — Server-Sent-Events streaming of heartbeat
  history;
* :mod:`~repro.obs.health` — anneal-health analytics (Fig.-3
  acceptance trajectory, cost plateau, ETA, divergence);
* :mod:`~repro.obs.client` — :class:`ObsClient`, the flow-side helper
  that pushes stage-change events through the ambient heartbeat.

See ``docs/observability.md``.
"""

from .client import ObsClient
from .fleet import Fleet, beat_age, classify_state
from .health import analyze_health, fig3_ideal_acceptance
from .routes import Response, handle_request
from .server import ObsServer, serve
from .sse import HeartbeatTailer, format_sse, stream_events

__all__ = [
    "Fleet",
    "HeartbeatTailer",
    "ObsClient",
    "ObsServer",
    "Response",
    "analyze_health",
    "beat_age",
    "classify_state",
    "fig3_ideal_acceptance",
    "format_sse",
    "handle_request",
    "serve",
    "stream_events",
]
