"""The observability HTTP server: ``python -m repro serve``.

A stdlib-only (``http.server`` + threads) server exposing the fleet
routes of :mod:`~repro.obs.routes`.  Each connection gets its own
thread (``ThreadingHTTPServer``), which is what lets SSE streams stay
open while ``/runs`` and ``/metrics`` keep answering; the GIL is a
non-issue because every handler is I/O-bound file reading.

This is deliberately the substrate the ROADMAP's placement-as-a-service
job API can mount: the fleet join is the job store view, the SSE stream
is the "heartbeat files become a server-sent progress stream" migration
path, and ``/metrics`` makes the whole fleet scrapeable by a real
Prometheus without the textfile-collector indirection.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union
from urllib.parse import parse_qsl, urlsplit

from ..qor.monitor import STALE_AFTER
from .fleet import Fleet
from .routes import Response, handle_request


class _ObsHandler(BaseHTTPRequestHandler):
    """Thin socket layer over :func:`~repro.obs.routes.handle_request`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-obs"

    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        split = urlsplit(self.path)
        query = dict(parse_qsl(split.query))
        try:
            response = handle_request(
                self.server.fleet,
                split.path,
                query,
                stop_event=self.server.stop_event,
                service=self.server.service,
            )
        except Exception as exc:  # a route bug must not kill the thread
            response = Response(
                status=500,
                body=f'{{"error": "{type(exc).__name__}"}}\n'.encode("utf-8"),
            )
        if response.stream is not None:
            self._send_stream(response)
        else:
            self._send_body(response)

    def _send_body(self, response: Response) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for key, value in response.headers.items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(response.body)

    def _send_stream(self, response: Response) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        for key, value in response.headers.items():
            self.send_header(key, value)
        # SSE: no Content-Length; the connection closes when the
        # stream ends (HTTP/1.1 close-delimited body).
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for frame in response.stream:
                self.wfile.write(frame)
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away: normal SSE lifecycle

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:
            super().log_message(format, *args)


class ObsServer:
    """Owns the listening socket, the fleet, and the server thread."""

    def __init__(
        self,
        root: Union[str, Path],
        registry: Optional[Union[str, Path]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        stale_after: float = STALE_AFTER,
        verbose: bool = False,
        service: Optional[Union[str, Path]] = None,
    ) -> None:
        self.fleet = Fleet(root, registry=registry, stale_after=stale_after)
        self._httpd = ThreadingHTTPServer((host, port), _ObsHandler)
        self._httpd.daemon_threads = True
        self._httpd.fleet = self.fleet
        self._httpd.stop_event = threading.Event()
        self._httpd.verbose = verbose
        self._httpd.service = Path(service) if service is not None else None
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObsServer":
        """Serve in a daemon thread (tests, embedding); returns self."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
            name="repro-obs",
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path)."""
        try:
            self._httpd.serve_forever(poll_interval=0.25)
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def close(self) -> None:
        """Stop accepting, unblock SSE streams, release the socket."""
        self._httpd.stop_event.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ObsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve(
    root: Union[str, Path],
    registry: Optional[Union[str, Path]] = None,
    host: str = "127.0.0.1",
    port: int = 8300,
    stale_after: float = STALE_AFTER,
    verbose: bool = False,
    service: Optional[Union[str, Path]] = None,
) -> int:
    """The blocking CLI entry point (``python -m repro serve``)."""
    server = ObsServer(
        root,
        registry=registry,
        host=host,
        port=port,
        stale_after=stale_after,
        verbose=verbose,
        service=service,
    )
    print(f"repro-obs serving {Path(root).resolve()} at {server.url}")
    print(f"  runs:    {server.url}/runs")
    print(f"  metrics: {server.url}/metrics")
    if service is not None:
        print(f"  jobs:    {server.url}/jobs")
    server.serve_forever()
    return 0
