"""CLI handler for ``python -m repro serve``.

One command, kept in its own module so ``repro.__main__`` can register
it without importing the HTTP stack until the command actually runs.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from ..qor.monitor import STALE_AFTER

DEFAULT_ROOT = "runs"
DEFAULT_PORT = 8300


def add_serve_command(subparsers: argparse._SubParsersAction) -> None:
    """Register ``serve`` on the top-level parser."""
    serve_p = subparsers.add_parser(
        "serve",
        help="observability HTTP server: fleet status, SSE progress "
        "streams, Prometheus /metrics, anneal-health analytics",
    )
    serve_p.add_argument(
        "root",
        nargs="?",
        default=DEFAULT_ROOT,
        help=f"directory of rundirs to watch (default: {DEFAULT_ROOT}/)",
    )
    serve_p.add_argument(
        "--registry",
        default=None,
        help="run registry database to join into /runs "
        "(default: <root>/registry.sqlite when it exists)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=DEFAULT_PORT)
    serve_p.add_argument(
        "--stale-after",
        type=float,
        default=STALE_AFTER,
        metavar="S",
        help="heartbeats older than S seconds count as stale "
        f"(default {STALE_AFTER:.0f})",
    )
    serve_p.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve_p.set_defaults(func=cmd_serve)


def cmd_serve(args: argparse.Namespace) -> int:
    from .server import serve

    registry = args.registry
    if registry is None:
        candidate = Path(args.root) / "registry.sqlite"
        if candidate.is_file():
            registry = candidate
    try:
        return serve(
            args.root,
            registry=registry,
            host=args.host,
            port=args.port,
            stale_after=args.stale_after,
            verbose=args.verbose,
        )
    except KeyboardInterrupt:
        return 0
