"""CLI handler for ``python -m repro serve``.

One command, kept in its own module so ``repro.__main__`` can register
it without importing the HTTP stack until the command actually runs.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from ..qor.monitor import STALE_AFTER

DEFAULT_ROOT = "runs"
DEFAULT_PORT = 8300


def add_serve_command(subparsers: argparse._SubParsersAction) -> None:
    """Register ``serve`` on the top-level parser."""
    serve_p = subparsers.add_parser(
        "serve",
        help="observability HTTP server: fleet status, SSE progress "
        "streams, Prometheus /metrics, anneal-health analytics",
    )
    serve_p.add_argument(
        "root",
        nargs="?",
        default=DEFAULT_ROOT,
        help=f"directory of rundirs to watch (default: {DEFAULT_ROOT}/)",
    )
    serve_p.add_argument(
        "--registry",
        default=None,
        help="run registry database to join into /runs "
        "(default: <root>/registry.sqlite when it exists)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=DEFAULT_PORT)
    serve_p.add_argument(
        "--stale-after",
        type=float,
        default=STALE_AFTER,
        metavar="S",
        help="heartbeats older than S seconds count as stale "
        f"(default {STALE_AFTER:.0f})",
    )
    serve_p.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve_p.add_argument(
        "--service",
        default=None,
        metavar="ROOT",
        help="also expose the placement service under this root at "
        "/jobs (see python -m repro service); the fleet root then "
        "defaults to ROOT/runs and the registry to ROOT/registry.sqlite",
    )
    serve_p.set_defaults(func=cmd_serve)


def cmd_serve(args: argparse.Namespace) -> int:
    from .server import serve

    root = args.root
    if args.service is not None and root == DEFAULT_ROOT:
        candidate = Path(args.service) / "runs"
        if candidate.is_dir() or not Path(root).is_dir():
            root = candidate
    registry = args.registry
    if registry is None:
        for candidate in (
            Path(args.service) / "registry.sqlite" if args.service else None,
            Path(root) / "registry.sqlite",
        ):
            if candidate is not None and candidate.is_file():
                registry = candidate
                break
    try:
        return serve(
            root,
            registry=registry,
            host=args.host,
            port=args.port,
            stale_after=args.stale_after,
            verbose=args.verbose,
            service=args.service,
        )
    except KeyboardInterrupt:
        return 0
