"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``stats <circuit.twmc>``          — netlist statistics and validation
* ``place <circuit.twmc>``          — run the full flow, print the report
* ``generate <suite-name> <out>``   — write a synthetic suite circuit
* ``suite``                         — list the benchmark suite circuits

``place`` options: ``--preset smoke|fast|paper`` (default fast),
``--seed N``, ``--svg out.svg`` (render the final placement),
``--json out.json`` (machine-readable result dump), and ``--report``
(full engineering report instead of the summary).
"""

from __future__ import annotations

import argparse
import sys

from . import TimberWolfConfig, place_and_route
from .bench import CIRCUIT_NAMES, PAPER_STATS, load_circuit, spec_for
from .bench.circuits import generate_circuit
from .netlist import dump, load


def _config(preset: str, seed: int) -> TimberWolfConfig:
    factories = {
        "smoke": TimberWolfConfig.smoke,
        "fast": TimberWolfConfig.fast,
        "paper": TimberWolfConfig.paper,
    }
    try:
        return factories[preset](seed)
    except KeyError:
        raise SystemExit(f"unknown preset {preset!r}; choose smoke, fast, or paper")


def cmd_stats(args: argparse.Namespace) -> int:
    circuit = load(args.circuit)
    print(circuit)
    print(f"  total cell area      {circuit.total_cell_area():.1f}")
    print(f"  total cell perimeter {circuit.total_cell_perimeter():.1f}")
    print(f"  average pin density  {circuit.average_pin_density():.4f}")
    print(f"  macro cells          {len(circuit.macro_cells())}")
    print(f"  custom cells         {len(circuit.custom_cells())}")
    problems = circuit.validate()
    if problems:
        print("netlist problems:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("netlist clean")
    return 0


def cmd_place(args: argparse.Namespace) -> int:
    circuit = load(args.circuit)
    config = _config(args.preset, args.seed)
    result = place_and_route(circuit, config)
    if args.report:
        from .flow.report import full_report

        print(full_report(result))
    else:
        print(result.summary())
    if args.json:
        from .flow.export import export_json

        export_json(result, args.json)
        print(f"wrote {args.json}")
    if args.svg:
        from .viz import write_placement_svg

        regions = None
        if result.refinement is not None and result.refinement.passes:
            regions = result.refinement.final_pass.graph.regions
        write_placement_svg(
            result.state, args.svg, show_regions=regions is not None,
            regions=regions,
        )
        print(f"wrote {args.svg}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    if args.name not in CIRCUIT_NAMES:
        raise SystemExit(
            f"unknown suite circuit {args.name!r}; choose from {CIRCUIT_NAMES}"
        )
    circuit = generate_circuit(spec_for(args.name, trial=args.trial))
    dump(circuit, args.out)
    print(f"wrote {args.out}: {circuit}")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    print(f"{'name':6s} {'cells':>6s} {'nets':>6s} {'pins':>6s}")
    for name, (cells, nets, pins) in PAPER_STATS.items():
        print(f"{name:6s} {cells:6d} {nets:6d} {pins:6d}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="TimberWolfMC reproduction: place and globally route "
        "macro/custom cell circuits.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="netlist statistics and validation")
    p_stats.add_argument("circuit", help="circuit file (.twmc)")
    p_stats.set_defaults(func=cmd_stats)

    p_place = sub.add_parser("place", help="run the full two-stage flow")
    p_place.add_argument("circuit", help="circuit file (.twmc)")
    p_place.add_argument("--preset", default="fast", help="smoke | fast | paper")
    p_place.add_argument("--seed", type=int, default=0)
    p_place.add_argument("--svg", help="write the final placement as SVG")
    p_place.add_argument("--json", help="write the full result as JSON")
    p_place.add_argument(
        "--report", action="store_true", help="print the full engineering report"
    )
    p_place.set_defaults(func=cmd_place)

    p_gen = sub.add_parser(
        "generate", help="write a synthetic benchmark-suite circuit"
    )
    p_gen.add_argument("name", help=f"one of {', '.join(CIRCUIT_NAMES)}")
    p_gen.add_argument("out", help="output path (.twmc)")
    p_gen.add_argument("--trial", type=int, default=0)
    p_gen.set_defaults(func=cmd_generate)

    p_suite = sub.add_parser("suite", help="list the benchmark suite")
    p_suite.set_defaults(func=cmd_suite)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
