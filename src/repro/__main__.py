"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``stats <circuit.twmc>``          — netlist statistics and validation
* ``place <circuit.twmc>``          — run the full flow, print the report
* ``resume <checkpoint.ckpt>``      — continue an interrupted ``place``
* ``generate <suite-name> <out>``   — write a synthetic suite circuit
* ``suite``                         — list the benchmark suite circuits
* ``status <rundir>``               — snapshot of a run's live heartbeat
  (exits 4 when the heartbeat is stale, 5 when the run died)
* ``watch <rundir>``                — follow a run's heartbeat live
* ``qor list|show|compare|gate``    — query the run registry; gate QoR
* ``serve [root]``                  — observability HTTP server: fleet
  status, SSE progress streams, ``/metrics``, anneal-health analytics
* ``service run|submit|status|drain|events`` — fault-tolerant placement
  service: supervised job queue with retry/backoff, timeouts,
  backpressure, and crash recovery via checkpoints (``docs/service.md``)
* ``trace show|export``             — span tree / waterfall / profile of
  a recorded run (``--trace`` JSONL or a rundir), merged across the
  processes that share one distributed trace id

``place`` options: ``--preset smoke|fast|paper`` (default fast),
``--seed N``, ``--svg out.svg`` (render the final placement),
``--json out.json`` (machine-readable result dump), ``--report``
(full engineering report instead of the summary), ``--trace out.jsonl``
(structured telemetry), ``--profile`` (sampling profiler; collapsed
stacks for flamegraphs), ``--checkpoint-dir DIR`` (periodic snapshots +
SIGINT/SIGTERM trapping; an interrupted run exits with status 3 and
prints the checkpoint to resume from), ``--budget-seconds /
--budget-temperatures / --budget-moves`` (graceful early stop), and
``--workers / --chains / --exchange-period`` (the parallel execution
layer: K-chain stage-1 annealing with best-of-K exchange plus the
per-net router fan-out; see ``docs/parallel.md``), and
``--rundir DIR / --registry DB / --metrics-textfile PATH`` (the
observability layer: run manifest + live heartbeat in the rundir, a QoR
row in the SQLite run registry, Prometheus textfile exposition; see
``docs/qor.md``), and ``--core array|object / --cooling table|adaptive``
(stage-1 inner-loop implementation and cooling schedule; see
``docs/performance.md``).

Setting the ``REPRO_FAULTS`` environment variable (e.g.
``router.route_net@3:error``) arms the fault-injection harness for the
whole process — the mechanism the resilience CI job uses to rehearse
failure recovery in a real subprocess.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import TimberWolfConfig, place_and_route, resume_place_and_route
from .bench import CIRCUIT_NAMES, PAPER_STATS, load_circuit, spec_for
from .bench.circuits import generate_circuit
from .netlist import dump, load
from .resilience import (
    Budget,
    CheckpointPolicy,
    FaultInjector,
    FlowInterrupted,
    faults_from_env,
    install_injector,
)

#: Exit status of a run stopped by SIGINT/SIGTERM after checkpointing.
EXIT_INTERRUPTED = 3

#: Exit status of ``resume`` when the checkpoint's circuit hash does not
#: match (the file is valid but belongs to a different circuit).  The
#: service supervisor routes this straight to the dead-letter state —
#: retrying a mismatched checkpoint can never succeed.
EXIT_CHECKPOINT_MISMATCH = 6


def _config(preset: str, seed: int) -> TimberWolfConfig:
    factories = {
        "smoke": TimberWolfConfig.smoke,
        "fast": TimberWolfConfig.fast,
        "paper": TimberWolfConfig.paper,
    }
    try:
        return factories[preset](seed)
    except KeyError:
        raise SystemExit(f"unknown preset {preset!r}; choose smoke, fast, or paper")


def cmd_stats(args: argparse.Namespace) -> int:
    circuit = load(args.circuit)
    print(circuit)
    print(f"  total cell area      {circuit.total_cell_area():.1f}")
    print(f"  total cell perimeter {circuit.total_cell_perimeter():.1f}")
    print(f"  average pin density  {circuit.average_pin_density():.4f}")
    print(f"  macro cells          {len(circuit.macro_cells())}")
    print(f"  custom cells         {len(circuit.custom_cells())}")
    problems = circuit.validate()
    if problems:
        print("netlist problems:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("netlist clean")
    return 0


def _budget(args: argparse.Namespace):
    if not (args.budget_seconds or args.budget_temperatures or args.budget_moves):
        return None
    return Budget(
        wall_seconds=args.budget_seconds,
        temperatures=args.budget_temperatures,
        moves=args.budget_moves,
    )


def _checkpoint(args: argparse.Namespace, run_id=None, trace_id=None):
    if not args.checkpoint_dir:
        return None
    return CheckpointPolicy(
        directory=args.checkpoint_dir,
        every_temperatures=args.checkpoint_every,
        run_id=run_id,
        trace_id=trace_id,
    )


def _recorder(args: argparse.Namespace, run_id=None, trace_id=None):
    """A RunRecorder when observability was requested (``--rundir`` or
    ``--registry``); the rundir defaults to ``runs/<run_id>``."""
    if not (getattr(args, "rundir", None) or getattr(args, "registry", None)):
        return None
    from pathlib import Path

    from .qor import RunRecorder, new_run_id

    if run_id is None:
        run_id = new_run_id()
    rundir = args.rundir if args.rundir else Path("runs") / run_id
    return RunRecorder(
        rundir,
        registry=args.registry or None,
        run_id=run_id,
        metrics_textfile=getattr(args, "metrics_textfile", None),
        heartbeat_interval=getattr(args, "heartbeat_interval", 0.0) or 0.0,
        trace_id=trace_id,
    )


def _tracer(args: argparse.Namespace):
    if not getattr(args, "trace", None):
        return None
    from .telemetry import FileSink, Tracer

    return Tracer(FileSink(args.trace))


def _trace_context(existing_trace_id=None):
    """Resolve this process's distributed-trace hop: continue the trace
    recorded in a checkpoint, else the one a parent process propagated
    via the environment, else mint a fresh one."""
    from .telemetry.context import TraceContext, inherit_or_mint, new_span_id

    if existing_trace_id:
        try:
            return TraceContext(str(existing_trace_id), new_span_id())
        except ValueError:
            pass  # malformed id in an old/foreign checkpoint
    return inherit_or_mint()


def _profiling(args: argparse.Namespace, tracer, rundir=None):
    """Context manager running the sampling profiler around the flow
    (``--profile``); writes collapsed stacks on exit — including an
    interrupted exit — and emits the attribution summary as a trace
    event."""
    import contextlib

    if not getattr(args, "profile", False):
        return contextlib.nullcontext()

    from pathlib import Path

    from .telemetry.profile import SamplingProfiler

    @contextlib.contextmanager
    def session():
        profiler = SamplingProfiler(hz=args.profile_hz)
        profiler.start()
        try:
            yield profiler
        finally:
            profiler.stop()
            out = args.profile_out
            if not out:
                out = (
                    Path(rundir) / "profile.collapsed"
                    if rundir is not None
                    else Path("profile.collapsed")
                )
            profiler.write(out)
            summary = profiler.summary()
            if tracer is not None and tracer.enabled:
                tracer.event(
                    "profile.sampling",
                    samples=summary["samples"],
                    hz=summary["hz"],
                    wall_seconds=summary["wall_seconds"],
                    stages=summary["stages"],
                    kernels=summary["kernels"],
                    hot_frames=summary["hot_frames"],
                )
            print(
                f"wrote {out} ({summary['samples']} samples at "
                f"{args.profile_hz:g} Hz)",
                file=sys.stderr,
            )

    return session()


def _emit_result(result, args: argparse.Namespace) -> int:
    if args.report:
        from .flow.report import full_report

        print(full_report(result))
    else:
        print(result.summary())
    if args.json:
        from .flow.export import export_json

        export_json(result, args.json)
        print(f"wrote {args.json}")
    if args.svg:
        from .viz import write_placement_svg

        regions = None
        if result.refinement is not None and result.refinement.passes:
            regions = result.refinement.final_pass.graph.regions
        write_placement_svg(
            result.state, args.svg, show_regions=regions is not None,
            regions=regions,
        )
        print(f"wrote {args.svg}")
    return 0


def cmd_place(args: argparse.Namespace) -> int:
    from dataclasses import replace

    circuit = load(args.circuit)
    config = _config(args.preset, args.seed)
    try:
        config = replace(
            config,
            core=args.core,
            cooling=args.cooling,
            mover=args.mover,
            batch_moves=args.batch_moves,
        )
    except ValueError as exc:
        # e.g. --mover batched with --core object: a clean one-line
        # refusal, not a dataclass traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.workers != 1 or args.chains != 1 or args.exchange_period != 10:
        from .config import ParallelConfig

        config = replace(
            config,
            parallel=ParallelConfig(
                workers=args.workers,
                chains=args.chains,
                exchange_period=args.exchange_period,
            ),
        )
    ctx = _trace_context()
    recorder = _recorder(args, trace_id=ctx.trace_id)
    tracer = _tracer(args)
    if recorder is not None:
        if tracer is None:
            from .telemetry import Tracer

            tracer = Tracer(recorder.sink)
        else:
            tracer.add_sink(recorder.sink)
        recorder.begin(circuit, config, command="place")
    if tracer is not None:
        tracer.set_context(trace_id=ctx.trace_id, trace_span=ctx.span_id)
    try:
        with _profiling(
            args, tracer, recorder.rundir if recorder is not None else None
        ):
            result = _run_recorded(
                recorder,
                lambda: place_and_route(
                    circuit,
                    config,
                    tracer=tracer,
                    budget=_budget(args),
                    checkpoint=_checkpoint(
                        args,
                        run_id=recorder.run_id if recorder is not None else None,
                        trace_id=ctx.trace_id,
                    ),
                ),
            )
    except FlowInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        if exc.checkpoint_path:
            print(
                f"resume with: python -m repro resume {exc.checkpoint_path}",
                file=sys.stderr,
            )
        return EXIT_INTERRUPTED
    finally:
        if tracer is not None:
            tracer.close()
    if recorder is not None:
        recorder.finish(result)
        print(f"recorded run {recorder.run_id} in {recorder.rundir}")
    return _emit_result(result, args)


def _run_recorded(recorder, run):
    """Run the flow callable with the recorder's heartbeat installed,
    closing out the registry row on interrupt or failure."""
    if recorder is None:
        return run()
    try:
        with recorder.monitor():
            return run()
    except FlowInterrupted as exc:
        recorder.interrupted(
            str(exc.checkpoint_path) if exc.checkpoint_path else None
        )
        raise
    except BaseException as exc:
        recorder.failed(exc)
        raise


def cmd_resume(args: argparse.Namespace) -> int:
    import json as _json

    from .resilience.checkpoint import CheckpointError, CheckpointMismatch

    expect_sha = None
    if getattr(args, "circuit", None):
        from pathlib import Path as _Path

        from .resilience.checkpoint import circuit_fingerprint

        expect_sha = circuit_fingerprint(
            _Path(args.circuit).read_text(encoding="utf-8")
        )
    try:
        return _resume(args, expect_sha)
    except CheckpointMismatch as exc:
        # Machine-readable reason on stderr so a supervisor can parse it
        # and route the job to the dead-letter state instead of retrying.
        print(
            _json.dumps(
                {
                    "error": "checkpoint_mismatch",
                    "checkpoint": str(args.checkpoint),
                    "reason": str(exc),
                }
            ),
            file=sys.stderr,
        )
        return EXIT_CHECKPOINT_MISMATCH
    except CheckpointError as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return 1


def _resume(args: argparse.Namespace, expect_sha) -> int:
    from pathlib import Path as _Path

    from .resilience.checkpoint import read_checkpoint

    _, payload = read_checkpoint(args.checkpoint, expect_circuit_sha=expect_sha)
    if getattr(args, "mover", None):
        # The mover is baked into the checkpoint's config (a batched
        # checkpoint resumes batched automatically); an explicit pin
        # that disagrees is refused cleanly rather than silently
        # ignored or crashed on mid-anneal.
        ckpt_mover = payload.get("config", {}).get("mover", "serial")
        if ckpt_mover != args.mover:
            print(
                f"error: checkpoint was taken by a {ckpt_mover!r} run; "
                f"--mover {args.mover} cannot change the mover "
                "mid-anneal (drop the flag to continue the run as "
                "recorded)",
                file=sys.stderr,
            )
            return 2
    # The continued run keeps the original run's identities: the
    # checkpoint payload carries the run id AND the distributed trace
    # id, so a retry/resume extends the same trace instead of forking.
    ctx = _trace_context(payload.get("trace_id"))
    recorder = None
    if getattr(args, "rundir", None) or getattr(args, "registry", None):
        from .config import TimberWolfConfig as _Config
        from .netlist import loads as _loads

        recorder = _recorder(
            args, run_id=payload.get("run_id"), trace_id=ctx.trace_id
        )
        recorder.begin(
            _loads(payload["circuit_text"]),
            _Config.from_dict(payload["config"]),
            command="resume",
            resumed_from=str(args.checkpoint),
        )
    tracer = _tracer(args)
    if recorder is not None:
        if tracer is None:
            from .telemetry import Tracer

            tracer = Tracer(recorder.sink)
        else:
            tracer.add_sink(recorder.sink)
    if tracer is not None:
        tracer.set_context(trace_id=ctx.trace_id, trace_span=ctx.span_id)
    try:
        with _profiling(
            args, tracer, recorder.rundir if recorder is not None else None
        ):
            result = _run_recorded(
                recorder,
                lambda: resume_place_and_route(
                    args.checkpoint,
                    tracer=tracer,
                    budget=_budget(args),
                    checkpoint=CheckpointPolicy(
                        directory=_Path(args.checkpoint).parent,
                        trace_id=ctx.trace_id,
                    ),
                    expect_circuit_sha=expect_sha,
                ),
            )
    except FlowInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        if exc.checkpoint_path:
            print(
                f"resume with: python -m repro resume {exc.checkpoint_path}",
                file=sys.stderr,
            )
        return EXIT_INTERRUPTED
    finally:
        if tracer is not None:
            tracer.close()
    if recorder is not None:
        recorder.finish(result)
        print(f"recorded run {recorder.run_id} in {recorder.rundir}")
    print(f"resumed from {result.resumed_from}")
    return _emit_result(result, args)


def cmd_generate(args: argparse.Namespace) -> int:
    if args.name not in CIRCUIT_NAMES:
        raise SystemExit(
            f"unknown suite circuit {args.name!r}; choose from {CIRCUIT_NAMES}"
        )
    circuit = generate_circuit(spec_for(args.name, trial=args.trial))
    dump(circuit, args.out)
    print(f"wrote {args.out}: {circuit}")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    print(f"{'name':6s} {'cells':>6s} {'nets':>6s} {'pins':>6s}")
    for name, (cells, nets, pins) in PAPER_STATS.items():
        print(f"{name:6s} {cells:6d} {nets:6d} {pins:6d}")
    return 0


def _add_output_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--svg", help="write the final placement as SVG")
    p.add_argument("--json", help="write the full result as JSON")
    p.add_argument(
        "--report", action="store_true", help="print the full engineering report"
    )
    p.add_argument("--trace", help="write a JSONL telemetry trace")
    p.add_argument(
        "--profile",
        action="store_true",
        help="run the low-overhead sampling profiler alongside the flow "
        "and write collapsed stacks (flamegraph input); see "
        "docs/telemetry.md",
    )
    p.add_argument(
        "--profile-hz",
        type=float,
        default=97.0,
        metavar="HZ",
        help="sampling rate of --profile (default 97)",
    )
    p.add_argument(
        "--profile-out",
        help="where to write the collapsed stacks (default "
        "<rundir>/profile.collapsed, else ./profile.collapsed)",
    )


def _add_observability_options(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--rundir",
        help="write manifest.json / heartbeat.json / qor.json here "
        "(default runs/<run_id> when --registry is given)",
    )
    p.add_argument(
        "--registry",
        help="record the run in this SQLite run registry "
        "(see python -m repro qor)",
    )
    p.add_argument(
        "--metrics-textfile",
        help="also render each heartbeat as Prometheus text format here "
        "(node-exporter textfile collector)",
    )
    p.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.0,
        metavar="S",
        help="minimum seconds between heartbeat writes (default 0 = "
        "every progress boundary)",
    )


def _add_budget_options(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--budget-seconds", type=float, help="wall-clock budget for the run"
    )
    p.add_argument(
        "--budget-temperatures", type=int, help="temperature-step budget"
    )
    p.add_argument("--budget-moves", type=int, help="move-attempt budget")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="TimberWolfMC reproduction: place and globally route "
        "macro/custom cell circuits.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="netlist statistics and validation")
    p_stats.add_argument("circuit", help="circuit file (.twmc)")
    p_stats.set_defaults(func=cmd_stats)

    p_place = sub.add_parser("place", help="run the full two-stage flow")
    p_place.add_argument("circuit", help="circuit file (.twmc)")
    p_place.add_argument("--preset", default="fast", help="smoke | fast | paper")
    p_place.add_argument("--seed", type=int, default=0)
    p_place.add_argument(
        "--core",
        default="array",
        choices=("array", "object"),
        help="stage-1 inner-loop implementation: the struct-of-arrays "
        "kernel (default) or the original object graph; both replay "
        "identically at the same seed",
    )
    p_place.add_argument(
        "--cooling",
        default="table",
        choices=("table", "adaptive"),
        help="cooling schedule: the paper's Tables 1/2 (default) or the "
        "VPR-style acceptance-ratio-driven schedule (see "
        "docs/performance.md)",
    )
    p_place.add_argument(
        "--mover",
        default="serial",
        choices=("serial", "batched"),
        help="stage-1 move driver: one Metropolis move at a time "
        "(default) or PARSAC-style synchronous batched sweeps on the "
        "array core — QoR-parity-gated, not bit-identical to serial "
        "(see docs/performance.md)",
    )
    p_place.add_argument(
        "--batch-moves",
        type=int,
        default=48,
        metavar="K",
        help="proposals per batched sweep (default 48; ignored by the "
        "serial mover)",
    )
    _add_output_options(p_place)
    _add_budget_options(p_place)
    _add_observability_options(p_place)
    p_place.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for multi-chain annealing and the "
        "router fan-out (default 1 = fully serial)",
    )
    p_place.add_argument(
        "--chains",
        type=int,
        default=1,
        help="independent stage-1 annealing chains with best-of-K "
        "exchange (default 1; the result depends on chains, never "
        "on workers)",
    )
    p_place.add_argument(
        "--exchange-period",
        type=int,
        default=10,
        metavar="E",
        help="temperature decrements between chain exchanges (default 10)",
    )
    p_place.add_argument(
        "--checkpoint-dir",
        help="write periodic checkpoints here and trap SIGINT/SIGTERM",
    )
    p_place.add_argument(
        "--checkpoint-every",
        type=int,
        default=10,
        metavar="N",
        help="stage-1 snapshot cadence in temperature steps (default 10)",
    )
    p_place.set_defaults(func=cmd_place)

    p_resume = sub.add_parser(
        "resume", help="continue an interrupted place run from a checkpoint"
    )
    p_resume.add_argument("checkpoint", help="checkpoint file (.ckpt)")
    p_resume.add_argument(
        "--circuit",
        help="pin the checkpoint to this circuit file: a hash mismatch "
        f"exits {EXIT_CHECKPOINT_MISMATCH} with a machine-readable "
        "reason instead of resuming",
    )
    p_resume.add_argument(
        "--mover",
        choices=("serial", "batched"),
        help="pin the expected stage-1 mover: the checkpoint's own "
        "config decides how the run continues, and a disagreeing pin "
        "is refused with a clean error",
    )
    _add_output_options(p_resume)
    _add_budget_options(p_resume)
    _add_observability_options(p_resume)
    p_resume.set_defaults(func=cmd_resume)

    p_gen = sub.add_parser(
        "generate", help="write a synthetic benchmark-suite circuit"
    )
    p_gen.add_argument("name", help=f"one of {', '.join(CIRCUIT_NAMES)}")
    p_gen.add_argument("out", help="output path (.twmc)")
    p_gen.add_argument("--trial", type=int, default=0)
    p_gen.set_defaults(func=cmd_generate)

    p_suite = sub.add_parser("suite", help="list the benchmark suite")
    p_suite.set_defaults(func=cmd_suite)

    from .obs.cli import add_serve_command
    from .qor.cli import add_monitor_commands, add_qor_commands
    from .service.cli import add_service_command
    from .telemetry.trace_cli import add_trace_command

    add_monitor_commands(sub)
    add_qor_commands(sub)
    add_serve_command(sub)
    add_service_command(sub)
    add_trace_command(sub)

    return parser


def main(argv=None) -> int:
    faults = faults_from_env(os.environ)
    if faults:
        install_injector(FaultInjector(faults))
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
