"""Dependency-free SVG rendering of placements and routes."""

from .svg import SvgCanvas, render_placement, write_placement_svg

__all__ = ["SvgCanvas", "render_placement", "write_placement_svg"]
