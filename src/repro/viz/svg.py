"""SVG rendering of placements, channels, and global routes.

Dependency-free: emits plain SVG text.  Useful for eyeballing what the
annealer produced — cells (macro vs custom shaded differently), the
interconnect margins the estimator reserved, the critical regions of the
channel definition, pin positions, and the routed net trees.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..geometry import Rect, TileSet

#: Palette (colorblind-safe-ish, muted).
CELL_FILL = "#7c9ccb"
CUSTOM_FILL = "#c9a86a"
MARGIN_FILL = "#d7e0ee"
REGION_FILL = "#e8b9b5"
CORE_STROKE = "#444444"
PIN_FILL = "#20324c"
ROUTE_STROKE = "#b03a2e"


class SvgCanvas:
    """Accumulates SVG elements in layout coordinates (y flipped on write)."""

    def __init__(self, padding: float = 10.0):
        self.padding = padding
        self._elements: List[str] = []
        self._bounds: Optional[Rect] = None

    def _grow(self, rect: Rect) -> None:
        self._bounds = rect if self._bounds is None else self._bounds.union_bbox(rect)

    def add_rect(
        self,
        rect: Rect,
        fill: str,
        opacity: float = 1.0,
        stroke: Optional[str] = None,
        stroke_width: float = 0.5,
        title: Optional[str] = None,
    ) -> None:
        self._grow(rect)
        attrs = f'fill="{fill}" fill-opacity="{opacity}"'
        if stroke:
            attrs += f' stroke="{stroke}" stroke-width="{stroke_width}"'
        body = f"<title>{_escape(title)}</title>" if title else ""
        self._elements.append(
            f'<rect x="{rect.x1:.2f}" y="{-rect.y2:.2f}" '
            f'width="{rect.width:.2f}" height="{rect.height:.2f}" {attrs}>'
            f"{body}</rect>"
            if body
            else f'<rect x="{rect.x1:.2f}" y="{-rect.y2:.2f}" '
            f'width="{rect.width:.2f}" height="{rect.height:.2f}" {attrs}/>'
        )

    def add_line(
        self,
        a: Tuple[float, float],
        b: Tuple[float, float],
        stroke: str = ROUTE_STROKE,
        width: float = 0.8,
        opacity: float = 0.9,
    ) -> None:
        self._grow(Rect(min(a[0], b[0]), min(a[1], b[1]), max(a[0], b[0]), max(a[1], b[1])))
        self._elements.append(
            f'<line x1="{a[0]:.2f}" y1="{-a[1]:.2f}" x2="{b[0]:.2f}" '
            f'y2="{-b[1]:.2f}" stroke="{stroke}" stroke-width="{width}" '
            f'stroke-opacity="{opacity}"/>'
        )

    def add_dot(
        self, point: Tuple[float, float], radius: float = 1.0, fill: str = PIN_FILL
    ) -> None:
        x, y = point
        self._grow(Rect(x - radius, y - radius, x + radius, y + radius))
        self._elements.append(
            f'<circle cx="{x:.2f}" cy="{-y:.2f}" r="{radius:.2f}" fill="{fill}"/>'
        )

    def add_label(
        self, point: Tuple[float, float], text: str, size: float = 4.0
    ) -> None:
        x, y = point
        self._elements.append(
            f'<text x="{x:.2f}" y="{-y:.2f}" font-size="{size:.1f}" '
            f'text-anchor="middle" dominant-baseline="middle" '
            f'font-family="sans-serif" fill="#222">{_escape(text)}</text>'
        )

    def to_svg(self, scale: float = 1.0) -> str:
        if self._bounds is None:
            return '<svg xmlns="http://www.w3.org/2000/svg"/>'
        b = self._bounds.expanded_uniform(self.padding)
        width = b.width * scale
        height = b.height * scale
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{width:.0f}" height="{height:.0f}" '
            f'viewBox="{b.x1:.2f} {-b.y2:.2f} {b.width:.2f} {b.height:.2f}">\n'
            + "\n".join(self._elements)
            + "\n</svg>\n"
        )


def _escape(text: Optional[str]) -> str:
    if text is None:
        return ""
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def render_placement(
    state,
    show_margins: bool = True,
    show_regions: bool = False,
    regions: Optional[Iterable] = None,
    routes: Optional[Dict[str, Iterable[Tuple[int, int]]]] = None,
    graph=None,
    labels: bool = True,
    scale: float = 1.0,
) -> str:
    """Render a ``PlacementState`` (and optionally channels/routes) to SVG.

    ``regions`` are critical regions; ``routes``/``graph`` draw routed net
    trees as lines between graph-node positions.
    """
    canvas = SvgCanvas()

    # Core outline.
    canvas.add_rect(
        state.core, fill="none", opacity=0.0, stroke=CORE_STROKE, stroke_width=1.0
    )

    # Interconnect margins behind the cells.
    if show_margins:
        for name in state.names:
            for tile in state.expanded_shape(name).tiles:
                canvas.add_rect(tile, MARGIN_FILL, opacity=0.6)

    # Critical regions.
    if show_regions and regions is not None:
        for region in regions:
            canvas.add_rect(region.rect, REGION_FILL, opacity=0.45)

    # Cells.
    for name in state.names:
        cell = state.circuit.cells[name]
        fill = CELL_FILL if cell.is_macro else CUSTOM_FILL
        for tile in state.world_shape(name).tiles:
            canvas.add_rect(
                tile, fill, opacity=0.9, stroke="#2d3e55", stroke_width=0.6,
                title=name,
            )
        if labels:
            bbox = state.world_shape(name).bbox
            c = bbox.center
            canvas.add_label(
                (c.x, c.y), name, size=max(3.0, min(bbox.width, bbox.height) / 5)
            )

    # Routes.
    if routes and graph is not None:
        for edges in routes.values():
            for u, v in edges:
                canvas.add_line(graph.positions[u], graph.positions[v])

    # Pins.
    for name in state.names:
        for pin_name in state.circuit.cells[name].pins:
            canvas.add_dot(state.pin_position(name, pin_name), radius=0.8)

    return canvas.to_svg(scale=scale)


def write_placement_svg(state, path, **kwargs) -> None:
    """Render and write to a file."""
    from pathlib import Path

    Path(path).write_text(render_placement(state, **kwargs))
