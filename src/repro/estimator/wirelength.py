"""A-priori interconnect-length and channel-length estimates.

The dynamic interconnect-area estimator (Eqn 1) needs two quantities that
are unknown before placement:

* ``N_L`` — an estimate of the final total interconnect length.  The
  paper takes this from Sechen's ICCAD-87 average-interconnection-length
  predictor for *optimized* placements (reference 15), which we do not
  have; we substitute a closed-form model of the same regime: an
  optimized net's length scales with the average cell pitch
  sqrt(A_core / N_c) and grows sublinearly with its fanout.

* ``C_L`` — an estimate of the total channel length.  Every channel is
  bordered by exactly two cell edges (or one cell edge and the core
  boundary), so the total channel length is approximately half the total
  cell boundary length plus half the core perimeter.

Only the *scale* of these estimates matters: Cw = (N_L / C_L) * t_s sets
the expected average channel width, and the experiments (Table 3) check
that the resulting placements barely move during stage 2.
"""

from __future__ import annotations

import math

from ..netlist import Circuit

#: Calibration constants of the substituted N_L model (see module
#: docstring).  The coefficient is calibrated so that N_L matches the
#: total length the strip-graph global router actually produces on the
#: synthetic suite (measured ratio ~1.0 on i3/p1); with it, the reserved
#: interconnect area lets >90 % of channels fit their detailed routing
#: (see repro.flow.validate and bench_ablation_estimator).
OPTIMIZED_LENGTH_COEFFICIENT = 4.0
FANOUT_EXPONENT = 0.75


def expected_net_length(num_pins: int, cell_pitch: float) -> float:
    """Expected routed length of an optimized net with ``num_pins`` pins,
    where ``cell_pitch`` is the average center-to-center cell distance.

    A two-pin net between neighbouring cells is about one cell pitch; a
    net's Steiner length grows roughly like fanout**0.75 (the classic
    sub-linear growth of optimized Steiner trees).
    """
    if num_pins < 2:
        return 0.0
    if cell_pitch <= 0:
        raise ValueError("cell pitch must be positive")
    return (
        OPTIMIZED_LENGTH_COEFFICIENT
        * cell_pitch
        * (num_pins - 1) ** FANOUT_EXPONENT
    )


def estimate_total_interconnect_length(
    circuit: Circuit, core_area: float
) -> float:
    """N_L: predicted final total interconnect length of an optimized
    placement occupying ``core_area``."""
    if core_area <= 0:
        raise ValueError("core area must be positive")
    if circuit.num_cells == 0:
        return 0.0
    pitch = math.sqrt(core_area / circuit.num_cells)
    return sum(
        expected_net_length(net.degree, pitch) for net in circuit.nets.values()
    )


def estimate_total_channel_length(circuit: Circuit, core_area: float) -> float:
    """C_L: predicted total channel length.

    Each channel is bordered by exactly two cell edges or by one cell
    edge and the core boundary, so total channel length is about half
    the summed cell perimeter plus half the core perimeter.
    """
    if core_area <= 0:
        raise ValueError("core area must be positive")
    core_perimeter = 4.0 * math.sqrt(core_area)
    return 0.5 * circuit.total_cell_perimeter() + 0.5 * core_perimeter


def average_channel_width(
    circuit: Circuit, core_area: float, track_spacing: float = None
) -> float:
    """Cw of Eqn 1: expected average channel width (N_L / C_L) * t_s."""
    t_s = circuit.track_spacing if track_spacing is None else track_spacing
    n_l = estimate_total_interconnect_length(circuit, core_area)
    c_l = estimate_total_channel_length(circuit, core_area)
    if c_l == 0:
        return 0.0
    return (n_l / c_l) * t_s
