"""Dynamic interconnect-area estimation (§2.2) and core sizing."""

from .core import CorePlan, determine_core, effective_core_area
from .interconnect import InterconnectEstimator, ModulationProfile
from .wirelength import (
    average_channel_width,
    estimate_total_channel_length,
    estimate_total_interconnect_length,
    expected_net_length,
)

__all__ = [
    "CorePlan",
    "determine_core",
    "effective_core_area",
    "InterconnectEstimator",
    "ModulationProfile",
    "average_channel_width",
    "estimate_total_channel_length",
    "estimate_total_interconnect_length",
    "expected_net_length",
]
