"""Target core-area determination (§2.2, "Determining the Core Area").

The wiring area cannot be known before placement, so TimberWolfMC sizes
the core from the dynamic interconnect-area estimator itself: every cell
edge is assumed to need the Eqn 5 expansion (positional modulation at its
maximum, relative pin density at unity), and the core area is the summed
effective cell area.  Because Cw itself depends on the core area (through
N_L and C_L), the computation is a small fixed-point iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..geometry import Rect, TileSet
from ..netlist import Circuit, CustomCell, MacroCell
from ..telemetry import current_tracer
from .interconnect import InterconnectEstimator, ModulationProfile
from .wirelength import average_channel_width


@dataclass(frozen=True)
class CorePlan:
    """The sized core region and the estimator calibrated for it."""

    core: Rect
    cw: float
    estimator: InterconnectEstimator
    total_cell_area: float
    average_effective_cell_area: float

    @property
    def area(self) -> float:
        return self.core.area


def _cell_bbox_dims(circuit: Circuit) -> List[Tuple[float, float]]:
    dims = []
    for cell in circuit.cells.values():
        if isinstance(cell, MacroCell):
            bbox = cell.instances[0].shape.bbox
            dims.append((bbox.width, bbox.height))
        else:
            assert isinstance(cell, CustomCell)
            dims.append(cell.dimensions(cell.aspect.default()))
    return dims


def effective_core_area(circuit: Circuit, edge_expansion: float) -> float:
    """Summed cell area after expanding every cell's bounding box outward
    by ``edge_expansion`` on all four sides."""
    total = 0.0
    for w, h in _cell_bbox_dims(circuit):
        total += (w + 2.0 * edge_expansion) * (h + 2.0 * edge_expansion)
    return total


def determine_core(
    circuit: Circuit,
    aspect_ratio: float = 1.0,
    profile: Optional[ModulationProfile] = None,
    iterations: int = 8,
    slack: float = 1.0,
    cw_scale: float = 1.0,
) -> CorePlan:
    """Size the target core and build the calibrated estimator.

    ``aspect_ratio`` is the desired core height/width.  ``slack``
    multiplies the computed core area (1.0 reproduces the paper's
    sizing; callers can loosen a congested design).  ``cw_scale``
    scales the estimated average channel width; 0.0 disables the
    interconnect-area estimation (the ablation baseline).
    """
    if circuit.num_cells == 0:
        raise ValueError("cannot size a core for an empty circuit")
    if aspect_ratio <= 0:
        raise ValueError("core aspect ratio must be positive")
    if iterations < 1:
        raise ValueError("need at least one sizing iteration")
    if slack <= 0:
        raise ValueError("slack must be positive")
    if cw_scale < 0:
        raise ValueError("cw_scale must be non-negative")
    profile = profile if profile is not None else ModulationProfile()

    tracer = current_tracer()
    total_cell_area = circuit.total_cell_area()
    core_area = 2.0 * total_cell_area  # starting guess
    cw = 0.0
    alpha = 1.0 / profile.mean_modulation
    with tracer.span("estimator.determine_core", cells=circuit.num_cells):
        for pass_index in range(iterations):
            cw = cw_scale * average_channel_width(circuit, core_area)
            # Eqn 5: expansion with the positional modulation at its maximum.
            e_center = 0.5 * alpha * cw * profile.m_x * profile.m_y
            core_area = slack * effective_core_area(circuit, e_center)
            if tracer.enabled:
                tracer.event(
                    "estimator.sizing_pass",
                    iteration=pass_index,
                    cw=round(cw, 4),
                    core_area=round(core_area, 2),
                )

        width = (core_area / aspect_ratio) ** 0.5
        height = width * aspect_ratio
        core = Rect.from_center(0.0, 0.0, width, height)
        estimator = InterconnectEstimator(
            cw=cw,
            core=core,
            profile=profile,
            average_pin_density=circuit.average_pin_density(),
        )
        if tracer.enabled:
            tracer.event(
                "estimator.core_plan",
                width=round(width, 2),
                height=round(height, 2),
                cw=round(cw, 4),
                total_cell_area=round(total_cell_area, 2),
                average_effective_cell_area=round(core_area / circuit.num_cells, 2),
            )
    return CorePlan(
        core=core,
        cw=cw,
        estimator=estimator,
        total_cell_area=total_cell_area,
        average_effective_cell_area=core_area / circuit.num_cells,
    )
