"""The dynamic interconnect-area estimator of §2.2 (Eqns 1-5).

The estimate for the interconnect area charged to a cell edge i is

    e_w(i) = 0.5 * alpha * Cw * fx(x_i) * fy(y_i) * frp(i)        (Eqn 2)

with three factors:

1. *Average net traffic* — Cw = (N_L / C_L) * t_s (Eqn 1), the expected
   average channel width.
2. *Channel position* — channels near the core center are wider; the
   linear tent functions fx and fy (max M at the center, min B at the
   boundary) model the roughly 2x/4x width ratios observed in manual
   layouts, so typically M = 2 and B = 1.
3. *Relative pin density* — an edge with more pins per unit length than
   the circuit average needs proportionally more interconnect space;
   frp(i) = max(1, d_p(i) / D̄p).

alpha (Eqns 3-4) normalizes the positional modulation so that the
*expected* expansion over a uniformly placed edge is 0.5 * Cw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..geometry import Rect


@dataclass(frozen=True)
class ModulationProfile:
    """The tent-shaped positional modulation functions fx and fy."""

    m_x: float = 2.0
    b_x: float = 1.0
    m_y: float = 2.0
    b_y: float = 1.0

    def __post_init__(self) -> None:
        if self.b_x <= 0 or self.b_y <= 0:
            raise ValueError("boundary modulation B must be positive")
        if self.m_x < self.b_x or self.m_y < self.b_y:
            raise ValueError("center modulation M must be at least B")

    @property
    def mean_modulation(self) -> float:
        """Mean of fx(x)*fy(y) over the core (Eqn 3's integral).

        The tent integrals separate; each axis averages to (M + B) / 2,
        giving the paper's ((M+B)/2)**2 when Mx = My and Bx = By.
        """
        return ((self.m_x + self.b_x) / 2.0) * ((self.m_y + self.b_y) / 2.0)

    @property
    def alpha(self) -> float:
        """The normalization constant applied in Eqn 2.

        The paper requires the *expected* value of e_w over a uniformly
        placed edge to equal 0.5 * Cw (with frp = 1), so alpha must be
        the reciprocal of the mean of fx*fy.  (Eqn 4 prints the mean
        itself; used as a multiplier it would inflate the expectation by
        mean**2, so we take the normalization reading.)
        """
        return 1.0 / self.mean_modulation


class InterconnectEstimator:
    """Evaluates the per-edge interconnect expansion for a given core.

    The core region is a rectangle; positions are measured from its
    center, matching the paper's convention of x = 0, y = 0 at the core
    center with width W and height H.
    """

    def __init__(
        self,
        cw: float,
        core: Rect,
        profile: Optional[ModulationProfile] = None,
        average_pin_density: Optional[float] = None,
    ) -> None:
        if cw < 0:
            raise ValueError("Cw must be non-negative")
        if core.width <= 0 or core.height <= 0:
            raise ValueError("core must have positive extent")
        self.cw = cw
        self.core = core
        self.profile = profile if profile is not None else ModulationProfile()
        self.average_pin_density = average_pin_density
        # Hot-path constants: edge_expansion runs four times per
        # annealing move, so the center/extent lookups are hoisted here
        # (identical values and arithmetic to the property chain).
        self._cx = core.center.x
        self._cy = core.center.y
        self._half_w = 0.5 * core.width
        self._half_h = 0.5 * core.height
        p = self.profile
        self._base = 0.5 * p.alpha * self.cw

    # -- positional modulation (factor 2) --------------------------------

    def fx(self, x: float) -> float:
        """Horizontal modulation; x is an absolute coordinate."""
        p = self.profile
        half_w = self._half_w
        rel = abs(x - self._cx)
        if rel > half_w:
            rel = half_w
        return p.m_x - rel * (p.m_x - p.b_x) / half_w

    def fy(self, y: float) -> float:
        """Vertical modulation; y is an absolute coordinate."""
        p = self.profile
        half_h = self._half_h
        rel = abs(y - self._cy)
        if rel > half_h:
            rel = half_h
        return p.m_y - rel * (p.m_y - p.b_y) / half_h

    # -- pin-density modulation (factor 3) ---------------------------------

    def frp(self, pin_density: Optional[float]) -> float:
        """Relative-pin-density modulation: max(1, d_p / D̄p).

        ``pin_density`` is the edge's pins-per-unit-length; None (unknown,
        e.g. a custom cell whose pins are still moving) means 1.0.
        """
        if pin_density is None or not self.average_pin_density:
            return 1.0
        return max(1.0, pin_density / self.average_pin_density)

    # -- the estimate itself ------------------------------------------------

    def edge_expansion(
        self, x: float, y: float, pin_density: Optional[float] = None
    ) -> float:
        """e_w of Eqn 2 for a cell edge whose representative position is
        (x, y): half the expected width of the adjacent channel."""
        return self._base * self.fx(x) * self.fy(y) * self.frp(pin_density)

    def side_expansions(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        d_left: Optional[float],
        d_bottom: Optional[float],
        d_right: Optional[float],
        d_top: Optional[float],
    ) -> "tuple[float, float, float, float]":
        """``edge_expansion`` for all four sides of a cell bbox at once.

        Returns (left, bottom, right, top).  The vertical sides share
        fy(cy) and the horizontal sides share fx(cx), so the four calls
        collapse to four modulation evaluations instead of eight; every
        arithmetic expression is the same as in the single-edge path.
        The bbox is passed as bare floats so the caller need not build a
        Rect for it.
        """
        cx = (x1 + x2) / 2.0
        cy = (y1 + y2) / 2.0
        fy_c = self.fy(cy)
        fx_c = self.fx(cx)
        base = self._base
        return (
            base * self.fx(x1) * fy_c * self.frp(d_left),
            base * fx_c * self.fy(y1) * self.frp(d_bottom),
            base * self.fx(x2) * fy_c * self.frp(d_right),
            base * fx_c * self.fy(y2) * self.frp(d_top),
        )

    def center_expansion(self) -> float:
        """Eqn 5: the expansion with fx, fy at their maxima and frp = 1 —
        used to size the initial core before edge positions are known."""
        return 0.5 * self.profile.alpha * self.cw * self.profile.m_x * self.profile.m_y

    def expected_expansion(self) -> float:
        """The mean of e_w over a uniformly distributed edge with frp = 1.

        By construction of alpha this is exactly 0.5 * Cw — half the
        expected average channel width, since each channel is shared by
        two cell edges.
        """
        return 0.5 * self.cw
