"""TimberWolfMC reproduction.

A from-scratch Python implementation of the macro/custom cell
chip-planning, placement, and global-routing package of:

    Carl Sechen, "Chip-Planning, Placement, and Global Routing of
    Macro/Custom Cell Integrated Circuits Using Simulated Annealing",
    Proc. 25th Design Automation Conference (DAC), 1988.

The public entry points:

* :func:`repro.place_and_route` — run the full two-stage flow.
* :class:`repro.TimberWolfConfig` — all tunables, with presets.
* :mod:`repro.netlist` — build or parse circuits.
* :mod:`repro.bench` — the synthetic 9-circuit benchmark suite.
"""

from .config import TimberWolfConfig
from .flow import TimberWolfResult, place_and_route

__version__ = "1.0.0"

__all__ = ["TimberWolfConfig", "TimberWolfResult", "place_and_route", "__version__"]
