"""TimberWolfMC reproduction.

A from-scratch Python implementation of the macro/custom cell
chip-planning, placement, and global-routing package of:

    Carl Sechen, "Chip-Planning, Placement, and Global Routing of
    Macro/Custom Cell Integrated Circuits Using Simulated Annealing",
    Proc. 25th Design Automation Conference (DAC), 1988.

The public entry points:

* :func:`repro.place_and_route` — run the full two-stage flow.
* :class:`repro.TimberWolfConfig` — all tunables, with presets.
* :mod:`repro.netlist` — build or parse circuits.
* :mod:`repro.bench` — the synthetic 9-circuit benchmark suite.
* :mod:`repro.telemetry` — structured tracing, metrics, and the trace
  report generator (:class:`repro.Tracer`, :class:`repro.FileSink`, ...).
* :mod:`repro.resilience` — checkpoint/resume, run budgets, interrupt
  trapping, stage supervision, and the fault-injection harness
  (:class:`repro.Budget`, :class:`repro.CheckpointPolicy`,
  :func:`repro.resume_place_and_route`, ...).
* :mod:`repro.parallel` — the process-pool execution layer: K-chain
  stage-1 annealing with best-of-K exchange and the per-net router
  fan-out (:class:`repro.ParallelConfig`, :func:`repro.spawn_seed`).
* :mod:`repro.qor` — cross-run observability: run manifests, the SQLite
  run registry, live heartbeats, and QoR regression gating
  (:class:`repro.RunRecorder`, :class:`repro.RunRegistry`,
  :func:`repro.gate_records`).
"""

from .config import ParallelConfig, TimberWolfConfig
from .flow import TimberWolfResult, place_and_route, resume_place_and_route
from .resilience import (
    Budget,
    CheckpointError,
    CheckpointPolicy,
    FlowInterrupted,
)
from .parallel.seeds import spawn_seed
from .qor import (
    GateThresholds,
    RunRecorder,
    RunRegistry,
    compare_records,
    gate_records,
)
from .telemetry import FileSink, MemorySink, MetricsRegistry, NullSink, Tracer, use_tracer

__version__ = "1.4.0"

__all__ = [
    "ParallelConfig",
    "spawn_seed",
    "TimberWolfConfig",
    "TimberWolfResult",
    "place_and_route",
    "resume_place_and_route",
    "Budget",
    "CheckpointError",
    "CheckpointPolicy",
    "FlowInterrupted",
    "FileSink",
    "GateThresholds",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "RunRecorder",
    "RunRegistry",
    "Tracer",
    "compare_records",
    "gate_records",
    "use_tracer",
    "__version__",
]
