"""Synthetic macro/custom cell circuit generation.

The paper's nine test circuits are proprietary (AMD, Intel, HP,
Gould-AMI); this module generates deterministic synthetic circuits with
matching *published statistics* — cell, net, and pin counts — plus the
structural features the algorithms must handle: a spread of cell sizes,
a fraction of rectilinear (L/T-shaped) cells, custom cells with movable
pins and aspect-ratio freedom, multi-instance macros, and electrically
equivalent pins.

Determinism: every generator decision flows from the spec's seed, so a
given spec always yields byte-identical circuits.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..geometry import BOTTOM, LEFT, RIGHT, TOP, TileSet
from ..netlist import (
    Circuit,
    ContinuousAspectRatio,
    CustomCell,
    MacroCell,
    MacroInstance,
    Pin,
    PinKind,
)

_SIDES = (LEFT, RIGHT, BOTTOM, TOP)


@dataclass(frozen=True)
class CircuitSpec:
    """Parameters of a synthetic circuit."""

    name: str
    num_cells: int
    num_nets: int
    num_pins: int
    seed: int = 0
    #: Fraction of cells that are custom (movable pins, free aspect ratio).
    custom_fraction: float = 0.0
    #: Fraction of *macro* cells with a rectilinear (L/T) outline.
    rectilinear_fraction: float = 0.25
    #: Fraction of macro cells offered with a second instance.
    multi_instance_fraction: float = 0.1
    #: Mean cell edge, in grid units (edges are log-normal around this).
    mean_cell_edge: float = 40.0
    track_spacing: float = 1.0

    def __post_init__(self) -> None:
        if self.num_cells < 1:
            raise ValueError("need at least one cell")
        if self.num_pins < 2 * self.num_nets:
            raise ValueError("every net needs at least two pins")
        if self.num_pins < self.num_cells:
            raise ValueError("every cell needs at least one pin")
        for frac in (
            self.custom_fraction,
            self.rectilinear_fraction,
            self.multi_instance_fraction,
        ):
            if not 0.0 <= frac <= 1.0:
                raise ValueError("fractions must lie in [0, 1]")


def generate_circuit(spec: CircuitSpec) -> Circuit:
    """Build the synthetic circuit for a spec (deterministic)."""
    rng = random.Random(spec.seed)

    # 1. Cell dimensions: log-normal edges around the mean.
    dims = []
    for _ in range(spec.num_cells):
        w = _lognormal_edge(rng, spec.mean_cell_edge)
        h = _lognormal_edge(rng, spec.mean_cell_edge)
        dims.append((w, h))

    # 2. Distribute pins over cells proportionally to perimeter.
    pin_counts = _distribute_pins(spec, dims, rng)

    # 3. Partition pin slots into nets.
    net_sizes = _net_sizes(spec, rng)
    net_of_slot = _assign_slots_to_nets(spec, pin_counts, net_sizes, rng)

    # 4. Materialize the cells.
    num_custom = int(round(spec.custom_fraction * spec.num_cells))
    custom_ids = set(rng.sample(range(spec.num_cells), num_custom))
    cells = []
    slot = 0
    for ci in range(spec.num_cells):
        w, h = dims[ci]
        nets = [net_of_slot[slot + k] for k in range(pin_counts[ci])]
        slot += pin_counts[ci]
        if ci in custom_ids:
            cells.append(_make_custom(spec, ci, w, h, nets, rng))
        else:
            cells.append(_make_macro(spec, ci, w, h, nets, rng))
    return Circuit(spec.name, cells, track_spacing=spec.track_spacing)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _lognormal_edge(rng: random.Random, mean_edge: float) -> float:
    edge = rng.lognormvariate(math.log(mean_edge), 0.35)
    return float(max(4, round(edge)))


def _distribute_pins(
    spec: CircuitSpec, dims: List[Tuple[float, float]], rng: random.Random
) -> List[int]:
    weights = [2.0 * (w + h) for w, h in dims]
    total_w = sum(weights)
    counts = [max(1, int(spec.num_pins * w / total_w)) for w in weights]
    # Fix rounding drift while keeping at least one pin per cell.
    diff = spec.num_pins - sum(counts)
    order = list(range(spec.num_cells))
    rng.shuffle(order)
    i = 0
    while diff != 0 and order:
        ci = order[i % len(order)]
        if diff > 0:
            counts[ci] += 1
            diff -= 1
        elif counts[ci] > 1:
            counts[ci] -= 1
            diff += 1
        i += 1
    return counts


def _net_sizes(spec: CircuitSpec, rng: random.Random) -> List[int]:
    """Net degrees: mostly 2-3 pins with a geometric tail, summing to
    num_pins across num_nets nets."""
    sizes = [2] * spec.num_nets
    extra = spec.num_pins - 2 * spec.num_nets
    while extra > 0:
        net = rng.randrange(spec.num_nets)
        # Favor small increments; occasionally grow a big net.
        bump = 1 if rng.random() < 0.8 else rng.randint(2, 5)
        bump = min(bump, extra)
        sizes[net] += bump
        extra -= bump
    return sizes


def _assign_slots_to_nets(
    spec: CircuitSpec,
    pin_counts: List[int],
    net_sizes: List[int],
    rng: random.Random,
) -> List[str]:
    """Assign each pin slot a net name so every net spans >= 2 cells.

    Nets draw their member cells weighted by each cell's remaining slot
    budget, forcing the first two members onto distinct cells; an endgame
    repair pass fixes any net that the final slots squeezed onto a single
    cell by trading one member with a multi-cell net.
    """
    num_cells = len(pin_counts)
    remaining = list(pin_counts)
    # Larger nets first so the endgame only has to place small ones.
    order = sorted(range(len(net_sizes)), key=lambda ni: -net_sizes[ni])
    members: List[List[int]] = [[] for _ in net_sizes]

    def draw(exclude: Optional[int]) -> int:
        population = [
            ci
            for ci in range(num_cells)
            if remaining[ci] > 0 and ci != exclude
        ]
        if not population:
            population = [ci for ci in range(num_cells) if remaining[ci] > 0]
        weights = [remaining[ci] for ci in population]
        return rng.choices(population, weights=weights, k=1)[0]

    for ni in order:
        for k in range(net_sizes[ni]):
            exclude = members[ni][0] if k == 1 else None
            cell = draw(exclude)
            members[ni].append(cell)
            remaining[cell] -= 1

    # Repair single-cell nets by trading a member with a net that spans
    # three or more distinct cells (or loses nothing by giving one up).
    for ni, cells in enumerate(members):
        if len(set(cells)) >= 2:
            continue
        lonely = cells[0]
        for nj, other in enumerate(members):
            if ni == nj:
                continue
            distinct = set(other)
            donors = [c for c in distinct if c != lonely]
            if not donors:
                continue
            donor = donors[0]
            # Swap only if the donor net keeps >= 2 distinct cells after
            # giving up one occurrence of `donor` and gaining `lonely`.
            after = list(other)
            after.remove(donor)
            after.append(lonely)
            if len(set(after)) < 2:
                continue
            members[nj] = after
            cells[0] = donor
            break
        else:
            raise RuntimeError(
                f"could not build a connected net assignment for {spec.name!r}"
            )

    # Materialize per-cell slot lists in cell order.
    per_cell: List[List[str]] = [[] for _ in range(num_cells)]
    for ni, cells in enumerate(members):
        for cell in cells:
            per_cell[cell].append(f"n{ni}")
    for ci in range(num_cells):
        rng.shuffle(per_cell[ci])
        assert len(per_cell[ci]) == pin_counts[ci]
    out: List[str] = []
    for ci in range(num_cells):
        out.extend(per_cell[ci])
    return out


def _perimeter_position(
    rng: random.Random, w: float, h: float
) -> Tuple[str, Tuple[float, float]]:
    """A random (side, cell-local offset) on a w x h rectangle boundary."""
    side = rng.choice(_SIDES)
    if side in (LEFT, RIGHT):
        x = -w / 2.0 if side == LEFT else w / 2.0
        y = rng.uniform(-h / 2.0, h / 2.0)
    else:
        y = -h / 2.0 if side == BOTTOM else h / 2.0
        x = rng.uniform(-w / 2.0, w / 2.0)
    return side, (round(x, 1), round(y, 1))


def _make_macro(
    spec: CircuitSpec,
    ci: int,
    w: float,
    h: float,
    nets: List[str],
    rng: random.Random,
) -> MacroCell:
    name = f"{spec.name}_c{ci}"
    # When a cell carries several pins of the same net they are marked as
    # one electrically-equivalent class — the router may use any of them
    # (exactly the P3A/P3B situation of Figure 10).
    equiv_class: Dict[str, str] = {}
    for net in nets:
        if nets.count(net) > 1 and net not in equiv_class:
            equiv_class[net] = f"eq_{net}"
    shape = _macro_shape(spec, w, h, rng)
    pins: List[Pin] = []
    for k, net in enumerate(nets):
        _, offset = _perimeter_position(rng, w, h)
        pins.append(
            Pin(
                f"p{k}",
                net,
                PinKind.FIXED,
                offset=_snap_to_boundary(shape, offset),
                equiv_class=equiv_class.get(net),
            )
        )
    # Clamp pin offsets onto the (possibly rectilinear) shape's bbox edge.
    instances = [MacroInstance("default", shape)]
    if rng.random() < spec.multi_instance_fraction:
        # A second instance: same area, different aspect ratio.
        alt = TileSet.rectangle(round(w * 1.3), max(4, round(h / 1.3)))
        offsets = {
            p.name: _clamp_to_bbox(p.offset, alt.bbox) for p in pins
        }
        instances.append(MacroInstance("alt", alt, offsets))
    return MacroCell(name, pins, instances)


def _macro_shape(
    spec: CircuitSpec, w: float, h: float, rng: random.Random
) -> TileSet:
    if rng.random() >= spec.rectilinear_fraction or w < 8 or h < 8:
        return TileSet.rectangle(w, h)
    notch_w = max(2, round(w * rng.uniform(0.25, 0.45)))
    notch_h = max(2, round(h * rng.uniform(0.25, 0.45)))
    if rng.random() < 0.5:
        return TileSet.l_shape(w, h, notch_w, notch_h)
    stem = max(2, round(w * rng.uniform(0.3, 0.5)))
    return TileSet.t_shape(w, h, stem, notch_h)


def _snap_to_boundary(shape: TileSet, offset: Tuple[float, float]) -> Tuple[float, float]:
    """Project a point onto the nearest boundary edge of a tile union, so
    pins of rectilinear cells sit on the actual outline (not in a notch)."""
    x, y = offset
    best = None
    best_d = None
    for e in shape.boundary_edges():
        if e.is_vertical:
            px, py = e.position, min(max(y, e.lo), e.hi)
        else:
            px, py = min(max(x, e.lo), e.hi), e.position
        d = abs(px - x) + abs(py - y)
        if best_d is None or d < best_d:
            best_d = d
            best = (px, py)
    assert best is not None
    return best


def _clamp_to_bbox(offset, bbox) -> Tuple[float, float]:
    x = min(max(offset[0], bbox.x1), bbox.x2)
    y = min(max(offset[1], bbox.y1), bbox.y2)
    return (x, y)


def _make_custom(
    spec: CircuitSpec,
    ci: int,
    w: float,
    h: float,
    nets: List[str],
    rng: random.Random,
) -> CustomCell:
    name = f"{spec.name}_c{ci}"
    pins: List[Pin] = []
    group_counter = 0
    k = 0
    while k < len(nets):
        roll = rng.random()
        if roll < 0.15 and k + 1 < len(nets):
            # A two-pin group restricted to a pair of opposite edges.
            sides = frozenset(rng.choice(((LEFT, RIGHT), (BOTTOM, TOP))))
            gname = f"g{group_counter}"
            group_counter += 1
            for j in range(2):
                pins.append(
                    Pin(f"p{k}", nets[k], PinKind.GROUP, group=gname, sides=sides)
                )
                k += 1
        elif roll < 0.25 and k + 2 < len(nets):
            # A three-pin ordered sequence on one edge.
            side = frozenset({rng.choice(_SIDES)})
            gname = f"s{group_counter}"
            group_counter += 1
            for j in range(3):
                pins.append(
                    Pin(
                        f"p{k}",
                        nets[k],
                        PinKind.SEQUENCE,
                        group=gname,
                        sequence_index=j,
                        sides=side,
                    )
                )
                k += 1
        elif roll < 0.35:
            # A fixed pin (committed during custom-cell design).
            _, offset = _perimeter_position(rng, w, h)
            pins.append(Pin(f"p{k}", nets[k], PinKind.FIXED, offset=offset))
            k += 1
        else:
            # A loose uncommitted pin allowed on any edge.
            pins.append(Pin(f"p{k}", nets[k], PinKind.EDGE))
            k += 1
    area = float(w * h)
    return CustomCell(
        name,
        pins,
        area=area,
        aspect=ContinuousAspectRatio(0.5, 2.0),
        sites_per_edge=8,
        pin_pitch=spec.track_spacing,
    )
