"""The nine-circuit benchmark suite of Tables 3-4.

Each entry reproduces the published cell/net/pin counts of one of the
paper's industrial circuits.  Circuits l1, p1, d1, d2, d3 were manual
layouts of macro designs; i2/i3 came from a place-and-route system; i1
from a resistive-network flow; and the chip-planning aspects (custom
cells) are exercised by giving some circuits a custom-cell fraction.
Seeds derive from the circuit name, so the suite is fully deterministic.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Tuple

from ..netlist import Circuit
from .circuits import CircuitSpec, generate_circuit

#: Published statistics: name -> (cells, nets, pins) from Tables 3-4.
PAPER_STATS: Dict[str, Tuple[int, int, int]] = {
    "i1": (33, 121, 452),
    "p1": (11, 83, 309),
    "x1": (10, 267, 762),
    "i2": (23, 127, 577),
    "i3": (18, 38, 102),
    "l1": (62, 570, 4309),
    "d2": (20, 656, 1776),
    "d1": (17, 288, 837),
    "d3": (17, 136, 665),
}

#: Published Table-4 results: name -> (TEIL, (x, y) dims, TEIL red %, area red %).
PAPER_TABLE4: Dict[str, Tuple[float, Tuple[float, float], float, Optional[float]]] = {
    "i1": (7431, (236, 223), 26, 14),
    "p1": (12306, (293, 294), 8, 18),
    "x1": (60326, (875, 744), 11, 15),
    "i2": (121386, (2873, 2751), 49, None),
    "i3": (7043, (644, 699), 46, 56),
    "l1": (254063, (1084, 1042), 19, 50),
    "d2": (419608, (1355, 1433), 13, 4),
    "d1": (37365, (245, 305), 23, None),
    "d3": (325457, (3398, 3298), 29, 31),
}

#: Published Table-3 results: name -> (trials, avg TEIL red %, avg area red %).
PAPER_TABLE3: Dict[str, Tuple[int, float, float]] = {
    "i1": (5, 5.8, 3.0),
    "p1": (6, 2.0, -9.2),
    "x1": (4, 4.0, 2.5),
    "i2": (5, -1.0, -3.8),
    "i3": (2, 10.5, -0.5),
    "l1": (4, 2.5, -0.5),
    "d2": (4, 12.7, 8.5),
    "d1": (4, 0.5, 8.25),
    "d3": (2, 0.5, -1.0),
}

#: Chip-planning circuits get a custom-cell fraction (the paper's mixed
#: macro/custom capability); pure macro designs stay at zero.
CUSTOM_FRACTIONS: Dict[str, float] = {
    "i1": 0.0,
    "p1": 0.2,
    "x1": 0.0,
    "i2": 0.15,
    "i3": 0.0,
    "l1": 0.1,
    "d2": 0.0,
    "d1": 0.2,
    "d3": 0.0,
}

CIRCUIT_NAMES: List[str] = list(PAPER_STATS)

#: Subset small enough for quick benchmark runs (nets and pins bounded).
SMALL_CIRCUITS: List[str] = ["p1", "x1", "i3", "d1", "d3"]


def _seed_for(name: str, trial: int = 0) -> int:
    return zlib.crc32(f"{name}:{trial}".encode()) & 0x7FFFFFFF


def spec_for(name: str, trial: int = 0) -> CircuitSpec:
    """The generation spec for one of the suite circuits."""
    try:
        cells, nets, pins = PAPER_STATS[name]
    except KeyError:
        raise KeyError(
            f"unknown suite circuit {name!r}; choose from {CIRCUIT_NAMES}"
        ) from None
    # Size cells to carry their pins: the paper's circuits have cell
    # perimeters comfortably larger than pin-count * pitch (x1's ten
    # cells carry 762 pins on an 875 x 744 chip).  Without this, pin-dense
    # circuits get physically impossible pin pitches and the Eqn-22
    # channel widths rightly dwarf the cells.
    mean_edge = max(24.0, 3.0 * pins / cells)
    return CircuitSpec(
        name=name,
        num_cells=cells,
        num_nets=nets,
        num_pins=pins,
        seed=_seed_for(name, trial),
        custom_fraction=CUSTOM_FRACTIONS[name],
        mean_cell_edge=mean_edge,
    )


def load_circuit(name: str, trial: int = 0) -> Circuit:
    """Generate one suite circuit (deterministic per (name, trial))."""
    return generate_circuit(spec_for(name, trial))


def load_suite(names: Optional[List[str]] = None) -> Dict[str, Circuit]:
    """Generate several suite circuits at once."""
    names = names if names is not None else CIRCUIT_NAMES
    return {name: load_circuit(name) for name in names}
