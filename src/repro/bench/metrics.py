"""Measurement helpers shared by the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence


def reduction_pct(baseline: float, ours: float) -> float:
    """Percentage reduction of ``ours`` versus ``baseline`` (positive =
    we are smaller), the convention of Tables 3-4."""
    if baseline == 0:
        return 0.0
    return 100.0 * (1.0 - ours / baseline)


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of an empty sequence")
    return sum(values) / len(values)


@dataclass
class SeriesStats:
    """Aggregate of repeated trials of one measurement."""

    values: List[float]

    @property
    def mean(self) -> float:
        return mean(self.values)

    @property
    def min(self) -> float:
        return min(self.values)

    @property
    def max(self) -> float:
        return max(self.values)

    @property
    def count(self) -> int:
        return len(self.values)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a plain-text table (the benches print paper-style tables)."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.rjust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    if value is None:
        return "-"
    return str(value)
