"""Benchmark circuits (the synthetic nine-circuit suite) and metrics."""

from .circuits import CircuitSpec, generate_circuit
from .metrics import SeriesStats, format_table, mean, reduction_pct
from .suite import (
    CIRCUIT_NAMES,
    CUSTOM_FRACTIONS,
    PAPER_STATS,
    PAPER_TABLE3,
    PAPER_TABLE4,
    SMALL_CIRCUITS,
    load_circuit,
    load_suite,
    spec_for,
)

__all__ = [
    "CircuitSpec",
    "generate_circuit",
    "SeriesStats",
    "format_table",
    "mean",
    "reduction_pct",
    "CIRCUIT_NAMES",
    "CUSTOM_FRACTIONS",
    "PAPER_STATS",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "SMALL_CIRCUITS",
    "load_circuit",
    "load_suite",
    "spec_for",
]
