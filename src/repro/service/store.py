"""The persistent job queue, backed by the run-registry SQLite file.

:class:`JobStore` is the small interface the supervisor, the CLI, and
the observability view program against; :class:`SqliteJobStore` is the
implementation, adding a ``jobs`` table (and a ``service_meta``
key-value table for the drain flag and the supervisor lease) to the
same database file the :class:`~repro.qor.registry.RunRegistry` uses —
one file holds the whole service state, so a supervisor restart, a
monitor, and every worker see a single consistent world.

Concurrency: the file is shared by the supervisor, N workers (their
``RunRecorder`` registry writes), submitters, and read-only monitors.
All connections go through the registry's WAL + busy-timeout
configuration, every read-modify-write runs inside one ``BEGIN
IMMEDIATE`` transaction (so a submission's backpressure check and its
insert are atomic), and writes retry on a residually locked database.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..qor.registry import configure_connection, retry_locked
from .policy import BackpressurePolicy, QueueFull
from .spec import JOB_STATES, Job, JobSpec, new_job_id

_JOBS_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id TEXT PRIMARY KEY,
    created REAL NOT NULL,
    updated REAL NOT NULL,
    tenant TEXT NOT NULL DEFAULT 'default',
    priority INTEGER NOT NULL DEFAULT 0,
    state TEXT NOT NULL DEFAULT 'queued',
    attempts INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL DEFAULT 5,
    next_attempt_at REAL NOT NULL DEFAULT 0,
    wall_timeout REAL,
    spec_json TEXT NOT NULL,
    started REAL,
    finished REAL,
    worker_pid INTEGER,
    lease_owner TEXT,
    run_id TEXT,
    reason TEXT,
    trace_id TEXT
);
CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs(state, next_attempt_at);
CREATE INDEX IF NOT EXISTS idx_jobs_tenant ON jobs(tenant, state);
CREATE TABLE IF NOT EXISTS service_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


class StoreError(RuntimeError):
    """A job lookup failed (unknown or ambiguous id, bad state, ...)."""


class JobStore:
    """The interface the service layers program against.

    Deliberately small — exactly what the supervisor, the submit/status
    CLI, and the observability view need — so a real database can slot
    in behind it without touching any of them.
    """

    def submit(self, spec, *, tenant="default", priority=0,
               wall_timeout=None, max_attempts=5, job_id=None,
               backpressure=None, trace_id=None,
               now=None) -> Tuple[Job, Optional[Job]]:
        raise NotImplementedError

    def get(self, job_id: str) -> Job:
        raise NotImplementedError

    def jobs(self, state=None, tenant=None, limit=1000) -> List[Job]:
        raise NotImplementedError

    def counts(self) -> Dict[str, int]:
        raise NotImplementedError

    def claim_next(self, owner: str, now=None) -> Optional[Job]:
        raise NotImplementedError

    def set_worker(self, job_id: str, pid: Optional[int]) -> None:
        raise NotImplementedError

    def mark_done(self, job_id: str, run_id=None, now=None) -> None:
        raise NotImplementedError

    def mark_dead(self, job_id: str, reason: str, now=None) -> None:
        raise NotImplementedError

    def requeue(self, job_id: str, delay=0.0, reason=None,
                count_attempt=True, now=None) -> None:
        raise NotImplementedError

    def set_draining(self, draining: bool) -> None:
        raise NotImplementedError

    def draining(self) -> bool:
        raise NotImplementedError

    def acquire_lease(self, owner: str, info=None, stale_after=15.0) -> bool:
        raise NotImplementedError

    def refresh_lease(self, owner: str) -> None:
        raise NotImplementedError

    def release_lease(self, owner: str) -> None:
        raise NotImplementedError

    def lease(self) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


class SqliteJobStore(JobStore):
    """The jobs table inside the run-registry database file."""

    def __init__(self, path: Union[str, Path], readonly: bool = False) -> None:
        self.path = Path(path)
        self.readonly = readonly
        # check_same_thread off: a store is handed between threads (the
        # test harness drives a supervisor from a worker thread) but is
        # only ever *used* by one at a time; cross-process safety comes
        # from the immediate transactions, not the connection object.
        if readonly:
            self._conn = sqlite3.connect(
                f"file:{self.path}?mode=ro", uri=True,
                check_same_thread=False,
            )
            configure_connection(self._conn, readonly=True)
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._conn = sqlite3.connect(
                str(self.path), check_same_thread=False
            )
            configure_connection(self._conn)
            retry_locked(lambda: self._conn.executescript(_JOBS_SCHEMA))
            # Pre-trace databases lack the trace_id column; CREATE TABLE
            # IF NOT EXISTS never retrofits columns, so migrate in place.
            try:
                retry_locked(
                    lambda: self._conn.execute(
                        "ALTER TABLE jobs ADD COLUMN trace_id TEXT"
                    )
                )
            except sqlite3.OperationalError:
                pass  # already present
        # Explicit transactions only: reads run lock-free, and every
        # read-modify-write wraps itself in BEGIN IMMEDIATE below.
        self._conn.isolation_level = None

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SqliteJobStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- transaction plumbing ----------------------------------------------

    def _transact(self, operation: Callable[[], Any]) -> Any:
        """Run ``operation`` inside one immediate (write-locked)
        transaction, retried on a locked database."""

        def _run():
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                result = operation()
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
            return result

        return retry_locked(_run)

    # -- row mapping --------------------------------------------------------

    @staticmethod
    def _row_to_job(row: sqlite3.Row) -> Job:
        return Job(
            job_id=row["job_id"],
            spec=JobSpec.from_dict(json.loads(row["spec_json"])),
            tenant=row["tenant"],
            priority=row["priority"],
            state=row["state"],
            attempts=row["attempts"],
            max_attempts=row["max_attempts"],
            next_attempt_at=row["next_attempt_at"],
            wall_timeout=row["wall_timeout"],
            created=row["created"],
            updated=row["updated"],
            started=row["started"],
            finished=row["finished"],
            worker_pid=row["worker_pid"],
            lease_owner=row["lease_owner"],
            run_id=row["run_id"],
            reason=row["reason"],
            # Readonly connections never migrate, so an old database
            # opened by a monitor may simply lack the column.
            trace_id=row["trace_id"] if "trace_id" in row.keys() else None,
        )

    # -- submission + backpressure -----------------------------------------

    def submit(
        self,
        spec: JobSpec,
        *,
        tenant: str = "default",
        priority: int = 0,
        wall_timeout: Optional[float] = None,
        max_attempts: int = 5,
        job_id: Optional[str] = None,
        backpressure: Optional[BackpressurePolicy] = None,
        trace_id: Optional[str] = None,
        now: Optional[float] = None,
    ) -> Tuple[Job, Optional[Job]]:
        """Enqueue a job; returns ``(job, shed_job_or_None)``.

        The backpressure check and the insert are one transaction: two
        racing submitters cannot both squeeze past the high-water mark.
        Raises :class:`QueueFull` when the policy rejects.
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        now = now if now is not None else time.time()
        job_id = job_id if job_id is not None else new_job_id(now)

        def _op() -> Tuple[Job, Optional[Job]]:
            shed: Optional[Job] = None
            if backpressure is not None:
                rows = self._conn.execute(
                    "SELECT * FROM jobs WHERE state = 'queued'"
                ).fetchall()
                if len(rows) >= backpressure.max_queued:
                    queued = [self._row_to_job(r) for r in rows]
                    victim = backpressure.victim(queued, priority)
                    if victim is None:
                        raise QueueFull(
                            f"queue at high-water mark "
                            f"({len(queued)}/{backpressure.max_queued} queued); "
                            f"submission rejected"
                        )
                    self._conn.execute(
                        "UPDATE jobs SET state = 'shed', reason = ?, "
                        "updated = ?, finished = ? WHERE job_id = ?",
                        (
                            f"shed by higher-priority submission {job_id}",
                            now,
                            now,
                            victim.job_id,
                        ),
                    )
                    shed = victim.with_state(
                        "shed",
                        reason=f"shed by higher-priority submission {job_id}",
                        updated=now,
                        finished=now,
                    )
            self._conn.execute(
                "INSERT INTO jobs(job_id, created, updated, tenant, priority,"
                " state, attempts, max_attempts, next_attempt_at,"
                " wall_timeout, spec_json, trace_id)"
                " VALUES(?,?,?,?,?,'queued',0,?,0,?,?,?)",
                (
                    job_id,
                    now,
                    now,
                    tenant,
                    priority,
                    max_attempts,
                    wall_timeout,
                    json.dumps(spec.to_dict(), sort_keys=True),
                    trace_id,
                ),
            )
            job = Job(
                job_id=job_id,
                spec=spec,
                tenant=tenant,
                priority=priority,
                max_attempts=max_attempts,
                wall_timeout=wall_timeout,
                created=now,
                updated=now,
                trace_id=trace_id,
            )
            return job, shed

        return self._transact(_op)

    # -- queries ------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """One job by exact id or unique prefix."""
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
        ).fetchone()
        if row is None:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE job_id LIKE ? ORDER BY created",
                (job_id + "%",),
            ).fetchall()
            if not rows:
                raise StoreError(f"no job {job_id!r} in {self.path}")
            if len(rows) > 1:
                ids = ", ".join(r["job_id"] for r in rows[:5])
                raise StoreError(f"ambiguous job id {job_id!r}: {ids}")
            row = rows[0]
        return self._row_to_job(row)

    def jobs(
        self,
        state: Optional[str] = None,
        tenant: Optional[str] = None,
        limit: int = 1000,
    ) -> List[Job]:
        clauses: List[str] = []
        params: Tuple[Any, ...] = ()
        if state is not None:
            if state not in JOB_STATES:
                raise StoreError(f"unknown job state {state!r}")
            clauses.append("state = ?")
            params += (state,)
        if tenant is not None:
            clauses.append("tenant = ?")
            params += (tenant,)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._conn.execute(
            f"SELECT * FROM jobs {where} ORDER BY created, job_id LIMIT ?",
            (*params, limit),
        ).fetchall()
        return [self._row_to_job(r) for r in rows]

    def counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in JOB_STATES}
        for row in self._conn.execute(
            "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
        ):
            counts[row["state"]] = row["n"]
        return counts

    # -- scheduling ---------------------------------------------------------

    def claim_next(self, owner: str, now: Optional[float] = None) -> Optional[Job]:
        """Atomically claim the next ready job (tenant-fair), moving it
        to ``running`` with the attempt counted.  None when no job is
        ready (queued jobs still backing off do not count)."""
        from .policy import pick_fair

        now = now if now is not None else time.time()

        def _op() -> Optional[Job]:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE state = 'queued'"
                " AND next_attempt_at <= ?",
                (now,),
            ).fetchall()
            ready = [self._row_to_job(r) for r in rows]
            last_started = {
                row["tenant"]: row["last"]
                for row in self._conn.execute(
                    "SELECT tenant, MAX(started) AS last FROM jobs"
                    " WHERE started IS NOT NULL GROUP BY tenant"
                )
                if row["last"] is not None
            }
            job = pick_fair(ready, last_started)
            if job is None:
                return None
            self._conn.execute(
                "UPDATE jobs SET state = 'running', attempts = attempts + 1,"
                " started = ?, updated = ?, lease_owner = ?, worker_pid = NULL,"
                " reason = NULL WHERE job_id = ?",
                (now, now, owner, job.job_id),
            )
            return job.with_state(
                "running",
                attempts=job.attempts + 1,
                started=now,
                updated=now,
                lease_owner=owner,
                worker_pid=None,
                reason=None,
            )

        return self._transact(_op)

    def set_worker(self, job_id: str, pid: Optional[int]) -> None:
        self._transact(
            lambda: self._conn.execute(
                "UPDATE jobs SET worker_pid = ?, updated = ? WHERE job_id = ?",
                (pid, time.time(), job_id),
            )
        )

    def set_run_id(self, job_id: str, run_id: Optional[str]) -> None:
        self._transact(
            lambda: self._conn.execute(
                "UPDATE jobs SET run_id = ?, updated = ? WHERE job_id = ?",
                (run_id, time.time(), job_id),
            )
        )

    # -- terminal transitions ----------------------------------------------

    def mark_done(
        self, job_id: str, run_id: Optional[str] = None,
        now: Optional[float] = None,
    ) -> None:
        now = now if now is not None else time.time()
        self._transact(
            lambda: self._conn.execute(
                "UPDATE jobs SET state = 'done', finished = ?, updated = ?,"
                " worker_pid = NULL, run_id = COALESCE(?, run_id),"
                " reason = NULL WHERE job_id = ?",
                (now, now, run_id, job_id),
            )
        )

    def mark_dead(
        self, job_id: str, reason: str, now: Optional[float] = None
    ) -> None:
        now = now if now is not None else time.time()
        self._transact(
            lambda: self._conn.execute(
                "UPDATE jobs SET state = 'dead', finished = ?, updated = ?,"
                " worker_pid = NULL, reason = ? WHERE job_id = ?",
                (now, now, reason, job_id),
            )
        )

    def requeue(
        self,
        job_id: str,
        delay: float = 0.0,
        reason: Optional[str] = None,
        count_attempt: bool = True,
        now: Optional[float] = None,
    ) -> None:
        """Put a running job back in the queue.

        ``count_attempt=False`` refunds the attempt consumed at claim
        time — used when the *service* interrupted the job (drain,
        supervisor restart) rather than the job failing.
        """
        now = now if now is not None else time.time()
        attempts_sql = "" if count_attempt else ", attempts = MAX(0, attempts - 1)"
        self._transact(
            lambda: self._conn.execute(
                f"UPDATE jobs SET state = 'queued', next_attempt_at = ?,"
                f" updated = ?, worker_pid = NULL, reason = ?{attempts_sql}"
                f" WHERE job_id = ?",
                (now + max(0.0, delay), now, reason, job_id),
            )
        )

    # -- drain flag + supervisor lease -------------------------------------

    def _meta_get(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM service_meta WHERE key = ?", (key,)
        ).fetchone()
        return row["value"] if row is not None else None

    def _meta_set(self, key: str, value: Optional[str]) -> None:
        def _op():
            if value is None:
                self._conn.execute(
                    "DELETE FROM service_meta WHERE key = ?", (key,)
                )
            else:
                self._conn.execute(
                    "INSERT OR REPLACE INTO service_meta(key, value)"
                    " VALUES(?,?)",
                    (key, value),
                )

        self._transact(_op)

    def set_draining(self, draining: bool) -> None:
        self._meta_set("draining", "1" if draining else None)

    def draining(self) -> bool:
        return self._meta_get("draining") == "1"

    def acquire_lease(
        self,
        owner: str,
        info: Optional[Dict[str, Any]] = None,
        stale_after: float = 15.0,
    ) -> bool:
        """Claim the single-supervisor lease.  Succeeds when there is no
        lease, the holder's process is gone, or its beat is older than
        ``stale_after`` (a SIGKILLed supervisor never releases)."""
        now = time.time()

        def _op() -> bool:
            row = self._conn.execute(
                "SELECT value FROM service_meta WHERE key = 'lease'"
            ).fetchone()
            if row is not None:
                held = json.loads(row["value"])
                fresh = now - float(held.get("beat", 0.0)) <= stale_after
                alive = held.get("pid") and _pid_alive(int(held["pid"]))
                if held.get("owner") != owner and fresh and alive:
                    return False
            doc = dict(info or {}, owner=owner, beat=now, acquired=now)
            self._conn.execute(
                "INSERT OR REPLACE INTO service_meta(key, value)"
                " VALUES('lease', ?)",
                (json.dumps(doc, sort_keys=True),),
            )
            return True

        return self._transact(_op)

    def refresh_lease(self, owner: str) -> None:
        def _op():
            row = self._conn.execute(
                "SELECT value FROM service_meta WHERE key = 'lease'"
            ).fetchone()
            if row is None:
                return
            held = json.loads(row["value"])
            if held.get("owner") != owner:
                return
            held["beat"] = time.time()
            self._conn.execute(
                "UPDATE service_meta SET value = ? WHERE key = 'lease'",
                (json.dumps(held, sort_keys=True),),
            )

        self._transact(_op)

    def release_lease(self, owner: str) -> None:
        def _op():
            row = self._conn.execute(
                "SELECT value FROM service_meta WHERE key = 'lease'"
            ).fetchone()
            if row is None:
                return
            if json.loads(row["value"]).get("owner") != owner:
                return
            self._conn.execute("DELETE FROM service_meta WHERE key = 'lease'")

        self._transact(_op)

    def lease(self) -> Optional[Dict[str, Any]]:
        raw = self._meta_get("lease")
        return json.loads(raw) if raw else None
