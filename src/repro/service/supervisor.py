"""The supervisor: schedules queued jobs onto subprocess workers.

One single-threaded poll loop owns everything: it claims ready jobs
(tenant-fair), launches workers, reaps exits, enforces wall-clock
timeouts and stale-heartbeat kills, requeues failures with backoff,
dead-letters exhausted or unretryable jobs, and drains gracefully on
SIGTERM.  Single-threadedness is the simplicity budget: every state
transition happens between two well-defined points of the loop, so
there is no locking besides the store's own transactions.

Exactly one supervisor runs per service root, enforced by a lease row
in the store; the lease goes stale (and is adoptable) when its holder
stops beating — the SIGKILLed-supervisor case the chaos harness
rehearses.  Recovery on startup is the mirror image of the loop:
``running`` rows left behind by a dead supervisor are finished (result
present), or their orphan workers are terminated and the jobs requeued
without spending an attempt.

Exit-code contract with workers (the existing CLI):

====  ==========================================================
0     flow completed; ``result.json`` written           → done
3     interrupted, checkpoint written (our SIGTERM, a   → requeue
      timeout, or an external signal)
6     checkpoint/circuit mismatch — retry cannot help   → dead
else  crash (fault, OOM, SIGKILL, ...)                  → retry
====  ==========================================================
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from ..qor.heartbeat import read_heartbeat
from ..qor.monitor import STALE_AFTER, classify_state
from ..telemetry.context import TraceContext, new_span_id
from .events import EventLog
from .policy import BackpressurePolicy, RetryPolicy
from .spec import Job
from .store import JobStore, SqliteJobStore, _pid_alive
from .worker import ServicePaths, build_worker_command


class ServiceBusy(RuntimeError):
    """Another live supervisor already holds this root's lease."""


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one supervisor instance."""

    root: Path
    #: Concurrent worker slots.
    workers: int = 2
    #: Seconds between scheduler ticks.
    poll_interval: float = 0.2
    #: Seconds between SIGTERM (checkpoint + exit) and SIGKILL.
    grace: float = 10.0
    #: Heartbeat age past which a live worker counts as hung.
    stale_after: float = STALE_AFTER
    #: Default per-job wall-clock budget (None = unlimited) for jobs
    #: submitted without one.
    wall_timeout: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    backpressure: BackpressurePolicy = field(default_factory=BackpressurePolicy)
    #: Supervisor lease staleness (crashed-supervisor takeover).
    lease_stale_after: float = 15.0
    #: Exit once the queue is empty and no worker is running — batch
    #: mode for tests and the chaos harness.
    exit_when_idle: bool = False
    #: Interpreter for worker subprocesses (default: this one).
    python: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "root", Path(self.root))
        if self.workers < 1:
            raise ValueError("need at least one worker slot")


@dataclass
class WorkerHandle:
    """One in-flight worker subprocess."""

    job: Job
    process: subprocess.Popen
    started: float
    deadline: Optional[float]
    log_file: object
    term_at: Optional[float] = None
    term_reason: Optional[str] = None


class Supervisor:
    """The poll loop.  ``run()`` blocks; ``tick()`` is one iteration
    (exposed so tests can drive the scheduler deterministically)."""

    def __init__(
        self,
        config: ServiceConfig,
        store: Optional[JobStore] = None,
        events: Optional[EventLog] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.config = config
        self.paths = ServicePaths(config.root)
        self.paths.root.mkdir(parents=True, exist_ok=True)
        self._own_store = store is None
        self.store = store if store is not None else SqliteJobStore(self.paths.registry)
        self.events = events if events is not None else EventLog(self.paths.events)
        self.rng = rng if rng is not None else random.Random()
        self.owner = f"sup-{os.getpid()}-{os.urandom(3).hex()}"
        self.handles: Dict[str, WorkerHandle] = {}
        self._drain = False
        self._lease_beat = 0.0

    # -- lifecycle ----------------------------------------------------------

    def request_drain(self, *_args) -> None:
        """Stop admission and wind down (the SIGTERM handler)."""
        self._drain = True

    def _install_signals(self) -> None:
        try:
            signal.signal(signal.SIGTERM, self.request_drain)
            signal.signal(signal.SIGINT, self.request_drain)
        except ValueError:
            # Not the main thread (threaded test harness): the drain
            # flag can still be set directly.
            pass

    def run(self) -> int:
        """Acquire the lease, recover, then schedule until drained (or
        idle, in ``exit_when_idle`` mode).  Returns an exit status."""
        cfg = self.config
        if not self.store.acquire_lease(
            self.owner,
            info={"pid": os.getpid()},
            stale_after=cfg.lease_stale_after,
        ):
            raise ServiceBusy(
                f"another supervisor holds the lease for {self.paths.root} "
                f"({self.store.lease()})"
            )
        self._lease_beat = time.time()
        self._install_signals()
        self.events.emit(
            "supervisor_start", pid=os.getpid(), owner=self.owner,
            workers=cfg.workers,
        )
        try:
            self.recover()
            while True:
                self.tick()
                if self._drain and not self.handles:
                    break
                if (
                    cfg.exit_when_idle
                    and not self.handles
                    and not self._drain
                ):
                    counts = self.store.counts()
                    if counts["queued"] == 0 and counts["running"] == 0:
                        break
                time.sleep(cfg.poll_interval)
        finally:
            self._close_logs()
            self.store.release_lease(self.owner)
            self.events.emit(
                "supervisor_exit", pid=os.getpid(), owner=self.owner,
                drained=self._drain,
            )
        return 0

    def _close_logs(self) -> None:
        for handle in self.handles.values():
            try:
                handle.log_file.close()
            except OSError:
                pass

    # -- one scheduler iteration -------------------------------------------

    def tick(self, now: Optional[float] = None) -> None:
        now = now if now is not None else time.time()
        self._reap(now)
        self._enforce(now)
        self._refresh_lease(now)
        if self._drain or self.store.draining():
            if not self._drain:
                self._drain = True
            self._begin_drain(now)
        else:
            self._launch(now)

    def _refresh_lease(self, now: float) -> None:
        if now - self._lease_beat >= self.config.lease_stale_after / 3.0:
            self.store.refresh_lease(self.owner)
            self._lease_beat = now

    # -- launching ----------------------------------------------------------

    def _launch(self, now: float) -> None:
        while len(self.handles) < self.config.workers:
            job = self.store.claim_next(self.owner, now=now)
            if job is None:
                return
            if not self.paths.circuit(job.job_id).is_file():
                self.store.mark_dead(
                    job.job_id, "circuit snapshot missing", now=now
                )
                self.events.emit(
                    "job_dead", job.job_id, reason="circuit snapshot missing",
                    trace_id=job.trace_id,
                )
                continue
            self.paths.ensure_job_dirs(job.job_id)
            command = build_worker_command(
                self.paths, job, python=self.config.python
            )
            log_path = self.paths.attempt_log(job.job_id, job.attempts)
            log_file = open(log_path, "wb")
            # Hand the job's trace down to the worker: the CLI reads the
            # traceparent from the environment, so every attempt of this
            # job — fresh place or checkpoint resume — stays one trace.
            env = None
            if job.trace_id:
                try:
                    env = TraceContext(job.trace_id, new_span_id()).env()
                except ValueError:
                    env = None  # malformed stored id: worker mints fresh
            # New session: a dying supervisor must not take its workers
            # down with it — orphans are adopted by recovery instead.
            process = subprocess.Popen(
                command,
                stdout=log_file,
                stderr=subprocess.STDOUT,
                start_new_session=True,
                env=env,
            )
            self.store.set_worker(job.job_id, process.pid)
            timeout = (
                job.wall_timeout
                if job.wall_timeout is not None
                else self.config.wall_timeout
            )
            self.handles[job.job_id] = WorkerHandle(
                job=job,
                process=process,
                started=now,
                deadline=(now + timeout) if timeout else None,
                log_file=log_file,
            )
            self.events.emit(
                "job_start",
                job.job_id,
                attempt=job.attempts,
                pid=process.pid,
                resumed=command[3] == "resume",
                trace_id=job.trace_id,
            )

    # -- reaping ------------------------------------------------------------

    def _reap(self, now: float) -> None:
        for job_id in list(self.handles):
            handle = self.handles[job_id]
            returncode = handle.process.poll()
            if returncode is None:
                continue
            del self.handles[job_id]
            try:
                handle.log_file.close()
            except OSError:
                pass
            self._settle(job_id, returncode, handle, now)

    def _settle(
        self, job_id: str, returncode: int, handle: WorkerHandle, now: float
    ) -> None:
        """Route one finished attempt to done / dead / retry."""
        if returncode == 0 and self._result(job_id) is not None:
            self.store.mark_done(job_id, run_id=self._run_id(job_id), now=now)
            self.events.emit(
                "job_done", job_id, attempt=handle.job.attempts,
                seconds=round(now - handle.started, 3),
                trace_id=handle.job.trace_id,
            )
            return
        if returncode == 6:
            reason = "checkpoint mismatch (exit 6)"
            self.store.mark_dead(job_id, reason, now=now)
            self.events.emit(
                "job_dead", job_id, reason=reason,
                trace_id=handle.job.trace_id,
            )
            return
        if self._drain and returncode == 3:
            # The drain SIGTERM, honored: checkpointed and exited.  The
            # attempt is refunded — the service interrupted the job.
            self.store.requeue(
                job_id, reason="drained", count_attempt=False, now=now
            )
            self.events.emit(
                "job_drained", job_id, attempt=handle.job.attempts,
                trace_id=handle.job.trace_id,
            )
            return
        if returncode == 3:
            reason = handle.term_reason or "interrupted"
        elif returncode < 0:
            reason = f"killed by signal {-returncode}"
        elif returncode == 0:
            reason = "exit 0 without a result"
        else:
            reason = f"exit {returncode}"
        self._retry_or_dead(job_id, reason, now)

    def _retry_or_dead(self, job_id: str, reason: str, now: float) -> None:
        job = self.store.get(job_id)
        if job.attempts >= job.max_attempts:
            full = f"{reason}; attempts exhausted ({job.attempts}/{job.max_attempts})"
            self.store.mark_dead(job_id, full, now=now)
            self.events.emit(
                "job_dead", job_id, reason=full, trace_id=job.trace_id
            )
            return
        delay = self.config.retry.delay(job.attempts, self.rng)
        self.store.requeue(job_id, delay=delay, reason=reason, now=now)
        self.events.emit(
            "job_retry",
            job_id,
            reason=reason,
            attempt=job.attempts,
            delay=round(delay, 3),
            trace_id=job.trace_id,
        )

    def _result(self, job_id: str) -> Optional[dict]:
        """The job's result.json, or None when missing or torn."""
        path = self.paths.result(job_id)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return doc if isinstance(doc, dict) else None

    def _run_id(self, job_id: str) -> Optional[str]:
        manifest = self.paths.rundir(job_id) / "manifest.json"
        try:
            doc = json.loads(manifest.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return doc.get("run_id") if isinstance(doc, dict) else None

    # -- timeouts, hangs, escalation ---------------------------------------

    def _enforce(self, now: float) -> None:
        for job_id, handle in self.handles.items():
            if handle.term_at is not None:
                if now - handle.term_at > self.config.grace:
                    self._kill(handle, job_id)
                continue
            if handle.deadline is not None and now > handle.deadline:
                self._terminate(handle, job_id, "wall-clock timeout", now)
                continue
            state = self._worker_state(handle, job_id, now)
            if state == "stale":
                self._terminate(handle, job_id, "stale heartbeat", now)

    def _worker_state(
        self, handle: WorkerHandle, job_id: str, now: float
    ) -> str:
        beat = read_heartbeat(self.paths.rundir(job_id) / "heartbeat.json")
        if beat is None:
            # No heartbeat yet: grade staleness from launch time.
            age = now - handle.started
            return "stale" if age > self.config.stale_after else "pending"
        return classify_state(beat, now=now, stale_after=self.config.stale_after)

    def _terminate(
        self, handle: WorkerHandle, job_id: str, reason: str, now: float
    ) -> None:
        handle.term_at = now
        handle.term_reason = reason
        self.events.emit(
            "job_term", job_id, reason=reason, pid=handle.process.pid,
            trace_id=handle.job.trace_id,
        )
        try:
            handle.process.terminate()
        except OSError:
            pass

    def _kill(self, handle: WorkerHandle, job_id: str) -> None:
        self.events.emit(
            "job_kill", job_id, reason=handle.term_reason,
            pid=handle.process.pid, trace_id=handle.job.trace_id,
        )
        try:
            handle.process.kill()
        except OSError:
            pass

    # -- graceful drain -----------------------------------------------------

    def _begin_drain(self, now: float) -> None:
        if not self.store.draining():
            self.store.set_draining(True)
        for job_id, handle in self.handles.items():
            if handle.term_at is None:
                self._terminate(handle, job_id, "drain", now)

    # -- startup recovery ---------------------------------------------------

    def recover(self) -> Dict[str, int]:
        """Adopt ``running`` rows a dead supervisor left behind.

        Finished orphans (a result landed) become ``done``; live orphan
        workers are terminated — waited on synchronously, so a relaunch
        can never race a still-writing orphan over the same job
        directory — and their jobs requeue without spending an attempt.
        The drain flag is cleared: a fresh supervisor accepts work.
        """
        self.store.set_draining(False)
        stats = {"adopted_done": 0, "orphans_stopped": 0, "requeued": 0}
        for job in self.store.jobs(state="running"):
            if self._result(job.job_id) is not None:
                self.store.mark_done(
                    job.job_id, run_id=self._run_id(job.job_id)
                )
                self.events.emit(
                    "job_done", job.job_id, attempt=job.attempts,
                    recovered=True, trace_id=job.trace_id,
                )
                stats["adopted_done"] += 1
                continue
            if job.worker_pid and _pid_alive(job.worker_pid):
                self._stop_orphan(job.worker_pid)
                stats["orphans_stopped"] += 1
            self.store.requeue(
                job.job_id,
                reason="supervisor restart",
                count_attempt=False,
            )
            self.events.emit(
                "job_requeued", job.job_id, reason="supervisor restart",
                trace_id=job.trace_id,
            )
            stats["requeued"] += 1
        if any(stats.values()):
            self.events.emit("supervisor_recover", **stats)
        return stats

    def _stop_orphan(self, pid: int) -> None:
        """SIGTERM (checkpoint + exit), escalate to SIGKILL, and wait
        until the process is really gone."""
        try:
            os.kill(pid, signal.SIGTERM)
        except OSError:
            return
        deadline = time.time() + self.config.grace
        while time.time() < deadline:
            if not _pid_alive(pid):
                return
            time.sleep(0.05)
        try:
            os.kill(pid, signal.SIGKILL)
        except OSError:
            return
        # Not our child, so no wait(); poll until the kernel reaps it.
        deadline = time.time() + self.config.grace
        while time.time() < deadline and _pid_alive(pid):
            time.sleep(0.05)
