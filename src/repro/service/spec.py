"""Job identity: what a placement job *is*, independent of scheduling.

A :class:`JobSpec` is the flow-level description (which circuit, which
preset/seed/core) — everything a worker needs to reproduce the run
bit-for-bit.  A :class:`Job` is the queue-level record: the spec plus
tenant, priority, attempt accounting, and lifecycle state.  The split
mirrors the registry's circuit-hash/config-hash comparability contract:
two jobs with equal specs anneal identically, whatever the queue did to
them in between.
"""

from __future__ import annotations

import secrets
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

#: Lifecycle states of a job.
#:
#: ``queued``  — waiting (or backing off) for a worker slot;
#: ``running`` — claimed by the supervisor, a worker attempt in flight;
#: ``done``    — completed with a recorded result;
#: ``dead``    — dead-lettered: attempts exhausted or non-retryable;
#: ``shed``    — displaced by backpressure before ever running.
JOB_STATES = ("queued", "running", "done", "dead", "shed")

#: States a job never leaves.
TERMINAL_STATES = ("done", "dead", "shed")


def new_job_id(now: Optional[float] = None) -> str:
    """A unique, sortable job id (UTC timestamp + random suffix)."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime(now))
    return f"job-{stamp}-{secrets.token_hex(3)}"


@dataclass(frozen=True)
class JobSpec:
    """The reproducible description of one placement run.

    ``circuit`` is the path of the circuit snapshot the service took at
    submit time (the submitted file is copied into the job's directory,
    so later edits to the original cannot change what the job means).
    """

    circuit: str
    preset: str = "smoke"
    seed: int = 0
    core: str = "array"
    cooling: str = "table"
    #: Stage-1 checkpoint cadence for the worker (temperature steps).
    #: Small by default: the denser the checkpoints, the less work a
    #: retry replays.
    checkpoint_every: int = 5

    def to_dict(self) -> Dict[str, Any]:
        return {
            "circuit": self.circuit,
            "preset": self.preset,
            "seed": self.seed,
            "core": self.core,
            "cooling": self.cooling,
            "checkpoint_every": self.checkpoint_every,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "JobSpec":
        known = set(JobSpec.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown job spec fields: {sorted(unknown)}")
        return JobSpec(**data)


@dataclass(frozen=True)
class Job:
    """One queue record (a row of the ``jobs`` table)."""

    job_id: str
    spec: JobSpec
    tenant: str = "default"
    priority: int = 0
    state: str = "queued"
    attempts: int = 0
    max_attempts: int = 5
    next_attempt_at: float = 0.0
    wall_timeout: Optional[float] = None
    created: float = field(default_factory=time.time)
    updated: float = 0.0
    started: Optional[float] = None
    finished: Optional[float] = None
    worker_pid: Optional[int] = None
    lease_owner: Optional[str] = None
    run_id: Optional[str] = None
    reason: Optional[str] = None
    #: The distributed-trace id minted at submit time.  Every attempt,
    #: checkpoint, registry row, and queue event of this job carries it,
    #: so a retried job is still *one* trace.
    trace_id: Optional[str] = None

    def with_state(self, state: str, **changes: Any) -> "Job":
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        return replace(self, state=state, **changes)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (CLI ``--json``, the obs ``/jobs`` routes)."""
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "tenant": self.tenant,
            "priority": self.priority,
            "state": self.state,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "next_attempt_at": self.next_attempt_at,
            "wall_timeout": self.wall_timeout,
            "created": self.created,
            "updated": self.updated,
            "started": self.started,
            "finished": self.finished,
            "worker_pid": self.worker_pid,
            "lease_owner": self.lease_owner,
            "run_id": self.run_id,
            "reason": self.reason,
            "trace_id": self.trace_id,
        }
