"""The placement service: a supervised, fault-tolerant job queue.

``repro.service`` turns the single-shot flow into a long-running
orchestrator (``python -m repro service``): placement jobs (circuit +
config → job id) enter a persistent queue backed by the same SQLite
file as the run registry, and a supervisor schedules them onto a pool
of subprocess workers with full fault tolerance:

* **timeouts** — a job past its wall budget is SIGTERMed (the worker
  checkpoints and exits gracefully) and SIGKILLed after a grace period;
* **crash / hang detection** — worker exits are reaped every tick, and
  a live worker whose heartbeat goes stale (the ``classify_state``
  machinery of the observability layer) is treated as hung and killed;
* **retry with backoff** — failed attempts requeue with exponential
  backoff plus jitter, up to a per-job attempt budget, after which the
  job parks in the ``dead`` (dead-letter) state;
* **checkpoint-aware recovery** — a retried job resumes from its last
  checkpoint (``resume_place_and_route``), pinned to the job's
  snapshotted circuit, so its final QoR is bit-identical to an
  uninterrupted run;
* **backpressure** — submissions past the queue's high-water mark are
  rejected (or, under the shed policy, displace the lowest-priority
  queued work);
* **fair scheduling** — ready jobs are drained round-robin across
  tenants, so one bulk submitter cannot starve the rest;
* **graceful drain** — SIGTERM (or ``service drain``) stops admission,
  checkpoints in-flight jobs back into the queue, and exits cleanly;
* **crash recovery** — a restarted supervisor adopts the persistent
  queue: finished orphans are recorded as done, live orphans are
  checkpointed and requeued, and vanished workers simply retry.

See ``docs/service.md`` for the architecture and the failure taxonomy.
"""

from .events import EventLog, EventTailer, read_events
from .policy import BackpressurePolicy, QueueFull, RetryPolicy
from .spec import (
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    JobSpec,
    new_job_id,
)
from .store import JobStore, SqliteJobStore
from .supervisor import ServiceConfig, Supervisor
from .view import ServiceView
from .worker import ServicePaths, build_worker_command

__all__ = [
    "BackpressurePolicy",
    "EventLog",
    "EventTailer",
    "JOB_STATES",
    "Job",
    "JobSpec",
    "JobStore",
    "QueueFull",
    "RetryPolicy",
    "ServiceConfig",
    "ServicePaths",
    "ServiceView",
    "SqliteJobStore",
    "Supervisor",
    "TERMINAL_STATES",
    "build_worker_command",
    "new_job_id",
    "read_events",
]
