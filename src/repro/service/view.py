"""The client-side facade: submit, status, drain, event history.

One class serves every entry point — the ``python -m repro service``
verbs and the observability server's ``/jobs`` routes — so they cannot
drift apart on semantics.  A view talks only to the store and the
event journal; it never touches the supervisor, which may or may not
be running (submissions queue up either way).
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..telemetry.context import new_trace_id
from .events import EventLog, read_events
from .policy import BackpressurePolicy, QueueFull
from .spec import Job, JobSpec, new_job_id
from .store import SqliteJobStore
from .worker import ServicePaths, job_checkpoint


class ServiceView:
    """Submit jobs to — and inspect — the service under ``root``."""

    def __init__(self, root: Union[str, Path], readonly: bool = False) -> None:
        self.paths = ServicePaths(root)
        if not readonly:
            self.paths.root.mkdir(parents=True, exist_ok=True)
        self.store = SqliteJobStore(self.paths.registry, readonly=readonly)
        self.events = EventLog(self.paths.events)

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "ServiceView":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        circuit: Union[str, Path],
        *,
        preset: str = "smoke",
        seed: int = 0,
        core: str = "array",
        cooling: str = "table",
        checkpoint_every: int = 5,
        tenant: str = "default",
        priority: int = 0,
        wall_timeout: Optional[float] = None,
        max_attempts: int = 5,
        backpressure: Optional[BackpressurePolicy] = None,
    ) -> Job:
        """Snapshot the circuit and enqueue a job for it.

        The submitted file is copied into the job's directory before the
        queue insert, so the job's meaning is frozen at submit time.
        Raises :class:`QueueFull` when backpressure rejects (the
        snapshot is cleaned up again).

        Submission also mints the job's distributed-trace id: the one
        identity that survives retries, supervisor restarts, and
        checkpoint resumes — ``/trace/<id>`` on the obs server joins
        everything the job ever did under it.
        """
        circuit = Path(circuit)
        text = circuit.read_text(encoding="utf-8")  # validates readability
        job_id = new_job_id()
        trace_id = new_trace_id()
        self.paths.ensure_job_dirs(job_id)
        snapshot = self.paths.circuit(job_id)
        snapshot.write_text(text, encoding="utf-8")
        spec = JobSpec(
            circuit=str(snapshot),
            preset=preset,
            seed=seed,
            core=core,
            cooling=cooling,
            checkpoint_every=checkpoint_every,
        )
        try:
            job, shed = self.store.submit(
                spec,
                tenant=tenant,
                priority=priority,
                wall_timeout=wall_timeout,
                max_attempts=max_attempts,
                job_id=job_id,
                backpressure=backpressure,
                trace_id=trace_id,
            )
        except QueueFull:
            shutil.rmtree(self.paths.job_dir(job_id), ignore_errors=True)
            self.events.emit(
                "queue_full", tenant=tenant, priority=priority,
                circuit=str(circuit),
            )
            raise
        self.events.emit(
            "job_submitted",
            job.job_id,
            tenant=tenant,
            priority=priority,
            circuit=str(circuit),
            trace_id=trace_id,
        )
        if shed is not None:
            self.events.emit(
                "job_shed", shed.job_id, displaced_by=job.job_id
            )
        return job

    # -- inspection ---------------------------------------------------------

    def job(self, job_id: str) -> Job:
        return self.store.get(job_id)

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job row plus what its directory says about it."""
        job = self.store.get(job_id)
        ckpt = job_checkpoint(self.paths, job.job_id)
        doc = job.to_dict()
        doc["has_result"] = self.paths.result(job.job_id).is_file()
        doc["checkpoint"] = str(ckpt) if ckpt is not None else None
        doc["rundir"] = str(self.paths.rundir(job.job_id))
        return doc

    def jobs(
        self, state: Optional[str] = None, tenant: Optional[str] = None,
        limit: int = 1000,
    ) -> List[Job]:
        return self.store.jobs(state=state, tenant=tenant, limit=limit)

    def counts(self) -> Dict[str, int]:
        return self.store.counts()

    def overview(self) -> Dict[str, Any]:
        """The ``/jobs`` route document: counts, lease, drain flag."""
        return {
            "counts": self.counts(),
            "draining": self.store.draining(),
            "lease": self.store.lease(),
            "jobs": [job.to_dict() for job in self.jobs()],
        }

    def history(
        self, job_id: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        return read_events(self.paths.events, job_id=job_id, limit=limit)

    # -- control ------------------------------------------------------------

    def drain(self) -> None:
        """Ask the (possibly remote) supervisor to drain and exit."""
        self.store.set_draining(True)
        self.events.emit("drain_requested")
