"""Worker-side plumbing: the service root layout and worker commands.

A worker is not a new runtime — it is the existing CLI
(``python -m repro place`` / ``resume``) run as a subprocess against a
per-job directory.  That buys the service every guarantee those
commands already make: SIGTERM → checkpoint → exit 3, checkpoint
mismatch → exit 6, rundir heartbeats, registry rows, deterministic
resume.  The supervisor only ever interprets exit codes and files.

Service root layout::

    <root>/
      registry.sqlite        shared job store + run registry
      events.jsonl           append-only queue-event journal
      jobs/<job_id>/
        circuit.twmc         snapshot of the submitted circuit
        ckpt/                the job's checkpoint directory
        result.json          final flow result (written on success)
        attempt-N.log        captured stdout+stderr of attempt N
      runs/<job_id>/         the job's rundir (manifest/heartbeat/qor)
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from ..resilience.checkpoint import latest_checkpoint
from .spec import Job


@dataclass(frozen=True)
class ServicePaths:
    """Where everything lives under one service root."""

    root: Path

    def __init__(self, root: Union[str, Path]) -> None:
        object.__setattr__(self, "root", Path(root))

    @property
    def registry(self) -> Path:
        return self.root / "registry.sqlite"

    @property
    def events(self) -> Path:
        return self.root / "events.jsonl"

    @property
    def jobs_dir(self) -> Path:
        return self.root / "jobs"

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def circuit(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "circuit.twmc"

    def checkpoint_dir(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "ckpt"

    def result(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "result.json"

    def attempt_log(self, job_id: str, attempt: int) -> Path:
        return self.job_dir(job_id) / f"attempt-{attempt}.log"

    def rundir(self, job_id: str) -> Path:
        return self.root / "runs" / job_id

    def ensure_job_dirs(self, job_id: str) -> None:
        self.job_dir(job_id).mkdir(parents=True, exist_ok=True)
        self.checkpoint_dir(job_id).mkdir(parents=True, exist_ok=True)


def job_checkpoint(paths: ServicePaths, job_id: str) -> Optional[Path]:
    """The newest checkpoint a previous attempt of this job left behind."""
    return latest_checkpoint(paths.checkpoint_dir(job_id))


def build_worker_command(
    paths: ServicePaths, job: Job, python: Optional[str] = None
) -> List[str]:
    """The argv for the job's next attempt.

    First attempt (or no checkpoint survived): a fresh ``place``.
    Otherwise: ``resume`` from the newest checkpoint, pinned to the
    job's circuit snapshot — so a corrupted-queue scenario where a
    checkpoint from another circuit lands in the job directory exits 6
    and dead-letters instead of silently producing the wrong layout.

    Every attempt traces itself into the job's rundir under a
    per-attempt file name (``trace-attempt-NN.jsonl``) — the raw
    material of the obs server's ``/runs/<id>/trace`` waterfall.  One
    file per attempt, not one shared file, because ``--trace``
    truncates on open: a retry must not erase the evidence of the
    attempt it is recovering from.
    """
    python = python if python is not None else sys.executable
    trace = [
        "--trace",
        str(
            paths.rundir(job.job_id)
            / f"trace-attempt-{max(job.attempts, 1):02d}.jsonl"
        ),
    ]
    ckpt = job_checkpoint(paths, job.job_id)
    if ckpt is not None:
        return [
            python,
            "-m",
            "repro",
            "resume",
            str(ckpt),
            "--circuit",
            str(paths.circuit(job.job_id)),
            "--json",
            str(paths.result(job.job_id)),
            "--rundir",
            str(paths.rundir(job.job_id)),
            "--registry",
            str(paths.registry),
            *trace,
        ]
    spec = job.spec
    return [
        python,
        "-m",
        "repro",
        "place",
        str(paths.circuit(job.job_id)),
        "--preset",
        spec.preset,
        "--seed",
        str(spec.seed),
        "--core",
        spec.core,
        "--cooling",
        spec.cooling,
        "--checkpoint-dir",
        str(paths.checkpoint_dir(job.job_id)),
        "--checkpoint-every",
        str(spec.checkpoint_every),
        "--json",
        str(paths.result(job.job_id)),
        "--rundir",
        str(paths.rundir(job.job_id)),
        "--registry",
        str(paths.registry),
        *trace,
    ]
