"""CLI handlers for ``python -m repro service <verb>``.

Verbs::

    service run <root>       start the supervisor (blocks; SIGTERM drains)
    service submit <root> <circuit.twmc> [--preset ...]   enqueue a job
    service status <root> [job_id]       queue overview / one job
    service drain <root>                 ask the supervisor to drain
    service events <root> [job_id]       dump the queue-event journal

Registered lazily from ``repro.__main__`` so the service stack only
imports when one of its verbs actually runs.
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_WORKERS = 2

#: Exit status of ``service submit`` refused by backpressure.
EXIT_QUEUE_FULL = 7

#: Exit status of ``service run`` when another supervisor holds the lease.
EXIT_LEASE_HELD = 8


def add_service_command(subparsers: argparse._SubParsersAction) -> None:
    """Register ``service`` (and its verbs) on the top-level parser."""
    service_p = subparsers.add_parser(
        "service",
        help="fault-tolerant placement service: supervised job queue "
        "with retry, timeouts, backpressure, and checkpoint recovery",
    )
    verbs = service_p.add_subparsers(dest="verb", required=True)

    p_run = verbs.add_parser("run", help="start the supervisor loop")
    p_run.add_argument("root", help="service root directory")
    p_run.add_argument(
        "--workers", type=int, default=DEFAULT_WORKERS,
        help=f"concurrent worker slots (default {DEFAULT_WORKERS})",
    )
    p_run.add_argument(
        "--poll-interval", type=float, default=0.2, metavar="S",
        help="seconds between scheduler ticks (default 0.2)",
    )
    p_run.add_argument(
        "--grace", type=float, default=10.0, metavar="S",
        help="seconds between SIGTERM and SIGKILL (default 10)",
    )
    p_run.add_argument(
        "--stale-after", type=float, default=30.0, metavar="S",
        help="worker heartbeat age that counts as hung (default 30)",
    )
    p_run.add_argument(
        "--wall-timeout", type=float, default=None, metavar="S",
        help="default per-job wall-clock budget (default: unlimited)",
    )
    p_run.add_argument(
        "--retry-base", type=float, default=2.0, metavar="S",
        help="backoff before the second attempt (default 2)",
    )
    p_run.add_argument(
        "--retry-cap", type=float, default=60.0, metavar="S",
        help="backoff ceiling (default 60)",
    )
    p_run.add_argument(
        "--max-queued", type=int, default=64,
        help="queue high-water mark for backpressure (default 64)",
    )
    p_run.add_argument(
        "--shed", action="store_true",
        help="past the high-water mark, let higher-priority submissions "
        "displace the lowest-priority queued job instead of rejecting",
    )
    p_run.add_argument(
        "--exit-when-idle", action="store_true",
        help="exit once the queue is empty and no worker runs "
        "(batch mode; default: serve forever until drained)",
    )
    p_run.set_defaults(func=cmd_run)

    p_submit = verbs.add_parser("submit", help="enqueue a placement job")
    p_submit.add_argument("root", help="service root directory")
    p_submit.add_argument("circuit", help="circuit file (.twmc)")
    p_submit.add_argument("--preset", default="smoke", help="smoke | fast | paper")
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--core", default="array", choices=("array", "object"))
    p_submit.add_argument("--cooling", default="table", choices=("table", "adaptive"))
    p_submit.add_argument(
        "--checkpoint-every", type=int, default=5, metavar="N",
        help="stage-1 checkpoint cadence in temperature steps (default 5)",
    )
    p_submit.add_argument("--tenant", default="default")
    p_submit.add_argument("--priority", type=int, default=0)
    p_submit.add_argument(
        "--wall-timeout", type=float, default=None, metavar="S",
        help="per-job wall-clock budget",
    )
    p_submit.add_argument("--max-attempts", type=int, default=5)
    p_submit.add_argument(
        "--max-queued", type=int, default=64,
        help="backpressure high-water mark to enforce at submit time",
    )
    p_submit.add_argument(
        "--shed", action="store_true",
        help="displace lower-priority queued work when the queue is full",
    )
    p_submit.add_argument(
        "--json", action="store_true", help="print the job as JSON"
    )
    p_submit.set_defaults(func=cmd_submit)

    p_status = verbs.add_parser(
        "status", help="queue overview, or one job's status"
    )
    p_status.add_argument("root", help="service root directory")
    p_status.add_argument(
        "job_id", nargs="?", help="job id (or unique prefix)"
    )
    p_status.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_status.set_defaults(func=cmd_status)

    p_drain = verbs.add_parser(
        "drain", help="ask the running supervisor to drain and exit"
    )
    p_drain.add_argument("root", help="service root directory")
    p_drain.set_defaults(func=cmd_drain)

    p_events = verbs.add_parser(
        "events", help="dump the queue-event journal"
    )
    p_events.add_argument("root", help="service root directory")
    p_events.add_argument("job_id", nargs="?", help="filter to one job")
    p_events.add_argument(
        "--limit", type=int, default=None, help="only the newest N events"
    )
    p_events.set_defaults(func=cmd_events)


def cmd_run(args: argparse.Namespace) -> int:
    from .policy import BackpressurePolicy, RetryPolicy
    from .supervisor import ServiceBusy, ServiceConfig, Supervisor

    config = ServiceConfig(
        root=args.root,
        workers=args.workers,
        poll_interval=args.poll_interval,
        grace=args.grace,
        stale_after=args.stale_after,
        wall_timeout=args.wall_timeout,
        retry=RetryPolicy(base=args.retry_base, cap=args.retry_cap),
        backpressure=BackpressurePolicy(
            max_queued=args.max_queued, shed=args.shed
        ),
        exit_when_idle=args.exit_when_idle,
    )
    try:
        return Supervisor(config).run()
    except ServiceBusy as exc:
        print(f"service busy: {exc}", file=sys.stderr)
        return EXIT_LEASE_HELD


def cmd_submit(args: argparse.Namespace) -> int:
    from .policy import BackpressurePolicy, QueueFull
    from .view import ServiceView

    with ServiceView(args.root) as view:
        try:
            job = view.submit(
                args.circuit,
                preset=args.preset,
                seed=args.seed,
                core=args.core,
                cooling=args.cooling,
                checkpoint_every=args.checkpoint_every,
                tenant=args.tenant,
                priority=args.priority,
                wall_timeout=args.wall_timeout,
                max_attempts=args.max_attempts,
                backpressure=BackpressurePolicy(
                    max_queued=args.max_queued, shed=args.shed
                ),
            )
        except QueueFull as exc:
            print(
                json.dumps({"error": "queue_full", "reason": str(exc)}),
                file=sys.stderr,
            )
            return EXIT_QUEUE_FULL
    if args.json:
        print(json.dumps(job.to_dict(), indent=2, sort_keys=True))
    else:
        print(job.job_id)
    return 0


def _fmt_age(seconds) -> str:
    if seconds is None:
        return "-"
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    return f"{seconds / 3600:.1f}h"


def cmd_status(args: argparse.Namespace) -> int:
    import time

    from .view import ServiceView

    with ServiceView(args.root, readonly=False) as view:
        if args.job_id:
            doc = view.status(args.job_id)
            if args.json:
                print(json.dumps(doc, indent=2, sort_keys=True))
            else:
                for key in (
                    "job_id", "state", "tenant", "priority", "attempts",
                    "max_attempts", "run_id", "reason", "checkpoint",
                    "has_result",
                ):
                    print(f"{key:14s} {doc[key]}")
            return 0
        overview = view.overview()
        if args.json:
            print(json.dumps(overview, indent=2, sort_keys=True))
            return 0
        counts = overview["counts"]
        summary = "  ".join(f"{state}={n}" for state, n in counts.items())
        drain = "  DRAINING" if overview["draining"] else ""
        lease = overview["lease"]
        holder = (
            f"supervisor pid {lease.get('pid')}" if lease else "no supervisor"
        )
        print(f"{summary}  [{holder}]{drain}")
        now = time.time()
        for job in overview["jobs"]:
            age = _fmt_age(now - job["created"])
            print(
                f"{job['job_id']}  {job['state']:7s} "
                f"t={job['tenant']:10s} p={job['priority']:<3d} "
                f"try {job['attempts']}/{job['max_attempts']}  age {age}"
                + (f"  ({job['reason']})" if job["reason"] else "")
            )
    return 0


def cmd_drain(args: argparse.Namespace) -> int:
    from .view import ServiceView

    with ServiceView(args.root) as view:
        view.drain()
        lease = view.store.lease()
    if lease:
        print(f"drain requested (supervisor pid {lease.get('pid')})")
    else:
        print("drain requested (no supervisor running)")
    return 0


def cmd_events(args: argparse.Namespace) -> int:
    from .events import read_events
    from .worker import ServicePaths

    paths = ServicePaths(args.root)
    for doc in read_events(
        paths.events, job_id=args.job_id, limit=args.limit
    ):
        print(json.dumps(doc, sort_keys=True))
    return 0
