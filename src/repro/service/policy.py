"""Scheduling policies: retry backoff, backpressure, tenant fairness.

Pure decision logic, separated from the store and the supervisor so the
exact semantics the docs promise ("exponential backoff with jitter",
"reject or shed past the high-water mark", "round-robin across
tenants") are unit-testable without processes or databases.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .spec import Job


class QueueFull(RuntimeError):
    """A submission was refused: the queue is at its high-water mark
    and the backpressure policy could not make room."""


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for failed attempts.

    The delay before attempt ``n+1`` (after ``n`` failed attempts) is
    ``min(cap, base * factor**(n-1))`` stretched by a uniformly random
    factor in ``[1, 1+jitter]``.  Jitter decorrelates the retries of
    jobs that failed together (e.g. every worker killed by the same
    OOM sweep), so they do not stampede back as one block.
    """

    base: float = 2.0
    factor: float = 2.0
    cap: float = 60.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.base < 0 or self.cap < 0:
            raise ValueError("backoff base and cap must be non-negative")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be at least 1")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def delay(self, attempts: int, rng: Optional[random.Random] = None) -> float:
        """Seconds to wait after ``attempts`` failed attempts (>= 1)."""
        if attempts < 1:
            return 0.0
        raw = min(self.cap, self.base * self.factor ** (attempts - 1))
        if self.jitter <= 0:
            return raw
        rng = rng if rng is not None else random
        return raw * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class BackpressurePolicy:
    """What happens when a submission meets a full queue.

    ``max_queued`` is the high-water mark on *queued* jobs (running jobs
    hold worker slots, not queue slots).  With ``shed`` off, a full
    queue rejects the submission (:class:`QueueFull`).  With ``shed``
    on, a strictly higher-priority submission displaces the
    lowest-priority queued job — ties broken toward the newest arrival,
    so the oldest of the least-important work keeps its place — and the
    displaced job parks in the terminal ``shed`` state.
    """

    max_queued: int = 64
    shed: bool = False

    def __post_init__(self) -> None:
        if self.max_queued < 1:
            raise ValueError("max_queued must be at least 1")

    def victim(
        self, queued: Sequence[Job], priority: int
    ) -> Optional[Job]:
        """The queued job a new submission at ``priority`` may displace,
        or None when the submission must be rejected.  Only meaningful
        when the queue is at or past ``max_queued``."""
        if not self.shed or not queued:
            return None
        lowest = min(
            queued, key=lambda job: (job.priority, -job.created, job.job_id)
        )
        if priority > lowest.priority:
            return lowest
        return None


def pick_fair(
    ready: Sequence[Job], last_started: Dict[str, float]
) -> Optional[Job]:
    """The next job to claim, round-robin across tenants.

    Among tenants with ready work, the tenant served least recently
    (never-served first) goes next; within the tenant, higher priority
    first, then FIFO.  ``last_started`` maps tenant → the most recent
    time any of its jobs started (from the store), which makes the
    round-robin survive supervisor restarts.
    """
    if not ready:
        return None
    by_tenant: Dict[str, List[Job]] = {}
    for job in ready:
        by_tenant.setdefault(job.tenant, []).append(job)
    tenant = min(
        by_tenant,
        key=lambda t: (last_started.get(t, float("-inf")), t),
    )
    candidates = by_tenant[tenant]
    return min(
        candidates,
        key=lambda job: (-job.priority, job.created, job.job_id),
    )
