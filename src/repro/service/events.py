"""The service's append-only event journal (``events.jsonl``).

Every job-lifecycle transition the supervisor or the submit path makes
is recorded as one JSON line — the queue-event transcript the chaos
gate uploads, and the feed behind the ``/jobs/events`` SSE stream.

Writes are single ``os.write`` calls on an ``O_APPEND`` descriptor, so
concurrent writers (a submitter racing the supervisor) interleave at
line granularity and a SIGKILL can at worst truncate the final line.
Readers therefore skip torn trailing lines, and :class:`EventTailer`
re-reads from its last byte offset — the same incremental-tail shape as
the observability layer's ``HeartbeatTailer``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union


class EventLog:
    """Appends job events to ``events.jsonl``, one JSON doc per line."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def emit(self, event: str, job_id: Optional[str] = None,
             **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the document written."""
        doc: Dict[str, Any] = {"ts": time.time(), "event": event}
        if job_id is not None:
            doc["job_id"] = job_id
        doc.update(fields)
        line = json.dumps(doc, sort_keys=True) + "\n"
        fd = os.open(
            str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        return doc


def _parse_lines(data: bytes) -> Tuple[List[Dict[str, Any]], int]:
    """Parse complete lines out of ``data``; returns (docs, bytes_consumed).

    A trailing chunk with no newline is a torn write in progress — it is
    not consumed, so the next read retries it once complete.
    """
    docs: List[Dict[str, Any]] = []
    consumed = 0
    while True:
        newline = data.find(b"\n", consumed)
        if newline < 0:
            break
        raw = data[consumed:newline]
        consumed = newline + 1
        if not raw.strip():
            continue
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue
        if isinstance(doc, dict):
            docs.append(doc)
    return docs, consumed


def read_events(
    path: Union[str, Path],
    job_id: Optional[str] = None,
    limit: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """All events in the journal (oldest first), optionally filtered."""
    try:
        data = Path(path).read_bytes()
    except OSError:
        return []
    docs, _ = _parse_lines(data)
    if job_id is not None:
        docs = [d for d in docs if d.get("job_id") == job_id]
    if limit is not None and limit >= 0:
        docs = docs[-limit:]
    return docs


def stream_job_events(
    path: Union[str, Path],
    stop=None,
    timeout: Optional[float] = None,
    poll_interval: float = 0.25,
    keepalive_every: float = 15.0,
    job_id: Optional[str] = None,
    from_start: bool = False,
    max_events: Optional[int] = None,
) -> Iterator[bytes]:
    """The ``/jobs/events`` SSE body: queue events as they land.

    Each journal line becomes one SSE frame whose ``event:`` field is
    the journal event name (``job_start``, ``job_retry``, ...).  Runs
    until ``stop`` is set or ``timeout`` elapses, interleaving comment
    keepalives through idle stretches — same lifecycle as the run-level
    ``/runs/<id>/events`` stream.
    """
    from ..obs.sse import format_sse, keepalive

    tailer = EventTailer(path, from_start=from_start)
    deadline = time.monotonic() + timeout if timeout is not None else None
    last_emit = time.monotonic()
    delivered = 0
    while True:
        if stop is not None and stop.is_set():
            return
        if deadline is not None and time.monotonic() > deadline:
            return
        got = False
        for doc in tailer.poll():
            if job_id is not None and doc.get("job_id") != job_id:
                continue
            got = True
            delivered += 1
            yield format_sse(
                doc, event=str(doc.get("event", "event")),
                event_id=str(delivered),
            )
            last_emit = time.monotonic()
            if max_events is not None and delivered >= max_events:
                return
        if not got:
            if time.monotonic() - last_emit >= keepalive_every:
                last_emit = time.monotonic()
                yield keepalive()
            time.sleep(poll_interval)


class EventTailer:
    """Incremental reader: each :meth:`poll` yields only new events."""

    def __init__(self, path: Union[str, Path],
                 from_start: bool = False) -> None:
        self.path = Path(path)
        self._offset = 0
        if not from_start:
            try:
                self._offset = self.path.stat().st_size
            except OSError:
                self._offset = 0

    def poll(self) -> Iterator[Dict[str, Any]]:
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size < self._offset:
            # Journal truncated/rotated underneath us: start over.
            self._offset = 0
        if size == self._offset:
            return
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            data = handle.read()
        docs, consumed = _parse_lines(data)
        self._offset += consumed
        for doc in docs:
            yield doc
