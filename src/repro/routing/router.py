"""The global router: phase one + phase two over a channel graph (§4.2).

The router is layout-style independent: its only inputs are a net list
(pins already assigned to positions on channel edges, with electrically
equivalent pins grouped) and a channel graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..channels import ChannelGraph, CongestionReport, compute_congestion
from ..netlist import Circuit
from ..telemetry import current_tracer
from .interchange import InterchangeResult, RouteSelector
from .steiner import RouteAlternative, m_shortest_routes

EdgeKey = Tuple[int, int]


@dataclass
class RoutingResult:
    """A complete global routing of a circuit on a channel graph."""

    routes: Dict[str, FrozenSet[EdgeKey]]
    lengths: Dict[str, float]
    alternatives: Dict[str, List[RouteAlternative]]
    interchange: InterchangeResult
    unrouted: List[str] = field(default_factory=list)

    @property
    def total_length(self) -> float:
        return sum(self.lengths.values())

    @property
    def overflow(self) -> int:
        return self.interchange.overflow

    def congestion(self, graph: ChannelGraph) -> CongestionReport:
        return compute_congestion(graph, self.routes)


class GlobalRouter:
    """Routes every net of a circuit over a channel graph."""

    def __init__(
        self,
        graph: ChannelGraph,
        m_routes: int = 20,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if m_routes < 1:
            raise ValueError("m_routes must be at least 1")
        self.graph = graph
        self.m_routes = m_routes
        self.rng = rng if rng is not None else random.Random(seed)

    def build_pin_groups(self, circuit: Circuit) -> Dict[str, List[List[int]]]:
        """Per net: lists of graph nodes, one list per pin group
        (electrically equivalent pins of a cell share a group)."""
        out: Dict[str, List[List[int]]] = {}
        for net in circuit.nets.values():
            groups: Dict[Tuple[str, str], List[int]] = {}
            order: List[Tuple[str, str]] = []
            for ref in net.pins:
                node = self.graph.pin_nodes.get((ref.cell, ref.pin))
                if node is None:
                    continue
                pin = circuit.cells[ref.cell].pins[ref.pin]
                if pin.equiv_class is not None:
                    key = (ref.cell, pin.equiv_class)
                else:
                    key = (ref.cell, f"__pin__{ref.pin}")
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(node)
            out[net.name] = [groups[k] for k in order]
        return out

    def route_net(self, groups: Sequence[Sequence[int]]) -> List[RouteAlternative]:
        """Phase one for a single net: up to M stored alternatives."""
        return m_shortest_routes(
            self.graph.neighbors,
            groups,
            self.m_routes,
            positions=self.graph.positions,
        )

    def route(self, circuit: Circuit) -> RoutingResult:
        """Route every net: phase one per net, then the interchange."""
        tracer = current_tracer()
        with tracer.span(
            "router.route", nets=circuit.num_nets, m_routes=self.m_routes
        ):
            net_groups = self.build_pin_groups(circuit)
            alternatives: Dict[str, List[RouteAlternative]] = {}
            unrouted: List[str] = []
            for net_name, groups in net_groups.items():
                groups = [g for g in groups if g]
                if len(groups) < 2:
                    continue  # nothing to connect
                alts = self.route_net(groups)
                if tracer.enabled:
                    # Phase-one record (§4.2.1): how many of the M slots the
                    # net filled, and the shortest/longest stored lengths.
                    tracer.event(
                        "router.net",
                        net=net_name,
                        pin_groups=len(groups),
                        alternatives=len(alts),
                        shortest=round(alts[0].length, 3) if alts else None,
                        longest=round(alts[-1].length, 3) if alts else None,
                    )
                if not alts:
                    unrouted.append(net_name)
                    continue
                alternatives[net_name] = alts

            capacities: Dict[EdgeKey, Optional[int]] = {
                e.key: e.capacity for e in self.graph.edges()
            }
            if alternatives:
                selector = RouteSelector(alternatives, capacities)
                interchange = selector.run(self.rng)
                routes = selector.routes()
            else:
                interchange = InterchangeResult(
                    selection={}, total_length=0.0, overflow=0, converged_shortest=True
                )
                routes = {}
            lengths = {
                net: alternatives[net][interchange.selection[net]].length
                for net in alternatives
            }
            if tracer.enabled:
                tracer.event(
                    "router.interchange",
                    nets_routed=len(alternatives),
                    unrouted=len(unrouted),
                    attempts=interchange.attempts,
                    accepted=interchange.accepted,
                    overflow=interchange.overflow,
                    total_length=round(interchange.total_length, 3),
                    converged_shortest=interchange.converged_shortest,
                )
            return RoutingResult(
                routes=routes,
                lengths=lengths,
                alternatives=alternatives,
                interchange=interchange,
                unrouted=unrouted,
            )
