"""The global router: phase one + phase two over a channel graph (§4.2).

The router is layout-style independent: its only inputs are a net list
(pins already assigned to positions on channel edges, with electrically
equivalent pins grouped) and a channel graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..channels import ChannelGraph, CongestionReport, compute_congestion
from ..netlist import Circuit
from ..qor.heartbeat import current_heartbeat
from ..resilience.faults import fault_point
from ..telemetry import current_tracer
from .interchange import InterchangeResult, RouteSelector
from .steiner import RouteAlternative, m_shortest_routes

EdgeKey = Tuple[int, int]


@dataclass
class RoutingResult:
    """A complete global routing of a circuit on a channel graph."""

    routes: Dict[str, FrozenSet[EdgeKey]]
    lengths: Dict[str, float]
    alternatives: Dict[str, List[RouteAlternative]]
    interchange: InterchangeResult
    unrouted: List[str] = field(default_factory=list)
    #: Nets whose phase-one routing raised and could not be recovered;
    #: net -> failure description.  They appear in ``unrouted`` too.
    failed: Dict[str, str] = field(default_factory=dict)
    #: Nets routed only after the relaxed-M retry; net -> what happened.
    retried: Dict[str, str] = field(default_factory=dict)
    #: Semi-perimeter wirelength estimates for unrouted nets, so TEIL
    #: accounting can still cover them.
    estimated_lengths: Dict[str, float] = field(default_factory=dict)

    @property
    def total_length(self) -> float:
        return sum(self.lengths.values())

    @property
    def overflow(self) -> int:
        return self.interchange.overflow

    def congestion(self, graph: ChannelGraph) -> CongestionReport:
        return compute_congestion(graph, self.routes)


class GlobalRouter:
    """Routes every net of a circuit over a channel graph."""

    def __init__(
        self,
        graph: ChannelGraph,
        m_routes: int = 20,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
        workers: int = 1,
    ) -> None:
        if m_routes < 1:
            raise ValueError("m_routes must be at least 1")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.graph = graph
        self.m_routes = m_routes
        self.rng = rng if rng is not None else random.Random(seed)
        #: Process-pool size for the phase-one per-net fan-out; 1 routes
        #: serially in this process.  Either way the committed routes
        #: are identical (see ``repro.parallel.routing``).
        self.workers = workers

    def build_pin_groups(self, circuit: Circuit) -> Dict[str, List[List[int]]]:
        """Per net: lists of graph nodes, one list per pin group
        (electrically equivalent pins of a cell share a group)."""
        out: Dict[str, List[List[int]]] = {}
        for net in circuit.nets.values():
            groups: Dict[Tuple[str, str], List[int]] = {}
            order: List[Tuple[str, str]] = []
            for ref in net.pins:
                node = self.graph.pin_nodes.get((ref.cell, ref.pin))
                if node is None:
                    continue
                pin = circuit.cells[ref.cell].pins[ref.pin]
                if pin.equiv_class is not None:
                    key = (ref.cell, pin.equiv_class)
                else:
                    key = (ref.cell, f"__pin__{ref.pin}")
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(node)
            out[net.name] = [groups[k] for k in order]
        return out

    def route_net(self, groups: Sequence[Sequence[int]]) -> List[RouteAlternative]:
        """Phase one for a single net: up to M stored alternatives."""
        return m_shortest_routes(
            self.graph.neighbors,
            groups,
            self.m_routes,
            positions=self.graph.positions,
        )

    def route(self, circuit: Circuit) -> RoutingResult:
        """Route every net: phase one per net, then the interchange."""
        tracer = current_tracer()
        heartbeat = current_heartbeat()
        with tracer.span(
            "router.route", nets=circuit.num_nets, m_routes=self.m_routes
        ):
            net_groups = self.build_pin_groups(circuit)
            alternatives: Dict[str, List[RouteAlternative]] = {}
            unrouted: List[str] = []
            failed: Dict[str, str] = {}
            retried: Dict[str, str] = {}
            estimated: Dict[str, float] = {}
            tasks: List[Tuple[str, List[List[int]]]] = []
            for net_name, groups in net_groups.items():
                groups = [g for g in groups if g]
                if len(groups) < 2:
                    continue  # nothing to connect
                tasks.append((net_name, groups))
            # Live progress: a beat every ~2% of nets (min_interval on
            # the writer throttles small circuits down further).  The
            # opening beat marks the phase transition itself, so SSE
            # streams see "route" begin before the first batch lands.
            beat_every = max(1, len(tasks) // 50)
            nets_done = 0
            if heartbeat.enabled and tasks:
                heartbeat.beat("route", nets_done=0, nets_total=len(tasks))

            def _net_beat() -> None:
                nonlocal nets_done
                nets_done += 1
                if heartbeat.enabled and nets_done % beat_every == 0:
                    heartbeat.beat(
                        "route", nets_done=nets_done, nets_total=len(tasks)
                    )

            if self.workers > 1 and tasks:
                # Phase-one fan-out: the pool enumerates per-net routes;
                # results commit here in the same sequential net order
                # the serial loop uses, so the routing is identical.
                from ..parallel.routing import route_nets_parallel

                records = route_nets_parallel(
                    self.graph, tasks, self.m_routes, self.workers
                )
                for (net_name, groups), record in zip(tasks, records):
                    alts = record["alternatives"]
                    if record["error"] is not None and tracer.enabled:
                        tracer.event(
                            "router.net_retried",
                            net=net_name,
                            error=record["error"],
                            m_routes=max(1, self.m_routes // 2),
                        )
                    if record["retried"] is not None:
                        retried[net_name] = record["retried"]
                    if record["failed"] is not None:
                        failed[net_name] = record["failed"]
                        if tracer.enabled:
                            tracer.event(
                                "router.net_failed",
                                net=net_name,
                                error=record["failed"],
                            )
                    self._commit_net(
                        net_name, groups, alts, tracer,
                        alternatives, unrouted, estimated,
                    )
                    _net_beat()
            else:
                for net_name, groups in tasks:
                    alts = self._route_net_supervised(
                        net_name, groups, tracer, failed, retried
                    )
                    self._commit_net(
                        net_name, groups, alts, tracer,
                        alternatives, unrouted, estimated,
                    )
                    _net_beat()

            capacities: Dict[EdgeKey, Optional[int]] = {
                e.key: e.capacity for e in self.graph.edges()
            }
            if alternatives:
                selector = RouteSelector(alternatives, capacities)
                interchange = selector.run(self.rng)
                routes = selector.routes()
            else:
                interchange = InterchangeResult(
                    selection={}, total_length=0.0, overflow=0, converged_shortest=True
                )
                routes = {}
            lengths = {
                net: alternatives[net][interchange.selection[net]].length
                for net in alternatives
            }
            if tracer.enabled:
                tracer.event(
                    "router.interchange",
                    nets_routed=len(alternatives),
                    unrouted=len(unrouted),
                    attempts=interchange.attempts,
                    accepted=interchange.accepted,
                    overflow=interchange.overflow,
                    total_length=round(interchange.total_length, 3),
                    converged_shortest=interchange.converged_shortest,
                )
            if heartbeat.enabled:
                heartbeat.beat(
                    "route",
                    nets_done=len(tasks),
                    nets_total=len(tasks),
                    overflow=interchange.overflow,
                    total_length=round(interchange.total_length, 3),
                )
            return RoutingResult(
                routes=routes,
                lengths=lengths,
                alternatives=alternatives,
                interchange=interchange,
                unrouted=unrouted,
                failed=failed,
                retried=retried,
                estimated_lengths=estimated,
            )

    def _commit_net(
        self,
        net_name: str,
        groups: Sequence[Sequence[int]],
        alts: List[RouteAlternative],
        tracer,
        alternatives: Dict[str, List[RouteAlternative]],
        unrouted: List[str],
        estimated: Dict[str, float],
    ) -> None:
        """Record one net's phase-one outcome (shared by the serial loop
        and the parallel commit, so both produce the same bookkeeping
        and the same ``router.net`` event stream)."""
        if tracer.enabled:
            # Phase-one record (§4.2.1): how many of the M slots the
            # net filled, and the shortest/longest stored lengths.
            tracer.event(
                "router.net",
                net=net_name,
                pin_groups=len(groups),
                alternatives=len(alts),
                shortest=round(alts[0].length, 3) if alts else None,
                longest=round(alts[-1].length, 3) if alts else None,
            )
        if not alts:
            unrouted.append(net_name)
            estimated[net_name] = self.semi_perimeter(groups)
        else:
            alternatives[net_name] = alts

    def _route_net_supervised(
        self,
        net_name: str,
        groups: Sequence[Sequence[int]],
        tracer,
        failed: Dict[str, str],
        retried: Dict[str, str],
    ) -> List[RouteAlternative]:
        """Phase one for one net with graceful degradation: on an
        exception, retry with a relaxed M (smaller search), and if that
        also fails record the net as failed (the caller falls back to a
        semi-perimeter estimate and marks it unrouted).  One bad net
        must not abort the whole flow."""
        try:
            fault_point("router.route_net", net=net_name)
            return self.route_net(groups)
        except Exception as exc:
            first = f"{type(exc).__name__}: {exc}"
        relaxed = max(1, self.m_routes // 2)
        if tracer.enabled:
            tracer.event(
                "router.net_retried",
                net=net_name,
                error=first,
                m_routes=relaxed,
            )
        try:
            fault_point("router.route_net_retry", net=net_name)
            alts = m_shortest_routes(
                self.graph.neighbors,
                groups,
                relaxed,
                positions=self.graph.positions,
            )
            retried[net_name] = f"rerouted with M={relaxed} after {first}"
            return alts
        except Exception as exc2:
            failed[net_name] = (
                f"{first}; retry with M={relaxed} failed: "
                f"{type(exc2).__name__}: {exc2}"
            )
            if tracer.enabled:
                tracer.event(
                    "router.net_failed", net=net_name, error=failed[net_name]
                )
            return []

    def semi_perimeter(self, groups: Sequence[Sequence[int]]) -> float:
        """Half-perimeter of the net's pin nodes — the wirelength
        estimate used when a net cannot be routed over the graph."""
        xs: List[float] = []
        ys: List[float] = []
        for group in groups:
            for node in group:
                position = self.graph.positions.get(node)
                if position is not None:
                    xs.append(position[0])
                    ys.append(position[1])
        if len(xs) < 2:
            return 0.0
        return (max(xs) - min(xs)) + (max(ys) - min(ys))
