"""Phase two of the global router (§4.2.2): random route interchange.

Each net i owns M_i stored alternatives, enumerated shortest-first; the
interchange algorithm picks one alternative per net, minimizing the total
length L (Eqn 23) subject to the channel-edge capacity constraints.
X (Eqn 24) is the total excess over all channel edges.  Starting from
every net on its shortest route:

* if X = 0 the solution is optimal and final;
* otherwise, repeatedly pick a random overflowed edge, a random net
  through it, and a random alternative with dX <= 0; accept when dX < 0,
  or dX = 0 and dL <= 0.

This sidesteps the classical net-ordering dependence of sequential
rip-up-and-reroute.  The stopping criterion: no overflowed edge remains,
or L and X unchanged for M * N consecutive attempts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .steiner import RouteAlternative

EdgeKey = Tuple[int, int]


@dataclass
class InterchangeResult:
    """Outcome of the route-selection phase."""

    selection: Dict[str, int]
    total_length: float
    overflow: int
    attempts: int = 0
    accepted: int = 0
    converged_shortest: bool = False  # every net on k=1 with X = 0


class RouteSelector:
    """Selects one alternative per net subject to edge capacities."""

    def __init__(
        self,
        alternatives: Dict[str, Sequence[RouteAlternative]],
        capacities: Dict[EdgeKey, Optional[int]],
    ) -> None:
        for net, alts in alternatives.items():
            if not alts:
                raise ValueError(f"net {net!r} has no route alternatives")
            lengths = [a.length for a in alts]
            if lengths != sorted(lengths):
                raise ValueError(f"alternatives for net {net!r} not sorted")
        self.alternatives = {net: list(alts) for net, alts in alternatives.items()}
        self.capacities = capacities
        self.selection: Dict[str, int] = {net: 0 for net in self.alternatives}
        self._density: Dict[EdgeKey, int] = {}
        self._nets_on_edge: Dict[EdgeKey, set] = {}
        self._length = 0.0
        self._overflow = 0
        for net in self.alternatives:
            self._install(net, 0)

    # -- bookkeeping -------------------------------------------------------

    def _capacity(self, edge: EdgeKey) -> Optional[int]:
        return self.capacities.get(edge)

    def _edge_overflow(self, edge: EdgeKey, density: int) -> int:
        cap = self._capacity(edge)
        if cap is None:
            return 0
        return max(0, density - cap)

    def _install(self, net: str, k: int) -> None:
        alt = self.alternatives[net][k]
        self.selection[net] = k
        self._length += alt.length
        # Sorted iteration keeps ``_density``'s insertion order — and so
        # the interchange's random trajectory — a function of the route
        # *values* only.  Plain frozenset order would leak the sets'
        # construction history (a pickle round-trip through a routing
        # worker reorders equal frozensets) into the result.
        for edge in sorted(alt.edges):
            old = self._density.get(edge, 0)
            self._overflow += self._edge_overflow(edge, old + 1) - self._edge_overflow(
                edge, old
            )
            self._density[edge] = old + 1
            self._nets_on_edge.setdefault(edge, set()).add(net)

    def _uninstall(self, net: str) -> None:
        k = self.selection[net]
        alt = self.alternatives[net][k]
        self._length -= alt.length
        for edge in alt.edges:
            old = self._density[edge]
            self._overflow += self._edge_overflow(edge, old - 1) - self._edge_overflow(
                edge, old
            )
            if old == 1:
                del self._density[edge]
            else:
                self._density[edge] = old - 1
            users = self._nets_on_edge[edge]
            users.discard(net)
            if not users:
                del self._nets_on_edge[edge]

    # -- queries ------------------------------------------------------------

    @property
    def total_length(self) -> float:
        return self._length

    @property
    def overflow(self) -> int:
        return self._overflow

    def density(self, edge: EdgeKey) -> int:
        return self._density.get(edge, 0)

    def overflowed_edges(self) -> List[EdgeKey]:
        # Sorted for the same reason ``_install`` iterates sorted edges:
        # the rng draws an index into this list, so its order must not
        # depend on dict/set layout.
        return sorted(
            e
            for e, d in self._density.items()
            if self._edge_overflow(e, d) > 0
        )

    def selected_route(self, net: str) -> RouteAlternative:
        return self.alternatives[net][self.selection[net]]

    def routes(self) -> Dict[str, FrozenSet[EdgeKey]]:
        return {net: self.selected_route(net).edges for net in self.alternatives}

    # -- the interchange loop -------------------------------------------------

    def _delta(self, net: str, k: int) -> Tuple[int, float]:
        """(dX, dL) of switching ``net`` to alternative ``k``."""
        cur = self.selected_route(net)
        alt = self.alternatives[net][k]
        d_len = alt.length - cur.length
        removed = cur.edges - alt.edges
        added = alt.edges - cur.edges
        d_x = 0
        for edge in removed:
            old = self._density[edge]
            d_x += self._edge_overflow(edge, old - 1) - self._edge_overflow(edge, old)
        for edge in added:
            old = self._density.get(edge, 0)
            d_x += self._edge_overflow(edge, old + 1) - self._edge_overflow(edge, old)
        return (d_x, d_len)

    def run(
        self,
        rng: random.Random,
        stagnation_limit: Optional[int] = None,
    ) -> InterchangeResult:
        """Execute the random interchange until X = 0 or stagnation.

        ``stagnation_limit`` defaults to M * N (alternatives per net times
        number of nets), the paper's criterion.
        """
        n_nets = len(self.alternatives)
        m = max((len(a) for a in self.alternatives.values()), default=1)
        limit = stagnation_limit if stagnation_limit is not None else m * n_nets
        attempts = 0
        accepted = 0
        stagnant = 0

        while self._overflow > 0 and stagnant < limit:
            hot = self.overflowed_edges()
            if not hot:
                break
            edge = hot[rng.randrange(len(hot))]
            users = sorted(self._nets_on_edge.get(edge, ()))
            if not users:
                stagnant += 1
                continue
            net = users[rng.randrange(len(users))]
            current = self.selection[net]
            options = [
                k
                for k in range(len(self.alternatives[net]))
                if k != current and self._delta(net, k)[0] <= 0
            ]
            attempts += 1
            if not options:
                stagnant += 1
                continue
            k = options[rng.randrange(len(options))]
            d_x, d_len = self._delta(net, k)
            if d_x < 0 or (d_x == 0 and d_len <= 0):
                self._uninstall(net)
                self._install(net, k)
                accepted += 1
                stagnant = 0
            else:
                stagnant += 1

        converged = self._overflow == 0 and all(
            k == 0 for k in self.selection.values()
        )
        return InterchangeResult(
            selection=dict(self.selection),
            total_length=self._length,
            overflow=self._overflow,
            attempts=attempts,
            accepted=accepted,
            converged_shortest=converged,
        )
