"""M-shortest loopless paths on a channel graph.

Phase one of the global router stores the M shortest routes of every
net.  For two-pin nets this is Lawler's M-shortest-path problem; we use
Yen's deviation algorithm (equivalent output), generalized in two ways
the router needs:

* *multi-source*: paths may start from any node of an existing partial
  route (the target-node set of Figures 11-12), and
* *multi-target*: paths may end at any node of an electrically
  equivalent pin group.

Both are realized with virtual terminals, kept out of returned paths.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

#: neighbors(node) -> iterable of (neighbor, edge length).
NeighborFn = Callable[[int], Iterable[Tuple[int, float]]]

Path = Tuple[float, Tuple[int, ...]]  # (length, node sequence)


def dijkstra(
    neighbors: NeighborFn,
    sources: Dict[int, float],
    targets: Set[int],
    banned_nodes: Optional[Set[int]] = None,
    banned_edges: Optional[Set[Tuple[int, int]]] = None,
    positions: Optional[Dict[int, Tuple[float, float]]] = None,
) -> Optional[Path]:
    """Shortest path from any source (with initial costs) to any target.

    ``banned_nodes`` may not be visited; ``banned_edges`` (directed pairs)
    may not be traversed.  When ``positions`` is given the search runs as
    A* with the Manhattan distance-to-nearest-target heuristic, which is
    admissible here because every edge's length is the Manhattan distance
    between its endpoints (triangle inequality).  Returns (length, path)
    or None.
    """
    banned_nodes = banned_nodes or set()
    banned_edges = banned_edges or set()

    if positions is not None and targets:
        target_pos = [positions[t] for t in targets if t in positions]

        def h(node: int) -> float:
            p = positions.get(node)
            if p is None or not target_pos:
                return 0.0
            return min(
                abs(p[0] - tx) + abs(p[1] - ty) for tx, ty in target_pos
            )

    else:

        def h(node: int) -> float:
            return 0.0

    dist: Dict[int, float] = {}
    prev: Dict[int, Optional[int]] = {}
    heap: List[Tuple[float, float, int]] = []
    for node, cost in sources.items():
        if node in banned_nodes:
            continue
        if cost < dist.get(node, float("inf")):
            dist[node] = cost
            prev[node] = None
            heapq.heappush(heap, (cost + h(node), cost, node))

    while heap:
        _, d, node = heapq.heappop(heap)
        if d > dist.get(node, float("inf")):
            continue
        if node in targets:
            path = []
            cur: Optional[int] = node
            while cur is not None:
                path.append(cur)
                cur = prev[cur]
            path.reverse()
            return (d, tuple(path))
        for nxt, length in neighbors(node):
            if nxt in banned_nodes or (node, nxt) in banned_edges:
                continue
            nd = d + length
            if nd < dist.get(nxt, float("inf")) - 1e-12:
                dist[nxt] = nd
                prev[nxt] = node
                heapq.heappush(heap, (nd + h(nxt), nd, nxt))
    return None


#: Default cap on deviation (spur) points per Yen iteration.  The exact
#: algorithm deviates at every node of the newest path, costing one
#: Dijkstra per node; on pin-heavy channel graphs paths run tens of nodes
#: long and the exact version dominates the router's wall clock.  Spur
#: points are subsampled evenly along the path instead — alternative
#: routes differ mildly from the exact k-shortest set, which the beam
#: search tolerates by construction.
DEFAULT_MAX_SPURS = 12


def k_shortest_paths(
    neighbors: NeighborFn,
    sources: Dict[int, float],
    targets: Set[int],
    k: int,
    max_spurs: int = DEFAULT_MAX_SPURS,
    positions: Optional[Dict[int, Tuple[float, float]]] = None,
) -> List[Path]:
    """Yen's algorithm: up to k shortest loopless source-to-target paths.

    Sources act as a single virtual origin (deviations never re-enter
    another source) and targets as a single virtual destination, so the
    result is the k best ways of joining the source set to the target
    set — exactly what connecting a pin group to a partial route needs.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if max_spurs < 1:
        raise ValueError("max_spurs must be at least 1")
    first = dijkstra(neighbors, sources, targets, positions=positions)
    if first is None:
        return []
    found: List[Path] = [first]
    candidates: List[Path] = []
    seen: Set[Tuple[int, ...]] = {first[1]}

    while len(found) < k:
        base_len, base_path = found[-1]
        # Deviate at (a sample of) the newest path's nodes.
        spur_indices = range(len(base_path) - 1)
        if len(base_path) - 1 > max_spurs:
            step = (len(base_path) - 1) / max_spurs
            spur_indices = sorted({int(j * step) for j in range(max_spurs)})
        for i in spur_indices:
            spur = base_path[i]
            root = base_path[: i + 1]
            root_len = _path_cost(neighbors, root, sources)
            if root_len is None:
                continue
            banned_edges: Set[Tuple[int, int]] = set()
            for length, path in found:
                if len(path) > i and path[: i + 1] == root:
                    banned_edges.add((path[i], path[i + 1]))
            banned_nodes = set(root[:-1])
            # Nodes of the source set other than the root's own origin
            # stay usable only if not already on the root.
            spur_result = dijkstra(
                neighbors,
                {spur: 0.0},
                targets,
                banned_nodes=banned_nodes,
                banned_edges=banned_edges,
                positions=positions,
            )
            if spur_result is None:
                continue
            spur_len, spur_path = spur_result
            total = root + spur_path[1:]
            if total in seen:
                continue
            seen.add(total)
            heapq.heappush(candidates, (root_len + spur_len, total))
        if not candidates:
            break
        best = heapq.heappop(candidates)
        found.append(best)
    return found[:k]


def _path_cost(
    neighbors: NeighborFn, path: Tuple[int, ...], sources: Dict[int, float]
) -> Optional[float]:
    """Cost of a concrete path, honoring per-source initial costs."""
    if path[0] not in sources:
        return None
    total = sources[path[0]]
    for u, v in zip(path, path[1:]):
        step = None
        for nxt, length in neighbors(u):
            if nxt == v and (step is None or length < step):
                step = length
        if step is None:
            return None
        total += step
    return total


def path_edges(path: Tuple[int, ...]) -> FrozenSet[Tuple[int, int]]:
    """Undirected edge set of a node path."""
    return frozenset(
        (u, v) if u < v else (v, u) for u, v in zip(path, path[1:])
    )
