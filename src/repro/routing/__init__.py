"""The global router of §4.2: M-shortest routes plus random interchange."""

from .interchange import InterchangeResult, RouteSelector
from .mpaths import dijkstra, k_shortest_paths, path_edges
from .router import GlobalRouter, RoutingResult
from .steiner import (
    RouteAlternative,
    m_shortest_routes,
    prim_order,
    prim_order_geometric,
)

__all__ = [
    "InterchangeResult",
    "RouteSelector",
    "dijkstra",
    "k_shortest_paths",
    "path_edges",
    "GlobalRouter",
    "RoutingResult",
    "RouteAlternative",
    "m_shortest_routes",
    "prim_order",
    "prim_order_geometric",
]
