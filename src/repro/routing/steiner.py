"""Phase one of the global router (§4.2.1): M alternative routes per net.

For a multi-pin net the algorithm generalizes Lawler's M-shortest-path
idea: pins are connected in the order Prim's algorithm would add them to
a minimum spanning tree, but at every step the M shortest ways of
joining the next pin (group) to the already-connected target nodes are
generated and the recursion explores the stored alternatives, keeping
the overall M shortest complete routes (Figures 10-12).

Electrically-equivalent pins form *pin groups*: a route must reach any
one member of each group.

The literal recursion enumerates M^(g-1) combinations; like the original
implementation we bound the work with a beam: after every level at most
M partial routes survive, ranked by length.  For nets of fewer than ~20
pins this reliably contains the minimum-Steiner-length route among the
alternatives (the paper's observation), which the tests check on grids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .mpaths import NeighborFn, dijkstra, k_shortest_paths, path_edges


@dataclass(frozen=True)
class RouteAlternative:
    """One complete candidate route for a net."""

    edges: FrozenSet[Tuple[int, int]]
    nodes: FrozenSet[int]
    length: float


def _group_distances(
    neighbors: NeighborFn,
    from_nodes: Set[int],
    group_nodes: Dict[int, Set[int]],
) -> Dict[int, float]:
    """Multi-source Dijkstra that stops once every group has been reached.

    Returns group id -> shortest distance from the source set.  Groups
    unreachable from the sources are absent from the result.
    """
    import heapq

    node_groups: Dict[int, List[int]] = {}
    for gid, nodes in group_nodes.items():
        for n in nodes:
            node_groups.setdefault(n, []).append(gid)
    pending = set(group_nodes)
    settled: Dict[int, float] = {}

    dist = {n: 0.0 for n in from_nodes}
    heap = [(0.0, n) for n in from_nodes]
    heapq.heapify(heap)
    while heap and pending:
        d, node = heapq.heappop(heap)
        if d > dist.get(node, math.inf):
            continue
        for gid in node_groups.get(node, ()):
            if gid in pending:
                pending.discard(gid)
                settled[gid] = d
        if not pending:
            break
        for nxt, length in neighbors(node):
            nd = d + length
            if nd < dist.get(nxt, math.inf) - 1e-12:
                dist[nxt] = nd
                heapq.heappush(heap, (nd, nxt))
    return settled


def prim_order(
    neighbors: NeighborFn, groups: Sequence[Sequence[int]]
) -> List[int]:
    """Order in which pin groups are connected: Prim's nearest-next rule,
    starting (arbitrarily, like the paper) from the first group.

    One multi-source Dijkstra per step yields the graph distances to all
    remaining groups; the search stops as soon as the last of them is
    reached, so the cost is proportional to the net's neighbourhood, not
    the whole graph.
    """
    if not groups:
        return []
    remaining = set(range(1, len(groups)))
    order = [0]
    connected: Set[int] = set(groups[0])
    while remaining:
        dist = _group_distances(
            neighbors, connected, {g: set(groups[g]) for g in remaining}
        )
        best = None
        best_d = math.inf
        for g in sorted(remaining):
            d = dist.get(g, math.inf)
            if d < best_d:
                best_d = d
                best = g
        if best is None or best_d == math.inf:
            # Disconnected graph: append the rest as-is.
            order.extend(sorted(remaining))
            break
        order.append(best)
        remaining.discard(best)
        connected.update(groups[best])
    return order


def prim_order_geometric(
    positions: dict, groups: Sequence[Sequence[int]]
) -> List[int]:
    """Prim's nearest-next group ordering using Manhattan distances
    between node positions — no graph searches, so it scales to nets on
    pin-heavy graphs (the ordering only seeds the beam; route lengths are
    still measured on the graph)."""
    if not groups:
        return []

    def gdist(a: Sequence[int], b_nodes: List[int]) -> float:
        best = math.inf
        for u in a:
            pu = positions[u]
            for v in b_nodes:
                pv = positions[v]
                d = abs(pu[0] - pv[0]) + abs(pu[1] - pv[1])
                if d < best:
                    best = d
        return best

    remaining = set(range(1, len(groups)))
    order = [0]
    connected: List[int] = list(groups[0])
    while remaining:
        best = None
        best_d = math.inf
        for g in sorted(remaining):
            d = gdist(groups[g], connected)
            if d < best_d:
                best_d = d
                best = g
        order.append(best)
        remaining.discard(best)
        connected.extend(groups[best])
    return order


def m_shortest_routes(
    neighbors: NeighborFn,
    groups: Sequence[Sequence[int]],
    m: int,
    positions: Optional[dict] = None,
) -> List[RouteAlternative]:
    """Generate up to M alternative routes connecting one pin from every
    group.  Returns alternatives sorted by length (shortest first); empty
    when the groups cannot all be connected.

    When ``positions`` is supplied, the path searches run as A* with the
    Manhattan heuristic — the scalable configuration for large channel
    graphs.  Group ordering always uses graph distances (with early
    termination), because geometric proximity can badly mislead the
    connection order on graphs with detours."""
    if m < 1:
        raise ValueError("m must be at least 1")
    groups = [list(g) for g in groups if g]
    if not groups:
        return []
    if len(groups) == 1:
        node = groups[0][0]
        return [RouteAlternative(frozenset(), frozenset([node]), 0.0)]

    order = prim_order(neighbors, groups)
    start_group = groups[order[0]]

    # Seed one partial route per member of the starting group.
    partials: List[RouteAlternative] = [
        RouteAlternative(frozenset(), frozenset([node]), 0.0)
        for node in start_group[:m]
    ]

    for level, gidx in enumerate(order[1:], start=1):
        targets = set(groups[gidx])
        extensions: List[RouteAlternative] = []
        seen: Set[FrozenSet[Tuple[int, int]]] = set()
        # Path-budget policy: branch hard at the first connection (the M
        # alternatives' diversity comes from there), keep doubling while
        # the beam is under-full, then extend each survivor with a single
        # shortest path — Yen's deviations are the router's dominant cost
        # on big graphs, so they are spent only where they add beam width.
        if level == 1 and len(partials) == 1:
            k_each = m
        elif len(partials) < m:
            k_each = 2
        else:
            k_each = 1
        for partial in partials:
            sources = {n: 0.0 for n in partial.nodes}
            if targets & partial.nodes:
                # A member is already on the tree (zero-cost connection).
                if partial.edges not in seen:
                    seen.add(partial.edges)
                    extensions.append(partial)
                continue
            for length, path in k_shortest_paths(
                neighbors, sources, targets, k_each, positions=positions
            ):
                new_edges = partial.edges | path_edges(path)
                if new_edges in seen:
                    continue
                seen.add(new_edges)
                extensions.append(
                    RouteAlternative(
                        edges=new_edges,
                        nodes=partial.nodes | frozenset(path),
                        length=_edge_total(neighbors, new_edges),
                    )
                )
        if not extensions:
            return []
        extensions.sort(key=lambda r: r.length)
        partials = extensions[:m]

    return partials


def _edge_total(neighbors: NeighborFn, edges: FrozenSet[Tuple[int, int]]) -> float:
    """Total length of an undirected edge set (a tree's length is the sum
    of its edges, which de-duplicates shared segments across paths)."""
    total = 0.0
    for u, v in edges:
        step = None
        for nxt, length in neighbors(u):
            if nxt == v and (step is None or length < step):
                step = length
        if step is None:
            raise KeyError(f"edge ({u}, {v}) not present in graph")
        total += step
    return total
