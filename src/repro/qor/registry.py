"""The append-only SQLite run registry.

Every flow run (and every bench invocation) leaves a durable row here,
so runs are observable *as a population*: listable, comparable,
gateable.  Three tables:

* ``runs`` — one row per flow run: identity (run id), provenance
  (circuit + config content hashes, seed, host, package version,
  chains/workers), and lifecycle status.
* ``qor`` — one row per completed run: the quality-of-result record
  (final/stage-1 TEIL, chip area vs. the estimator's core target,
  routing overflow, wall time, moves/sec, truncated/failure flags,
  per-stage timings, metric snapshots).
* ``bench`` — one row per benchmark invocation, keyed by bench name and
  config hash: the registry-backed trajectory behind ``BENCH_*.json``.

The registry is append-only in spirit: rows are inserted and a run's
``status`` advances (running → ok/truncated/failed/interrupted), but
nothing is ever deleted.  All structured values are stored as JSON text
columns so the schema survives new metrics without migration.

Many processes share one registry file (the service layer runs a
supervisor, N workers, and monitors against the same database), so
writable connections run in WAL mode with a busy timeout, and every
write goes through a bounded retry on ``database is locked`` — the
residual error SQLite still raises when the timeout itself expires
under heavy contention.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, TypeVar, Union

SCHEMA_VERSION = 1

#: How long a connection waits for a competing writer before SQLite
#: raises ``database is locked`` (milliseconds).
BUSY_TIMEOUT_MS = 5000

#: Bounded retry for writes that still hit the lock after the timeout.
LOCKED_RETRIES = 5
LOCKED_RETRY_DELAY = 0.05

_T = TypeVar("_T")


def configure_connection(conn: sqlite3.Connection, readonly: bool = False) -> None:
    """Apply the shared-registry concurrency settings to a connection.

    Writable connections switch the database to WAL (readers never block
    the writer and vice versa); every connection gets the busy timeout.
    Also used by the service layer's job store, which shares the file.
    """
    conn.row_factory = sqlite3.Row
    conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
    if not readonly:
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")


def retry_locked(
    operation: Callable[[], _T],
    retries: int = LOCKED_RETRIES,
    delay: float = LOCKED_RETRY_DELAY,
) -> _T:
    """Run ``operation``, retrying on ``database is locked``/``busy``
    with exponential backoff.  Any other ``OperationalError`` (and a
    still-locked database after the final retry) propagates."""
    for attempt in range(retries + 1):
        try:
            return operation()
        except sqlite3.OperationalError as exc:
            message = str(exc).lower()
            if "locked" not in message and "busy" not in message:
                raise
            if attempt >= retries:
                raise
            time.sleep(delay * (2 ** attempt))
    raise AssertionError("unreachable")  # pragma: no cover

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id TEXT PRIMARY KEY,
    created REAL NOT NULL,
    finished REAL,
    status TEXT NOT NULL DEFAULT 'running',
    command TEXT,
    circuit TEXT,
    circuit_sha256 TEXT,
    config_sha256 TEXT,
    seed INTEGER,
    chains INTEGER,
    workers INTEGER,
    package_version TEXT,
    resumed_from TEXT,
    trace_id TEXT,
    host_json TEXT,
    config_json TEXT
);
CREATE TABLE IF NOT EXISTS qor (
    run_id TEXT PRIMARY KEY REFERENCES runs(run_id),
    recorded REAL NOT NULL,
    teil REAL,
    stage1_teil REAL,
    chip_area REAL,
    stage1_chip_area REAL,
    core_target_area REAL,
    area_vs_target REAL,
    overflow INTEGER,
    residual_overlap REAL,
    wall_seconds REAL,
    moves INTEGER,
    moves_per_sec REAL,
    temperatures INTEGER,
    truncated INTEGER,
    failures INTEGER,
    stage_times_json TEXT,
    metrics_json TEXT,
    failures_json TEXT
);
CREATE TABLE IF NOT EXISTS bench (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    recorded REAL NOT NULL,
    name TEXT NOT NULL,
    config_sha256 TEXT,
    payload_json TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_created ON runs(created);
CREATE INDEX IF NOT EXISTS idx_runs_circuit ON runs(circuit_sha256, config_sha256);
CREATE INDEX IF NOT EXISTS idx_bench_name ON bench(name, recorded);
"""

#: Numeric QoR columns the compare/gate layer iterates over.
QOR_METRICS = (
    "teil",
    "stage1_teil",
    "chip_area",
    "stage1_chip_area",
    "core_target_area",
    "area_vs_target",
    "overflow",
    "residual_overlap",
    "wall_seconds",
    "moves",
    "moves_per_sec",
    "temperatures",
)


class RegistryError(RuntimeError):
    """A registry lookup failed (unknown or ambiguous run id, ...)."""


class RunRegistry:
    """Connection wrapper around one registry database file."""

    def __init__(self, path: Union[str, Path], readonly: bool = False) -> None:
        self.path = Path(path)
        self.readonly = readonly
        if readonly:
            # Pure observers (the observability server's scrape/fleet
            # requests) must never create the file, run migrations, or
            # take a write lock under a live flow.
            self._conn = sqlite3.connect(
                f"file:{self.path}?mode=ro", uri=True
            )
            configure_connection(self._conn, readonly=True)
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        configure_connection(self._conn)

        def _migrate() -> None:
            with self._conn:
                self._conn.executescript(_SCHEMA)
                self._conn.execute(
                    "INSERT OR IGNORE INTO meta(key, value) VALUES('schema', ?)",
                    (str(SCHEMA_VERSION),),
                )
                # Columns added after the CREATE TABLE shipped: the
                # schema uses IF NOT EXISTS, so pre-existing databases
                # need an explicit (idempotent) ALTER.
                try:
                    self._conn.execute(
                        "ALTER TABLE runs ADD COLUMN trace_id TEXT"
                    )
                except sqlite3.OperationalError:
                    pass  # already present

        retry_locked(_migrate)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- runs ---------------------------------------------------------------

    def register_run(self, manifest: Dict[str, Any]) -> None:
        """Insert a ``runs`` row from a run manifest (status 'running').

        A resumed run re-registers under its original run id; the row is
        replaced (same identity, status back to 'running',
        ``resumed_from`` now set).
        """
        circuit = manifest.get("circuit", {})
        config = manifest.get("config", {})
        parallel = config.get("values", {}).get("parallel", {})
        self._write(
                "INSERT OR REPLACE INTO runs(run_id, created, status, command, circuit,"
                " circuit_sha256, config_sha256, seed, chains, workers,"
                " package_version, resumed_from, trace_id, host_json, config_json)"
                " VALUES(?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
                (
                    manifest["run_id"],
                    manifest.get("created") or time.time(),
                    "running",
                    manifest.get("command"),
                    circuit.get("name"),
                    circuit.get("sha256"),
                    config.get("sha256"),
                    config.get("values", {}).get("seed"),
                    parallel.get("chains"),
                    parallel.get("workers"),
                    manifest.get("package_version"),
                    manifest.get("resumed_from"),
                    manifest.get("trace_id"),
                    json.dumps(manifest.get("host", {}), sort_keys=True),
                    json.dumps(config.get("values", {}), sort_keys=True),
                ),
        )

    def _write(self, sql: str, params: tuple) -> sqlite3.Cursor:
        """One committed write statement, retried on a locked database."""

        def _run() -> sqlite3.Cursor:
            with self._conn:
                return self._conn.execute(sql, params)

        return retry_locked(_run)

    def finish_run(self, run_id: str, status: str) -> None:
        self._write(
            "UPDATE runs SET status = ?, finished = ? WHERE run_id = ?",
            (status, time.time(), run_id),
        )

    def record_qor(self, run_id: str, qor: Dict[str, Any]) -> None:
        """Insert (or replace, for a resumed run) the run's QoR record."""
        self._write(
                "INSERT OR REPLACE INTO qor(run_id, recorded, teil, stage1_teil,"
                " chip_area, stage1_chip_area, core_target_area, area_vs_target,"
                " overflow, residual_overlap, wall_seconds, moves, moves_per_sec,"
                " temperatures, truncated, failures, stage_times_json,"
                " metrics_json, failures_json)"
                " VALUES(?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
                (
                    run_id,
                    qor.get("recorded", time.time()),
                    qor.get("teil"),
                    qor.get("stage1_teil"),
                    qor.get("chip_area"),
                    qor.get("stage1_chip_area"),
                    qor.get("core_target_area"),
                    qor.get("area_vs_target"),
                    qor.get("overflow"),
                    qor.get("residual_overlap"),
                    qor.get("wall_seconds"),
                    qor.get("moves"),
                    qor.get("moves_per_sec"),
                    qor.get("temperatures"),
                    int(bool(qor.get("truncated"))),
                    len(qor.get("failures") or ()),
                    json.dumps(qor.get("stage_times", {}), sort_keys=True),
                    json.dumps(qor.get("metrics", {}), sort_keys=True),
                    json.dumps(qor.get("failures", []), sort_keys=True),
                ),
            )

    # -- queries ------------------------------------------------------------

    @staticmethod
    def _row_to_dict(row: sqlite3.Row) -> Dict[str, Any]:
        out = dict(row)
        for key in ("host_json", "config_json", "stage_times_json",
                    "metrics_json", "failures_json"):
            if key in out:
                value = out.pop(key)
                out[key[: -len("_json")]] = json.loads(value) if value else None
        return out

    def runs(
        self,
        circuit: Optional[str] = None,
        limit: int = 50,
        with_qor_only: bool = False,
    ) -> List[Dict[str, Any]]:
        """Most-recent-first run rows, joined with their QoR record."""
        query = (
            "SELECT runs.*, qor.teil, qor.chip_area, qor.area_vs_target,"
            " qor.overflow, qor.wall_seconds, qor.moves_per_sec, qor.truncated"
            " FROM runs {join} qor ON qor.run_id = runs.run_id {where}"
            " ORDER BY runs.created DESC LIMIT ?"
        )
        join = "JOIN" if with_qor_only else "LEFT JOIN"
        clauses, params = [], []
        if circuit is not None:
            clauses.append("runs.circuit = ?")
            params.append(circuit)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        cursor = self._conn.execute(
            query.format(join=join, where=where), (*params, limit)
        )
        return [self._row_to_dict(r) for r in cursor.fetchall()]

    def get_run(self, run_id: str) -> Dict[str, Any]:
        """One run row (manifest columns) by exact id or unique prefix."""
        row = self._conn.execute(
            "SELECT * FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        if row is None:
            rows = self._conn.execute(
                "SELECT * FROM runs WHERE run_id LIKE ? ORDER BY created",
                (run_id + "%",),
            ).fetchall()
            if not rows:
                raise RegistryError(f"no run {run_id!r} in {self.path}")
            if len(rows) > 1:
                ids = ", ".join(r["run_id"] for r in rows[:5])
                raise RegistryError(f"ambiguous run id {run_id!r}: {ids}")
            row = rows[0]
        return self._row_to_dict(row)

    def get_qor(self, run_id: str) -> Dict[str, Any]:
        """A run's QoR record by exact id or unique prefix."""
        run = self.get_run(run_id)
        row = self._conn.execute(
            "SELECT * FROM qor WHERE run_id = ?", (run["run_id"],)
        ).fetchone()
        if row is None:
            raise RegistryError(f"run {run['run_id']} has no QoR record yet")
        out = self._row_to_dict(row)
        out["circuit"] = run.get("circuit")
        out["circuit_sha256"] = run.get("circuit_sha256")
        out["config_sha256"] = run.get("config_sha256")
        out["status"] = run.get("status")
        return out

    def latest_run_id(self, with_qor: bool = True) -> Optional[str]:
        """The most recently created run (with a QoR record by default)."""
        if with_qor:
            row = self._conn.execute(
                "SELECT runs.run_id FROM runs JOIN qor ON qor.run_id = runs.run_id"
                " ORDER BY runs.created DESC LIMIT 1"
            ).fetchone()
        else:
            row = self._conn.execute(
                "SELECT run_id FROM runs ORDER BY created DESC LIMIT 1"
            ).fetchone()
        return row["run_id"] if row is not None else None

    def baseline(
        self,
        circuit_sha256: str,
        config_sha256: Optional[str] = None,
        exclude_run: Optional[str] = None,
        window: int = 5,
    ) -> Optional[Dict[str, Any]]:
        """A rolling baseline: per-metric means over the last ``window``
        completed, untruncated runs of the same circuit (and config, when
        ``config_sha256`` is given).  None when no prior run qualifies."""
        clauses = [
            "runs.circuit_sha256 = ?",
            "qor.truncated = 0",
            "runs.status IN ('ok')",
        ]
        params: List[Any] = [circuit_sha256]
        if config_sha256 is not None:
            clauses.append("runs.config_sha256 = ?")
            params.append(config_sha256)
        if exclude_run is not None:
            clauses.append("runs.run_id != ?")
            params.append(exclude_run)
        rows = self._conn.execute(
            "SELECT qor.* FROM qor JOIN runs ON runs.run_id = qor.run_id"
            f" WHERE {' AND '.join(clauses)}"
            " ORDER BY runs.created DESC LIMIT ?",
            (*params, window),
        ).fetchall()
        if not rows:
            return None
        out: Dict[str, Any] = {
            "run_id": f"baseline[{len(rows)}]",
            "window": len(rows),
            "members": [r["run_id"] for r in rows],
        }
        for metric in QOR_METRICS:
            values = [r[metric] for r in rows if r[metric] is not None]
            out[metric] = sum(values) / len(values) if values else None
        return out

    # -- bench trajectory ---------------------------------------------------

    def record_bench(
        self, name: str, config_sha256: Optional[str], payload: Dict[str, Any]
    ) -> int:
        """Append one benchmark result; returns its row id."""
        cursor = self._write(
            "INSERT INTO bench(recorded, name, config_sha256, payload_json)"
            " VALUES(?,?,?,?)",
            (
                payload.get("recorded", time.time()),
                name,
                config_sha256,
                json.dumps(payload, sort_keys=True, default=str),
            ),
        )
        return int(cursor.lastrowid)

    def bench_history(
        self,
        name: str,
        config_sha256: Optional[str] = None,
        limit: int = 20,
    ) -> List[Dict[str, Any]]:
        """Oldest-first trailing history of one bench's recorded results."""
        clauses, params = ["name = ?"], [name]
        if config_sha256 is not None:
            clauses.append("config_sha256 = ?")
            params.append(config_sha256)
        rows = self._conn.execute(
            f"SELECT * FROM bench WHERE {' AND '.join(clauses)}"
            " ORDER BY recorded DESC, id DESC LIMIT ?",
            (*params, limit),
        ).fetchall()
        out = []
        for row in reversed(rows):
            entry = {
                "id": row["id"],
                "recorded": row["recorded"],
                "config_sha256": row["config_sha256"],
            }
            entry.update(json.loads(row["payload_json"]))
            out.append(entry)
        return out
