"""Live flow monitoring: render a rundir's manifest + heartbeat.

``python -m repro status <rundir>`` prints one snapshot; ``watch``
re-renders on an interval (line-mode refresh: one compact progress line
per beat, a full header when the phase changes) until the run's final
beat lands.  Both read only the atomic files the run publishes — they
never touch the run's process.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional, TextIO, Union

from .heartbeat import read_heartbeat
from .recorder import RunRecorder

#: Heartbeats older than this (seconds) are flagged as stale in renders.
STALE_AFTER = 30.0

#: Terminal phases: a watch stops once one of these lands.
FINAL_PHASES = ("done", "failed", "interrupted")


def classify_state(
    beat: Optional[Dict[str, Any]],
    now: Optional[float] = None,
    stale_after: float = STALE_AFTER,
) -> str:
    """The run state implied by a heartbeat document (None = pending).

    ``running`` / ``stale`` for live beats (staleness from the beat's
    age; a final beat never goes stale), ``done`` / ``failed`` /
    ``interrupted`` once a terminal beat lands.  This is the single
    classifier shared by ``status``/``watch``, the ``status`` exit
    codes, and the observability server's fleet view.
    """
    if beat is None:
        return "pending"
    phase = beat.get("phase")
    if beat.get("final") or phase in FINAL_PHASES:
        return phase if phase in FINAL_PHASES else "done"
    now = now if now is not None else time.time()
    age = max(0.0, now - float(beat.get("updated", now)))
    return "stale" if age > stale_after else "running"


def beat_age(
    beat: Optional[Dict[str, Any]], now: Optional[float] = None
) -> Optional[float]:
    """Seconds since the beat was written (None when there is no beat)."""
    if beat is None or "updated" not in beat:
        return None
    now = now if now is not None else time.time()
    return round(max(0.0, now - float(beat["updated"])), 3)


def load_rundir(rundir: Union[str, Path]) -> Dict[str, Any]:
    """Everything a monitor can know about a rundir (missing parts None)."""
    rundir = Path(rundir)
    manifest = None
    manifest_path = rundir / RunRecorder.MANIFEST_NAME
    if manifest_path.is_file():
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    qor = None
    qor_path = rundir / RunRecorder.QOR_NAME
    if qor_path.is_file():
        qor = json.loads(qor_path.read_text(encoding="utf-8"))
    return {
        "rundir": str(rundir),
        "manifest": manifest,
        "heartbeat": read_heartbeat(rundir / RunRecorder.HEARTBEAT_NAME),
        "qor": qor,
    }


def _fmt(value: Any, digits: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def progress_line(beat: Dict[str, Any]) -> str:
    """One compact live-progress line from a heartbeat document."""
    parts = [f"[{beat.get('phase', '?')}]"]
    for key, label in (
        ("stage", "stage"),
        ("step", "step"),
        ("T", "T"),
        ("acceptance", "acc"),
        ("cost", "cost"),
        ("c1", "c1"),
        ("c2", "c2"),
        ("c3", "c3"),
        ("round", "round"),
        ("nets_done", "nets"),
        ("eta_steps", "eta_steps"),
        ("eta_seconds", "eta_s"),
        ("status", "status"),
    ):
        if key in beat and beat[key] is not None:
            parts.append(f"{label}={_fmt(beat[key])}")
    if isinstance(beat.get("chains"), dict) and beat["chains"]:
        chains = beat["chains"]
        summary = " ".join(
            f"{cid}:{_fmt(chains[cid].get('cost'))}"
            f"{'*' if chains[cid].get('done') else ''}"
            for cid in sorted(chains, key=str)
        )
        parts.append(f"chains[{summary}]")
    return " ".join(parts)


def render_status(info: Dict[str, Any], now: Optional[float] = None) -> str:
    """The full status block for one rundir."""
    now = now if now is not None else time.time()
    lines = [f"rundir   {info['rundir']}"]
    manifest = info.get("manifest")
    if manifest is not None:
        circuit = manifest.get("circuit", {})
        config = manifest.get("config", {})
        parallel = config.get("values", {}).get("parallel", {})
        lines.append(f"run      {manifest.get('run_id')}")
        lines.append(
            f"circuit  {circuit.get('name')} ({circuit.get('cells')} cells, "
            f"{circuit.get('nets')} nets)  sha {str(circuit.get('sha256'))[:12]}"
        )
        lines.append(
            f"config   sha {str(config.get('sha256'))[:12]}  "
            f"seed {config.get('values', {}).get('seed')}  "
            f"chains {parallel.get('chains', 1)}  "
            f"workers {parallel.get('workers', 1)}"
        )
        if manifest.get("resumed_from"):
            lines.append(f"resumed  {manifest['resumed_from']}")
    else:
        lines.append("run      (no manifest yet)")
    beat = info.get("heartbeat")
    if beat is not None:
        age = max(0.0, now - float(beat.get("updated", now)))
        stale = "  [STALE]" if classify_state(beat, now) == "stale" else ""
        lines.append(f"beat     #{beat.get('seq')}  {age:.1f}s ago{stale}")
        lines.append("live     " + progress_line(beat))
    else:
        lines.append("beat     (no heartbeat yet)")
    qor = info.get("qor")
    if qor is not None:
        lines.append(
            "qor      "
            f"teil {_fmt(qor.get('teil'), 6)}  "
            f"area {_fmt(qor.get('chip_area'), 6)}  "
            f"overflow {_fmt(qor.get('overflow'))}  "
            f"wall {_fmt(qor.get('wall_seconds'))}s"
            + ("  TRUNCATED" if qor.get("truncated") else "")
        )
    return "\n".join(lines)


def watch(
    rundir: Union[str, Path],
    interval: float = 1.0,
    max_updates: Optional[int] = None,
    stream: Optional[TextIO] = None,
) -> int:
    """Line-mode watch: print a progress line whenever the heartbeat
    advances, until a final beat (exit 0) or ``max_updates`` renders
    (exit 0) — or immediately exit 1 if the rundir never produces one.
    """
    stream = stream if stream is not None else sys.stdout
    rundir = Path(rundir)
    last_seq: Optional[int] = None
    last_phase: Optional[str] = None
    updates = 0
    polls = 0
    saw_beat = False
    while True:
        beat = read_heartbeat(rundir / RunRecorder.HEARTBEAT_NAME)
        if beat is not None and beat.get("seq") != last_seq:
            saw_beat = True
            last_seq = beat.get("seq")
            if beat.get("phase") != last_phase:
                last_phase = beat.get("phase")
                run_id = beat.get("run_id") or "?"
                print(f"-- {run_id} entered phase {last_phase}", file=stream)
            age = max(0.0, time.time() - float(beat.get("updated", 0.0)))
            print(f"{progress_line(beat)}  ({age:.1f}s ago)", file=stream, flush=True)
            updates += 1
            if beat.get("final") or beat.get("phase") in FINAL_PHASES:
                return 0
        polls += 1
        # Silent polls count toward max_updates too, so a rundir that
        # never produces a beat cannot hang a bounded watch.
        if max_updates is not None and (
            updates >= max_updates or (not saw_beat and polls >= max_updates)
        ):
            return 0 if saw_beat else 1
        time.sleep(interval)
