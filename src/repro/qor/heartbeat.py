"""Atomic heartbeat files: live progress of an in-flight flow run.

A heartbeat is a single small JSON document, rewritten in place at
natural progress boundaries (temperature steps of the annealer, round
boundaries of the multi-chain coordinator, net batches of the router).
``python -m repro status`` and ``watch`` read it; nothing in the flow
ever blocks on it.

Two constraints shape the implementation:

1. *Atomicity.*  Every write goes to a temp file in the target
   directory followed by ``os.replace``, so a reader can never observe
   a partially-written document — it sees either the previous complete
   beat or the new one.  (This is the same discipline checkpoints use.)
2. *Zero cost when disabled.*  The ambient heartbeat defaults to
   :data:`NULL_HEARTBEAT` (``enabled = False``); instrumented loops pay
   one attribute read and a branch, exactly like the tracer.

The writer keeps a monotonically increasing ``seq`` and stamps every
beat with a wall-clock ``updated`` time so monitors can report
staleness.  ``min_interval`` throttles the file traffic of very fast
loops; a phase change or a ``final`` beat always writes.
"""

from __future__ import annotations

import contextvars
import json
import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

#: Schema tag written into every heartbeat document.
HEARTBEAT_VERSION = 1


class NullHeartbeat:
    """The default (disabled) heartbeat: drops every beat."""

    enabled = False

    def beat(self, phase: str, final: bool = False, **fields: Any) -> None:
        pass

    def set_context(self, **fields: Any) -> None:
        pass


class HeartbeatWriter:
    """Writes atomic heartbeat documents to ``path``.

    ``context`` fields (e.g. the current flow stage) are merged into
    every subsequent beat until overwritten; per-beat ``fields`` win
    over context on collision.  When ``metrics_textfile`` is set, each
    written beat is also rendered to Prometheus text format (the
    node-exporter textfile-collector contract) at that path, again
    atomically.
    """

    enabled = True

    def __init__(
        self,
        path: Union[str, Path],
        run_id: Optional[str] = None,
        min_interval: float = 0.0,
        metrics_textfile: Optional[Union[str, Path]] = None,
    ) -> None:
        if min_interval < 0:
            raise ValueError("min_interval must be non-negative")
        self.path = Path(path)
        self.run_id = run_id
        self.min_interval = min_interval
        self.metrics_textfile = (
            Path(metrics_textfile) if metrics_textfile is not None else None
        )
        self._context: Dict[str, Any] = {}
        self._seq = 0
        self._last_write = 0.0
        self._last_phase: Optional[str] = None

    def set_context(self, **fields: Any) -> None:
        """Merge fields into every subsequent beat (None deletes)."""
        for key, value in fields.items():
            if value is None:
                self._context.pop(key, None)
            else:
                self._context[key] = value

    def beat(self, phase: str, final: bool = False, **fields: Any) -> None:
        """Publish one heartbeat.  Throttled by ``min_interval`` except
        on a phase change or a ``final`` beat."""
        now = time.monotonic()
        if (
            not final
            and phase == self._last_phase
            and self.min_interval > 0
            and now - self._last_write < self.min_interval
        ):
            return
        self._seq += 1
        doc: Dict[str, Any] = {
            "v": HEARTBEAT_VERSION,
            "run_id": self.run_id,
            "phase": phase,
            "seq": self._seq,
            "updated": time.time(),
            "final": final,
        }
        doc.update(self._context)
        doc.update(fields)
        _atomic_write(self.path, json.dumps(doc, separators=(",", ":"), default=str))
        if self.metrics_textfile is not None:
            from .prometheus import render_prometheus

            _atomic_write(self.metrics_textfile, render_prometheus(doc))
        self._last_write = now
        self._last_phase = phase


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file and
    ``os.replace``, so concurrent readers never see a partial file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def read_heartbeat(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """The latest heartbeat document, or None when no beat exists yet.

    Because writes are atomic, a successfully opened file always parses;
    a vanished or unreadable file reads as "no heartbeat yet" rather
    than raising, so monitors can poll a rundir that is still warming up.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return None
    if not text.strip():
        return None
    return json.loads(text)


#: The process-wide disabled heartbeat; ``current_heartbeat`` falls back to it.
NULL_HEARTBEAT = NullHeartbeat()

_CURRENT: "contextvars.ContextVar[Any]" = contextvars.ContextVar(
    "repro_heartbeat", default=NULL_HEARTBEAT
)


def current_heartbeat():
    """The heartbeat installed by the innermost :func:`use_heartbeat`
    block (the disabled :data:`NULL_HEARTBEAT` outside any block)."""
    return _CURRENT.get()


@contextmanager
def use_heartbeat(heartbeat) -> Iterator[Any]:
    """Install ``heartbeat`` as the ambient heartbeat for the dynamic
    extent of the block (contextvar-based, like ``use_tracer``)."""
    token = _CURRENT.set(heartbeat)
    try:
        yield heartbeat
    finally:
        _CURRENT.reset(token)
