"""Atomic heartbeat files: live progress of an in-flight flow run.

A heartbeat is a single small JSON document, rewritten in place at
natural progress boundaries (temperature steps of the annealer, round
boundaries of the multi-chain coordinator, net batches of the router).
``python -m repro status`` and ``watch`` read it; nothing in the flow
ever blocks on it.

Two constraints shape the implementation:

1. *Atomicity.*  Every write goes to a temp file in the target
   directory followed by ``os.replace``, so a reader can never observe
   a partially-written document — it sees either the previous complete
   beat or the new one.  (This is the same discipline checkpoints use.)
2. *Zero cost when disabled.*  The ambient heartbeat defaults to
   :data:`NULL_HEARTBEAT` (``enabled = False``); instrumented loops pay
   one attribute read and a branch, exactly like the tracer.

The writer keeps a monotonically increasing ``seq`` and stamps every
beat with a wall-clock ``updated`` time so monitors can report
staleness.  ``min_interval`` throttles the file traffic of very fast
loops; a phase change or a ``final`` beat always writes.

Alongside the snapshot, the writer appends every published beat to a
bounded history ring (``heartbeat.history.jsonl``): an append-only JSONL
file that is atomically compacted back down to the newest
``history_limit`` entries whenever it grows past twice that bound.  The
observability server tails the ring to stream progress (SSE) and to
compute anneal-health analytics without ever racing the writer: appends
are line-buffered, compaction goes through the same temp-file +
``os.replace`` discipline as the snapshot, and readers treat a torn
final line as "not yet written".

Each compaction stamps the rewritten ring with a **generation marker**
(a first line of the form ``{"ring": {...}}``, not a beat): a reader
that re-reads the file around a compaction can tell the pre- and
post-truncation images apart by generation instead of guessing from
file size, and a writer that re-attaches to an existing ring (a retried
service job re-running in the same rundir) continues the generation
sequence rather than restarting it.  :func:`read_history` skips the
markers; :func:`ring_generation` exposes the newest one.
"""

from __future__ import annotations

import contextvars
import json
import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

#: Schema tag written into every heartbeat document.
HEARTBEAT_VERSION = 1

#: Default bound on the heartbeat history ring (entries kept after a
#: compaction; the file may grow to twice this between compactions).
HISTORY_LIMIT = 512

#: Key that distinguishes a ring generation-marker line from a beat.
RING_MARKER_KEY = "ring"


def history_path(snapshot_path: Union[str, Path]) -> Path:
    """The history-ring path for a heartbeat snapshot path
    (``heartbeat.json`` → ``heartbeat.history.jsonl``)."""
    snapshot_path = Path(snapshot_path)
    return snapshot_path.with_name(snapshot_path.stem + ".history.jsonl")


class NullHeartbeat:
    """The default (disabled) heartbeat: drops every beat."""

    enabled = False

    def beat(self, phase: str, final: bool = False, **fields: Any) -> None:
        pass

    def set_context(self, **fields: Any) -> None:
        pass


class HeartbeatWriter:
    """Writes atomic heartbeat documents to ``path``.

    ``context`` fields (e.g. the current flow stage) are merged into
    every subsequent beat until overwritten; per-beat ``fields`` win
    over context on collision.  When ``metrics_textfile`` is set, each
    written beat is also rendered to Prometheus text format (the
    node-exporter textfile-collector contract) at that path, again
    atomically.

    ``history_limit`` bounds the history ring next to the snapshot
    (``0`` disables it entirely).
    """

    enabled = True

    def __init__(
        self,
        path: Union[str, Path],
        run_id: Optional[str] = None,
        min_interval: float = 0.0,
        metrics_textfile: Optional[Union[str, Path]] = None,
        history_limit: int = HISTORY_LIMIT,
    ) -> None:
        if min_interval < 0:
            raise ValueError("min_interval must be non-negative")
        if history_limit < 0:
            raise ValueError("history_limit must be non-negative")
        self.path = Path(path)
        self.run_id = run_id
        self.min_interval = min_interval
        self.metrics_textfile = (
            Path(metrics_textfile) if metrics_textfile is not None else None
        )
        self.history_limit = history_limit
        self.history_path = history_path(self.path) if history_limit else None
        self._history_appends = 0
        self._ring_generation = 0
        if self.history_path is not None and self.history_path.exists():
            # Re-attaching to an existing ring (e.g. a retried service
            # job re-running in the same rundir): continue its
            # generation sequence so tailers see it advance, never reset.
            try:
                self._ring_generation = ring_generation(self.history_path)
            except OSError:
                pass
        self._context: Dict[str, Any] = {}
        self._seq = 0
        self._last_write = 0.0
        self._last_phase: Optional[str] = None

    def set_context(self, **fields: Any) -> None:
        """Merge fields into every subsequent beat (None deletes)."""
        for key, value in fields.items():
            if value is None:
                self._context.pop(key, None)
            else:
                self._context[key] = value

    def beat(self, phase: str, final: bool = False, **fields: Any) -> None:
        """Publish one heartbeat.  Throttled by ``min_interval`` except
        on a phase change or a ``final`` beat."""
        now = time.monotonic()
        if (
            not final
            and phase == self._last_phase
            and self.min_interval > 0
            and now - self._last_write < self.min_interval
        ):
            return
        self._seq += 1
        doc: Dict[str, Any] = {
            "v": HEARTBEAT_VERSION,
            "run_id": self.run_id,
            "phase": phase,
            "seq": self._seq,
            "updated": time.time(),
            "final": final,
        }
        doc.update(self._context)
        doc.update(fields)
        text = json.dumps(doc, separators=(",", ":"), default=str)
        _atomic_write(self.path, text)
        if self.history_path is not None:
            self._append_history(text)
        if self.metrics_textfile is not None:
            from .prometheus import render_prometheus

            _atomic_write(self.metrics_textfile, render_prometheus(doc))
        self._last_write = now
        self._last_phase = phase

    def _append_history(self, line: str) -> None:
        """Append one beat to the history ring, compacting when the file
        has grown to twice the configured bound.  Ring failures never
        propagate into the instrumented loop: the snapshot is the source
        of truth, the ring is best-effort."""
        try:
            with open(self.history_path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
            self._history_appends += 1
            if self._history_appends >= 2 * self.history_limit:
                self._compact_history()
        except OSError:
            pass

    def _compact_history(self) -> None:
        """Atomically rewrite the ring down to the newest entries,
        stamped with a fresh generation marker.  A reader that observes
        the file twice around the swap can order the two images by
        generation instead of inferring from size."""
        lines = [
            line
            for line in self.history_path.read_text(encoding="utf-8").splitlines()
            if line.strip() and not _is_ring_marker(line)
        ]
        keep = lines[-self.history_limit:]
        self._ring_generation += 1
        marker = json.dumps(
            {
                RING_MARKER_KEY: {
                    "v": HEARTBEAT_VERSION,
                    "generation": self._ring_generation,
                    "kept": len(keep),
                    "compacted": time.time(),
                }
            },
            separators=(",", ":"),
        )
        _atomic_write(self.history_path, "\n".join([marker, *keep]) + "\n")
        self._history_appends = len(keep)


def _is_ring_marker(line: str) -> bool:
    """Cheap syntactic test for a generation-marker line (avoids a JSON
    parse per line on the writer's compaction path)."""
    return line.startswith('{"%s":' % RING_MARKER_KEY)


def ring_generation(path: Union[str, Path]) -> int:
    """The ring's current compaction generation (0 before the first
    compaction, or for a missing ring)."""
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError:
        return 0
    generation = 0
    for line in raw.split("\n"):
        if not _is_ring_marker(line):
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn marker: the previous generation stands
        marker = doc.get(RING_MARKER_KEY)
        if isinstance(marker, dict):
            generation = max(generation, int(marker.get("generation", 0)))
    return generation


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file and
    ``os.replace``, so concurrent readers never see a partial file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def read_heartbeat(
    path: Union[str, Path], retries: int = 2, retry_delay: float = 0.01
) -> Optional[Dict[str, Any]]:
    """The latest heartbeat document, or None when no beat exists yet.

    Because writes are atomic, a successfully opened file always parses
    on POSIX; but ``os.replace`` is not atomic everywhere (and a reader
    can race the very first write), so a vanished, empty, or unparsable
    file is retried ``retries`` times before reading as "no heartbeat
    yet" rather than raising.  Monitors can therefore poll a rundir
    that is still warming up — or mid-replace — without special-casing.
    """
    path = Path(path)
    for attempt in range(retries + 1):
        try:
            text = path.read_text(encoding="utf-8")
            if text.strip():
                return json.loads(text)
        except (OSError, json.JSONDecodeError):
            pass
        if attempt < retries:
            time.sleep(retry_delay)
    return None


def read_history(
    path: Union[str, Path],
    since_seq: Optional[int] = None,
    limit: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Parsed history-ring entries, oldest first.

    ``since_seq`` keeps only beats with ``seq`` strictly greater (the
    resume point of a streaming client); ``limit`` keeps the newest N.
    A torn final line (the writer mid-append) is skipped silently; a
    missing ring reads as empty; compaction generation markers are not
    beats and never appear in the result.
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError:
        return []
    entries: List[Dict[str, Any]] = []
    lines = raw.split("\n")
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                continue  # torn final line: the writer is mid-append
            raise
        if RING_MARKER_KEY in doc and "seq" not in doc:
            continue  # compaction generation marker
        if since_seq is not None and doc.get("seq", 0) <= since_seq:
            continue
        entries.append(doc)
    if limit is not None:
        entries = entries[-limit:]
    return entries


#: The process-wide disabled heartbeat; ``current_heartbeat`` falls back to it.
NULL_HEARTBEAT = NullHeartbeat()

_CURRENT: "contextvars.ContextVar[Any]" = contextvars.ContextVar(
    "repro_heartbeat", default=NULL_HEARTBEAT
)


def current_heartbeat():
    """The heartbeat installed by the innermost :func:`use_heartbeat`
    block (the disabled :data:`NULL_HEARTBEAT` outside any block)."""
    return _CURRENT.get()


@contextmanager
def use_heartbeat(heartbeat) -> Iterator[Any]:
    """Install ``heartbeat`` as the ambient heartbeat for the dynamic
    extent of the block (contextvar-based, like ``use_tracer``)."""
    token = _CURRENT.set(heartbeat)
    try:
        yield heartbeat
    finally:
        _CURRENT.reset(token)
