"""CLI handlers for the observability commands.

``python -m repro`` delegates here for:

* ``status <rundir>`` / ``watch <rundir>`` — live monitoring of one run;
* ``qor list|show|compare|gate`` — querying and gating the registry.

Exit codes: 0 success/gate passed, 1 gate regression, 2 missing data
(unknown run id, empty registry, no baseline), 4 the run's heartbeat is
stale (``status`` only), 5 the run died — failed or interrupted
(``status`` only).  3 is reserved by ``place`` for interrupted runs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional

from .gate import (
    BENCH_DEFAULT_PCT,
    GateReport,
    GateThresholds,
    MetricDelta,
    compare_records,
    gate_bench_rows,
    gate_records,
)
from .monitor import STALE_AFTER, load_rundir, render_status, watch
from .registry import RegistryError, RunRegistry

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_MISSING = 2
#: 3 is EXIT_INTERRUPTED (a ``place`` run stopped by a signal).
EXIT_STALE = 4
EXIT_DEAD = 5

DEFAULT_REGISTRY = "runs/registry.sqlite"


def add_monitor_commands(subparsers: argparse._SubParsersAction) -> None:
    """Register ``status`` and ``watch`` on the top-level parser."""
    status = subparsers.add_parser(
        "status", help="one-shot snapshot of a rundir's live heartbeat"
    )
    status.add_argument("rundir", help="run directory (--rundir of a flow run)")
    status.add_argument(
        "--json", action="store_true", help="emit the raw manifest/heartbeat/qor JSON"
    )
    status.add_argument(
        "--stale-after",
        type=float,
        default=None,
        metavar="S",
        help="heartbeats older than S seconds exit 4 (default 30)",
    )
    status.set_defaults(func=cmd_status)

    watch_p = subparsers.add_parser(
        "watch", help="follow a rundir's heartbeat until the run finishes"
    )
    watch_p.add_argument("rundir", help="run directory (--rundir of a flow run)")
    watch_p.add_argument(
        "--interval", type=float, default=1.0, help="poll interval in seconds"
    )
    watch_p.add_argument(
        "--max-updates",
        type=int,
        default=None,
        help="stop after N heartbeat renders even if the run is still going",
    )
    watch_p.set_defaults(func=cmd_watch)


def add_qor_commands(subparsers: argparse._SubParsersAction) -> None:
    """Register the ``qor`` command group on the top-level parser."""
    qor = subparsers.add_parser(
        "qor", help="query the run registry; compare and gate QoR records"
    )
    qor_sub = qor.add_subparsers(dest="qor_command", required=True)

    def _registry_arg(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--registry",
            default=DEFAULT_REGISTRY,
            help=f"registry database path (default: {DEFAULT_REGISTRY})",
        )

    list_p = qor_sub.add_parser("list", help="recent runs, newest first")
    _registry_arg(list_p)
    list_p.add_argument("--circuit", default=None, help="filter by circuit name")
    list_p.add_argument("--limit", type=int, default=20)
    list_p.add_argument("--json", action="store_true")
    list_p.set_defaults(func=cmd_qor_list)

    show_p = qor_sub.add_parser("show", help="one run's full QoR record")
    _registry_arg(show_p)
    show_p.add_argument("run", help="run id (or unique prefix)")
    show_p.add_argument("--json", action="store_true")
    show_p.set_defaults(func=cmd_qor_show)

    compare_p = qor_sub.add_parser(
        "compare", help="metric-by-metric delta between two runs"
    )
    _registry_arg(compare_p)
    compare_p.add_argument("candidate", help="run id (or unique prefix)")
    compare_p.add_argument("baseline", help="run id (or unique prefix)")
    compare_p.add_argument("--json", action="store_true")
    compare_p.set_defaults(func=cmd_qor_compare)

    gate_p = qor_sub.add_parser(
        "gate",
        help="gate a run against a baseline run or the rolling baseline;"
        " exits 1 on regression",
    )
    _registry_arg(gate_p)
    gate_p.add_argument(
        "candidate",
        nargs="?",
        default=None,
        help="run id to gate (default: latest run with a QoR record)",
    )
    gate_p.add_argument(
        "--against",
        default=None,
        help="baseline run id; omit to gate against the rolling baseline"
        " (mean of recent matching runs)",
    )
    gate_p.add_argument(
        "--window",
        type=int,
        default=5,
        help="rolling-baseline window (runs) when --against is omitted",
    )
    gate_p.add_argument(
        "--max-teil-regression",
        type=float,
        default=5.0,
        metavar="PCT",
        help="tolerated TEIL worsening in percent (default 5)",
    )
    gate_p.add_argument(
        "--max-area-regression",
        type=float,
        default=5.0,
        metavar="PCT",
        help="tolerated chip-area worsening in percent (default 5)",
    )
    gate_p.add_argument(
        "--max-overflow-increase",
        type=float,
        default=0.0,
        metavar="N",
        help="tolerated absolute overflow increase (default 0)",
    )
    gate_p.add_argument(
        "--max-wall-regression",
        type=float,
        default=None,
        metavar="PCT",
        help="also gate wall time, tolerating PCT percent (off by default)",
    )
    gate_p.add_argument(
        "--bench",
        metavar="NAME",
        default=None,
        help="gate the latest bench history row of NAME (e.g. "
        "moves_per_sec) instead of a QoR run: every *_moves_per_sec "
        "metric is compared higher-is-better against the rolling mean "
        "of prior rows with the same config hash",
    )
    gate_p.add_argument(
        "--max-bench-regression",
        type=float,
        default=BENCH_DEFAULT_PCT,
        metavar="PCT",
        help="tolerated throughput drop per bench metric in percent "
        f"(default {BENCH_DEFAULT_PCT:.0f}; only with --bench)",
    )
    gate_p.add_argument("--json", action="store_true")
    gate_p.set_defaults(func=cmd_qor_gate)


# -- status / watch ---------------------------------------------------------


def cmd_status(args: argparse.Namespace) -> int:
    from .monitor import classify_state

    info = load_rundir(args.rundir)
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True, default=str))
    else:
        print(render_status(info))
    if info["manifest"] is None and info["heartbeat"] is None:
        return EXIT_MISSING
    stale_after = (
        args.stale_after
        if getattr(args, "stale_after", None) is not None
        else STALE_AFTER
    )
    state = classify_state(
        info["heartbeat"], now=time.time(), stale_after=stale_after
    )
    if state in ("failed", "interrupted"):
        return EXIT_DEAD
    if state == "stale":
        return EXIT_STALE
    return EXIT_OK


def cmd_watch(args: argparse.Namespace) -> int:
    try:
        return watch(
            args.rundir, interval=args.interval, max_updates=args.max_updates
        )
    except KeyboardInterrupt:
        return EXIT_OK


# -- qor subcommands --------------------------------------------------------


def _fmt(value: Any, digits: int = 6) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def cmd_qor_list(args: argparse.Namespace) -> int:
    with RunRegistry(args.registry) as registry:
        rows = registry.runs(circuit=args.circuit, limit=args.limit)
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True, default=str))
        return EXIT_OK if rows else EXIT_MISSING
    if not rows:
        print(f"no runs in {args.registry}")
        return EXIT_MISSING
    header = (
        f"{'run_id':<24} {'circuit':<14} {'status':<11} {'teil':>10}"
        f" {'area':>10} {'ovfl':>5} {'wall_s':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['run_id']:<24} {str(row.get('circuit'))[:14]:<14}"
            f" {str(row.get('status')):<11} {_fmt(row.get('teil')):>10}"
            f" {_fmt(row.get('chip_area')):>10} {_fmt(row.get('overflow')):>5}"
            f" {_fmt(row.get('wall_seconds'), 4):>8}"
        )
    return EXIT_OK


def cmd_qor_show(args: argparse.Namespace) -> int:
    with RunRegistry(args.registry) as registry:
        try:
            run = registry.get_run(args.run)
            record = registry.get_qor(args.run)
        except RegistryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_MISSING
    if args.json:
        print(json.dumps({"run": run, "qor": record}, indent=2,
                         sort_keys=True, default=str))
        return EXIT_OK
    print(f"run       {run['run_id']}  ({run.get('status')})")
    print(f"command   {run.get('command')}")
    print(f"circuit   {run.get('circuit')}  sha {str(run.get('circuit_sha256'))[:12]}")
    print(f"config    sha {str(run.get('config_sha256'))[:12]}  seed {run.get('seed')}")
    print(f"parallel  chains {run.get('chains')}  workers {run.get('workers')}")
    print(f"version   {run.get('package_version')}")
    if run.get("resumed_from"):
        print(f"resumed   {run['resumed_from']}")
    print()
    for metric in (
        "teil", "stage1_teil", "chip_area", "stage1_chip_area",
        "core_target_area", "area_vs_target", "overflow", "residual_overlap",
        "wall_seconds", "moves", "moves_per_sec", "temperatures",
    ):
        print(f"  {metric:<18} {_fmt(record.get(metric))}")
    if record.get("truncated"):
        print("  TRUNCATED")
    stage_times = record.get("stage_times") or {}
    if stage_times:
        print()
        print(f"  {'stage':<26} {'calls':>5} {'wall_s':>10} {'cpu_s':>10}")
        for name in sorted(stage_times):
            entry = stage_times[name]
            print(
                f"  {name:<26} {entry.get('calls', 0):>5}"
                f" {_fmt(entry.get('wall_s'), 5):>10}"
                f" {_fmt(entry.get('cpu_s'), 5):>10}"
            )
    return EXIT_OK


def _delta_table(deltas: List[MetricDelta], gated: bool) -> str:
    header = f"{'metric':<18} {'candidate':>12} {'baseline':>12} {'delta':>12} {'pct':>8}"
    if gated:
        header += f" {'limit':>12}  verdict"
    lines = [header, "-" * len(header)]
    for d in deltas:
        line = (
            f"{d.metric:<18} {_fmt(d.candidate):>12} {_fmt(d.baseline):>12}"
            f" {_fmt(d.delta):>12} {_fmt(d.delta_pct, 4):>8}"
        )
        if gated:
            verdict = ""
            if d.limit is not None:
                verdict = "REGRESSED" if d.regressed else "ok"
            line += f" {_fmt(d.limit):>12}  {verdict}"
        lines.append(line)
    return "\n".join(lines)


def _deltas_json(deltas: List[MetricDelta]) -> List[Dict[str, Any]]:
    return [vars(d) for d in deltas]


def cmd_qor_compare(args: argparse.Namespace) -> int:
    with RunRegistry(args.registry) as registry:
        try:
            candidate = registry.get_qor(args.candidate)
            baseline = registry.get_qor(args.baseline)
        except RegistryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_MISSING
    deltas = compare_records(candidate, baseline)
    if args.json:
        print(json.dumps(
            {
                "candidate": candidate["run_id"],
                "baseline": baseline["run_id"],
                "deltas": _deltas_json(deltas),
            },
            indent=2, sort_keys=True, default=str,
        ))
        return EXIT_OK
    print(f"candidate {candidate['run_id']}   baseline {baseline['run_id']}")
    print(_delta_table(deltas, gated=False))
    return EXIT_OK


def cmd_qor_gate(args: argparse.Namespace) -> int:
    if args.bench:
        return _gate_bench(args)
    thresholds = GateThresholds(
        teil_pct=args.max_teil_regression,
        area_pct=args.max_area_regression,
        overflow_abs=args.max_overflow_increase,
        wall_pct=args.max_wall_regression,
    )
    with RunRegistry(args.registry) as registry:
        try:
            candidate_id = args.candidate or registry.latest_run_id()
            if candidate_id is None:
                print(f"error: no completed runs in {args.registry}",
                      file=sys.stderr)
                return EXIT_MISSING
            candidate = registry.get_qor(candidate_id)
            if args.against is not None:
                baseline: Optional[Dict[str, Any]] = registry.get_qor(args.against)
            else:
                baseline = registry.baseline(
                    candidate["circuit_sha256"],
                    config_sha256=candidate["config_sha256"],
                    exclude_run=candidate["run_id"],
                    window=args.window,
                )
                if baseline is None:
                    print(
                        "error: no rolling baseline — no prior completed run"
                        " matches this circuit+config (use --against)",
                        file=sys.stderr,
                    )
                    return EXIT_MISSING
        except RegistryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_MISSING
    report = gate_records(candidate, baseline, thresholds)
    return _emit_gate_report(report, args)


def _gate_bench(args: argparse.Namespace) -> int:
    """Gate the newest bench history row against the rolling mean of
    the prior rows recorded with the same config hash."""
    with RunRegistry(args.registry) as registry:
        history = registry.bench_history(args.bench, limit=args.window + 1)
    if not history:
        print(
            f"error: no '{args.bench}' bench rows in {args.registry}",
            file=sys.stderr,
        )
        return EXIT_MISSING
    candidate = history[-1]
    prior = [
        row
        for row in history[:-1]
        if row.get("config_sha256") == candidate.get("config_sha256")
        and row.get("quick") == candidate.get("quick")
    ]
    if not prior:
        print(
            "error: no prior bench row matches this config hash — "
            "nothing to gate against",
            file=sys.stderr,
        )
        return EXIT_MISSING
    baseline: Dict[str, Any] = {"id": f"mean-of-{len(prior)}"}
    keys = {
        key
        for row in prior
        for key, value in row.items()
        if key.endswith("_moves_per_sec") and isinstance(value, (int, float))
    }
    for key in keys:
        values = [row[key] for row in prior if isinstance(row.get(key), (int, float))]
        baseline[key] = sum(values) / len(values)
    report = gate_bench_rows(candidate, baseline, pct=args.max_bench_regression)
    return _emit_gate_report(report, args)


def _emit_gate_report(report: GateReport, args: argparse.Namespace) -> int:
    if args.json:
        print(json.dumps(
            {
                "candidate": report.candidate_id,
                "baseline": report.baseline_id,
                "ok": report.ok,
                "deltas": _deltas_json(report.deltas),
            },
            indent=2, sort_keys=True, default=str,
        ))
    else:
        print(f"candidate {report.candidate_id}   baseline {report.baseline_id}")
        print(_delta_table(report.deltas, gated=True))
        if report.ok:
            print("GATE PASSED")
        else:
            names = ", ".join(d.metric for d in report.regressions)
            print(f"GATE FAILED: regression in {names}")
    return EXIT_OK if report.ok else EXIT_REGRESSION
