"""Run manifests: the identity and provenance of one flow run.

A manifest answers "what exactly was this run?" — the question every
cross-run comparison (Table 4, the cooling-schedule ablations, the
parallel speedup claims) silently depends on.  It pins:

* a **run id** (timestamp + random suffix, unique per invocation and
  preserved across checkpoint/resume);
* **content hashes** of the circuit (canonical ``.twmc`` text) and the
  configuration (canonical JSON of ``TimberWolfConfig.to_dict()``) —
  two runs are comparable iff both hashes match;
* the seed, chain/worker counts, host facts, and package version.

``manifest.json`` lands in the rundir; the same document seeds the
``runs`` row in the registry.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import secrets
import time
from typing import Any, Dict, Optional

from ..config import TimberWolfConfig
from ..netlist import Circuit, dumps


def package_version() -> str:
    """The installed package version (imported lazily: this module may
    be loaded while ``repro/__init__`` is still executing)."""
    from .. import __version__

    return __version__


def new_run_id(now: Optional[float] = None) -> str:
    """A unique, sortable run id: UTC timestamp plus a random suffix."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime(now))
    return f"{stamp}-{secrets.token_hex(3)}"


def config_fingerprint(config: TimberWolfConfig) -> str:
    """SHA-256 of the config's canonical JSON form.  Runs with equal
    fingerprints annealed under identical knobs."""
    canonical = json.dumps(config.to_dict(), sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def circuit_fingerprint_of(circuit: Circuit) -> str:
    """SHA-256 of the circuit's canonical text serialization (the same
    fingerprint checkpoints use to reject stale resumes)."""
    from ..resilience.checkpoint import circuit_fingerprint

    return circuit_fingerprint(dumps(circuit))


def host_metadata() -> Dict[str, Any]:
    """Host facts stamped into manifests (and bench artifacts): a QoR or
    throughput number is only meaningful relative to its machine."""
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "hostname": platform.node(),
    }


def build_manifest(
    run_id: str,
    circuit: Circuit,
    config: TimberWolfConfig,
    command: str = "place",
    resumed_from: Optional[str] = None,
) -> Dict[str, Any]:
    """The complete manifest document for one run."""
    return {
        "run_id": run_id,
        "created": time.time(),
        "command": command,
        "circuit": {
            "name": circuit.name,
            "cells": circuit.num_cells,
            "nets": circuit.num_nets,
            "pins": circuit.num_pins,
            "sha256": circuit_fingerprint_of(circuit),
        },
        "config": {
            "sha256": config_fingerprint(config),
            "values": config.to_dict(),
        },
        "host": host_metadata(),
        "package_version": package_version(),
        "resumed_from": resumed_from,
    }
