"""Cross-run observability: run registry, QoR records, live monitoring.

This package turns individual flow runs into a queryable population:

* :mod:`~repro.qor.manifest` — run identity (run id, circuit/config
  content hashes, host, package version);
* :mod:`~repro.qor.registry` — the append-only SQLite run registry
  (``runs`` / ``qor`` / ``bench`` tables);
* :mod:`~repro.qor.recorder` — :class:`RunRecorder`, the per-run glue
  (manifest + heartbeat + QoR sink + registry rows);
* :mod:`~repro.qor.heartbeat` — atomic live-progress files with the
  same ambient-contextvar discipline as the tracer;
* :mod:`~repro.qor.monitor` — ``status`` / ``watch`` rendering;
* :mod:`~repro.qor.gate` — QoR comparison and regression gating;
* :mod:`~repro.qor.prometheus` — textfile-collector exposition.
"""

from .gate import (
    BENCH_DEFAULT_PCT,
    COMPARE_METRICS,
    GateReport,
    GateRule,
    GateThresholds,
    MetricDelta,
    bench_throughput_metrics,
    compare_records,
    gate_bench_rows,
    gate_records,
)
from .heartbeat import (
    HEARTBEAT_VERSION,
    HISTORY_LIMIT,
    NULL_HEARTBEAT,
    HeartbeatWriter,
    NullHeartbeat,
    current_heartbeat,
    history_path,
    read_heartbeat,
    read_history,
    use_heartbeat,
)
from .manifest import (
    build_manifest,
    circuit_fingerprint_of,
    config_fingerprint,
    host_metadata,
    new_run_id,
    package_version,
)
from .monitor import load_rundir, progress_line, render_status, watch
from .prometheus import (
    parse_prometheus,
    render_prometheus,
    render_prometheus_fleet,
)
from .recorder import QorSink, RunRecorder, qor_from_result
from .registry import QOR_METRICS, RegistryError, RunRegistry, SCHEMA_VERSION

__all__ = [
    "BENCH_DEFAULT_PCT",
    "COMPARE_METRICS",
    "bench_throughput_metrics",
    "gate_bench_rows",
    "GateReport",
    "GateRule",
    "GateThresholds",
    "HEARTBEAT_VERSION",
    "HISTORY_LIMIT",
    "HeartbeatWriter",
    "MetricDelta",
    "NULL_HEARTBEAT",
    "NullHeartbeat",
    "QOR_METRICS",
    "QorSink",
    "RegistryError",
    "RunRecorder",
    "RunRegistry",
    "SCHEMA_VERSION",
    "build_manifest",
    "circuit_fingerprint_of",
    "compare_records",
    "config_fingerprint",
    "current_heartbeat",
    "gate_records",
    "history_path",
    "host_metadata",
    "load_rundir",
    "new_run_id",
    "package_version",
    "parse_prometheus",
    "progress_line",
    "qor_from_result",
    "read_heartbeat",
    "read_history",
    "render_prometheus",
    "render_prometheus_fleet",
    "render_status",
    "use_heartbeat",
    "watch",
]
