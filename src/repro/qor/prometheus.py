"""Prometheus text-format rendering of a heartbeat document.

The output follows the textfile-collector contract (one ``# TYPE`` line
per metric, ``metric{labels} value`` samples, trailing newline) so an
external node-exporter — or any scraper that understands the Prometheus
exposition format — can watch a fleet of runs by globbing their
``--metrics-textfile`` outputs.  Only numeric heartbeat fields become
samples; strings (phase, stage, run id) travel as labels on
``repro_run_info``.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Tuple

#: Metric-name prefix for every exported sample.
PREFIX = "repro"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(field: str) -> str:
    return f"{PREFIX}_{_NAME_OK.sub('_', field)}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(pairs: Dict[str, str]) -> str:
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(pairs.items())
    )
    return "{" + inner + "}" if inner else ""


def _flatten(doc: Dict[str, Any]) -> Tuple[Dict[str, float], Dict[str, str]]:
    """Split a heartbeat doc into numeric samples and string labels.

    Nested dicts flatten with ``_``-joined keys (``chains.0.cost`` →
    ``chains_0_cost``); booleans become 0/1 gauges.
    """
    numbers: Dict[str, float] = {}
    strings: Dict[str, str] = {}

    def visit(prefix: str, value: Any) -> None:
        if isinstance(value, bool):
            numbers[prefix] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            numbers[prefix] = float(value)
        elif isinstance(value, str):
            strings[prefix] = value
        elif isinstance(value, dict):
            for k, v in value.items():
                visit(f"{prefix}_{k}" if prefix else str(k), v)
        # lists and None are dropped: no stable Prometheus shape.

    for key, value in doc.items():
        visit(str(key), value)
    return numbers, strings


def render_prometheus(doc: Dict[str, Any]) -> str:
    """One heartbeat document as Prometheus exposition text."""
    numbers, strings = _flatten(doc)
    run_labels: Dict[str, str] = {}
    if doc.get("run_id"):
        run_labels["run_id"] = str(doc["run_id"])

    lines: List[str] = []
    info_labels = dict(run_labels)
    for key in ("phase", "stage", "circuit"):
        if key in strings:
            info_labels[key] = strings[key]
    lines.append(f"# TYPE {PREFIX}_run_info gauge")
    lines.append(f"{PREFIX}_run_info{_labels(info_labels)} 1")

    for field in sorted(numbers):
        if field in ("v", "seq"):
            continue
        name = _metric_name(field)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{_labels(run_labels)} {numbers[field]:g}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{name{labels}: value}``.

    A strict little parser used by tests and the CI gate to prove the
    textfile is well-formed; raises ``ValueError`` on any malformed line.
    """
    samples: Dict[str, float] = {}
    sample_re = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})?\s+(-?[0-9.eE+-]+|NaN|[+-]Inf)$"
    )
    for line in text.splitlines():
        if not line.strip() or line.startswith("#"):
            continue
        match = sample_re.match(line)
        if match is None:
            raise ValueError(f"malformed Prometheus sample line: {line!r}")
        name, labels, value = match.groups()
        samples[name + (labels or "")] = float(value)
    return samples
