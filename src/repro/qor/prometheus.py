"""Prometheus text-format rendering of heartbeat documents.

The output follows the textfile-collector contract (one ``# TYPE`` line
per metric, ``metric{labels} value`` samples, trailing newline) so an
external node-exporter — or any scraper that understands the Prometheus
exposition format — can watch a fleet of runs by globbing their
``--metrics-textfile`` outputs.  Only numeric heartbeat fields become
samples; strings (phase, stage, run id) travel as labels on
``repro_run_info``.

:func:`render_prometheus` renders one document (the textfile case);
:func:`render_prometheus_fleet` renders many documents into a single
scrape page — the body of the observability server's ``/metrics``
endpoint — with every sample labelled by ``run_id`` and per-chain
heartbeat entries broken out under a ``chain`` label instead of being
flattened into distinct metric names.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Tuple

#: Metric-name prefix for every exported sample.
PREFIX = "repro"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(field: str) -> str:
    return f"{PREFIX}_{_NAME_OK.sub('_', field)}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(pairs: Dict[str, str]) -> str:
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(pairs.items())
    )
    return "{" + inner + "}" if inner else ""


def _flatten(doc: Dict[str, Any]) -> Tuple[Dict[str, float], Dict[str, str]]:
    """Split a heartbeat doc into numeric samples and string labels.

    Nested dicts flatten with ``_``-joined keys (``chains.0.cost`` →
    ``chains_0_cost``); booleans become 0/1 gauges.
    """
    numbers: Dict[str, float] = {}
    strings: Dict[str, str] = {}

    def visit(prefix: str, value: Any) -> None:
        if isinstance(value, bool):
            numbers[prefix] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            numbers[prefix] = float(value)
        elif isinstance(value, str):
            strings[prefix] = value
        elif isinstance(value, dict):
            for k, v in value.items():
                visit(f"{prefix}_{k}" if prefix else str(k), v)
        # lists and None are dropped: no stable Prometheus shape.

    for key, value in doc.items():
        visit(str(key), value)
    return numbers, strings


def render_prometheus(doc: Dict[str, Any]) -> str:
    """One heartbeat document as Prometheus exposition text."""
    numbers, strings = _flatten(doc)
    run_labels: Dict[str, str] = {}
    if doc.get("run_id"):
        run_labels["run_id"] = str(doc["run_id"])

    lines: List[str] = []
    info_labels = dict(run_labels)
    for key in ("phase", "stage", "circuit"):
        if key in strings:
            info_labels[key] = strings[key]
    lines.append(f"# TYPE {PREFIX}_run_info gauge")
    lines.append(f"{PREFIX}_run_info{_labels(info_labels)} 1")

    for field in sorted(numbers):
        if field in ("v", "seq"):
            continue
        name = _metric_name(field)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{_labels(run_labels)} {numbers[field]:g}")
    return "\n".join(lines) + "\n"


#: Heartbeat bookkeeping fields that never become samples.
_SKIP_FIELDS = ("v", "seq")

#: Per-chain numeric fields broken out under a ``chain`` label.
_CHAIN_FIELDS = ("cost", "done")


def _doc_samples(
    doc: Dict[str, Any], base_labels: Dict[str, str]
) -> List[Tuple[str, Dict[str, str], float]]:
    """One document's ``(metric, labels, value)`` samples plus its
    ``run_info`` sample.  The ``chains`` sub-document becomes
    ``repro_chain_*{chain="..."}`` series rather than one flattened
    metric name per chain id."""
    chains = doc.get("chains")
    body = {k: v for k, v in doc.items() if k != "chains"}
    numbers, strings = _flatten(body)
    samples: List[Tuple[str, Dict[str, str], float]] = []

    info_labels = dict(base_labels)
    for key in ("phase", "stage", "circuit"):
        if key in strings:
            info_labels[key] = strings[key]
    samples.append((f"{PREFIX}_run_info", info_labels, 1.0))

    for field in sorted(numbers):
        if field in _SKIP_FIELDS:
            continue
        samples.append((_metric_name(field), dict(base_labels), numbers[field]))

    if isinstance(chains, dict):
        for cid in sorted(chains, key=str):
            entry = chains[cid]
            if not isinstance(entry, dict):
                continue
            labels = dict(base_labels)
            labels["chain"] = str(cid)
            for field in _CHAIN_FIELDS:
                value = entry.get(field)
                if isinstance(value, bool):
                    value = 1.0 if value else 0.0
                if isinstance(value, (int, float)):
                    samples.append(
                        (f"{PREFIX}_chain_{field}", labels, float(value))
                    )
    return samples


def render_prometheus_fleet(docs: Iterable[Dict[str, Any]]) -> str:
    """Many heartbeat documents as one Prometheus scrape page.

    Samples are grouped by metric name (a single ``# TYPE`` line per
    metric, as the exposition format requires) and labelled with each
    document's ``run_id`` — the shape a real ``/metrics`` endpoint must
    produce when several runs are live at once.
    """
    by_metric: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    order: List[str] = []
    for doc in docs:
        base_labels: Dict[str, str] = {}
        if doc.get("run_id"):
            base_labels["run_id"] = str(doc["run_id"])
        for name, labels, value in _doc_samples(doc, base_labels):
            if name not in by_metric:
                by_metric[name] = []
                order.append(name)
            by_metric[name].append((labels, value))

    lines: List[str] = []
    # run_info first (it anchors the page), then the rest sorted.
    for name in [PREFIX + "_run_info"] + sorted(
        n for n in order if n != PREFIX + "_run_info"
    ):
        if name not in by_metric:
            continue
        lines.append(f"# TYPE {name} gauge")
        for labels, value in by_metric[name]:
            lines.append(f"{name}{_labels(labels)} {value:g}")
    return "\n".join(lines) + "\n" if lines else "\n"


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{name{labels}: value}``.

    A strict little parser used by tests and the CI gate to prove the
    textfile is well-formed; raises ``ValueError`` on any malformed line.
    """
    samples: Dict[str, float] = {}
    sample_re = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})?\s+(-?[0-9.eE+-]+|NaN|[+-]Inf)$"
    )
    for line in text.splitlines():
        if not line.strip() or line.startswith("#"):
            continue
        match = sample_re.match(line)
        if match is None:
            raise ValueError(f"malformed Prometheus sample line: {line!r}")
        name, labels, value = match.groups()
        samples[name + (labels or "")] = float(value)
    return samples
