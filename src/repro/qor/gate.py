"""QoR comparison and regression gating.

``compare_records`` lines two QoR records up metric by metric;
``gate_records`` applies per-metric thresholds and says whether the
candidate *regressed* against the baseline.  The CLI (and CI) exits
non-zero on regression, which is what lets every later perf PR prove
itself against the registry instead of against a screenshot.

Conventions:

* All gated metrics are lower-is-better (TEIL, chip area, overflow,
  wall time).  Percent thresholds tolerate ``baseline * (1 + pct/100)``;
  absolute thresholds tolerate ``baseline + abs``.
* A metric missing on either side is reported but never gates — a
  router-less run cannot fail the overflow gate.
* Wall time is not gated by default (CI machines are noisy); pass
  ``wall_pct`` to opt in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class GateThresholds:
    """Tolerated worsening per metric before the gate trips."""

    teil_pct: float = 5.0
    area_pct: float = 5.0
    overflow_abs: float = 0.0
    wall_pct: Optional[float] = None  # None = informational only

    def rules(self) -> List["GateRule"]:
        rules = [
            GateRule("teil", pct=self.teil_pct),
            GateRule("chip_area", pct=self.area_pct),
            GateRule("area_vs_target", pct=self.area_pct),
            GateRule("overflow", absolute=self.overflow_abs),
        ]
        if self.wall_pct is not None:
            rules.append(GateRule("wall_seconds", pct=self.wall_pct))
        return rules


@dataclass(frozen=True)
class GateRule:
    """One lower-is-better metric and its tolerance."""

    metric: str
    pct: Optional[float] = None
    absolute: Optional[float] = None

    def limit(self, baseline: float) -> float:
        bound = baseline
        if self.pct is not None:
            bound = baseline * (1.0 + self.pct / 100.0)
        if self.absolute is not None:
            bound = max(bound, baseline + self.absolute)
        return bound


@dataclass
class MetricDelta:
    metric: str
    candidate: Optional[float]
    baseline: Optional[float]
    delta: Optional[float] = None
    delta_pct: Optional[float] = None
    limit: Optional[float] = None
    regressed: bool = False


@dataclass
class GateReport:
    """Outcome of gating one candidate record against a baseline."""

    candidate_id: str
    baseline_id: str
    deltas: List[MetricDelta] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


#: Metrics shown by ``qor compare`` (superset of the gated ones).
COMPARE_METRICS = (
    "teil",
    "stage1_teil",
    "chip_area",
    "area_vs_target",
    "overflow",
    "residual_overlap",
    "wall_seconds",
    "moves_per_sec",
    "temperatures",
)


def _delta(metric: str, cand: Optional[float], base: Optional[float]) -> MetricDelta:
    d = MetricDelta(metric, cand, base)
    if cand is not None and base is not None:
        d.delta = round(cand - base, 6)
        d.delta_pct = (
            round(100.0 * (cand - base) / base, 3) if base not in (0, None) else None
        )
    return d


def compare_records(
    candidate: Dict[str, Any], baseline: Dict[str, Any]
) -> List[MetricDelta]:
    """Per-metric deltas between two QoR records (no thresholds)."""
    return [
        _delta(m, candidate.get(m), baseline.get(m)) for m in COMPARE_METRICS
    ]


#: Default tolerated throughput drop (percent) when gating bench rows.
#: Wider than the QoR thresholds: moves/sec is measured on shared CI
#: machines, where a 10-15 % swing is ordinary scheduler noise.
BENCH_DEFAULT_PCT = 25.0


def bench_throughput_metrics(record: Dict[str, Any]) -> List[str]:
    """The higher-is-better throughput keys of one bench history row
    (every numeric ``*_moves_per_sec`` field, per-kind and mixed)."""
    return sorted(
        key
        for key, value in record.items()
        if key.endswith("_moves_per_sec") and isinstance(value, (int, float))
    )


def gate_bench_rows(
    candidate: Dict[str, Any],
    baseline: Dict[str, Any],
    pct: float = BENCH_DEFAULT_PCT,
) -> GateReport:
    """Gate one bench history row against a baseline row (or a
    per-metric mean of prior rows).  Throughput metrics are
    higher-is-better: a metric regresses when the candidate falls more
    than ``pct`` percent below the baseline."""
    report = GateReport(
        candidate_id=str(candidate.get("id", "?")),
        baseline_id=str(baseline.get("id", "?")),
    )
    metrics = sorted(
        set(bench_throughput_metrics(candidate))
        | set(bench_throughput_metrics(baseline))
    )
    for metric in metrics:
        delta = _delta(metric, candidate.get(metric), baseline.get(metric))
        if delta.candidate is not None and delta.baseline is not None:
            delta.limit = round(delta.baseline * (1.0 - pct / 100.0), 6)
            delta.regressed = delta.candidate < delta.limit
        report.deltas.append(delta)
    return report


def gate_records(
    candidate: Dict[str, Any],
    baseline: Dict[str, Any],
    thresholds: Optional[GateThresholds] = None,
) -> GateReport:
    """Apply the thresholds; a metric regresses when the candidate
    exceeds the rule's limit over the baseline."""
    thresholds = thresholds if thresholds is not None else GateThresholds()
    rules = {rule.metric: rule for rule in thresholds.rules()}
    report = GateReport(
        candidate_id=str(candidate.get("run_id", "?")),
        baseline_id=str(baseline.get("run_id", "?")),
    )
    for delta in compare_records(candidate, baseline):
        rule = rules.get(delta.metric)
        if (
            rule is not None
            and delta.candidate is not None
            and delta.baseline is not None
        ):
            delta.limit = round(rule.limit(delta.baseline), 6)
            delta.regressed = delta.candidate > delta.limit
        report.deltas.append(delta)
    return report
