"""RunRecorder: the glue between one flow run and the observability layer.

One recorder per run.  It owns the rundir (``manifest.json``,
``heartbeat.json``, ``qor.json``), the registry rows, the live
heartbeat, and a :class:`QorSink` — the Tracer sink through which span
timings and ``MetricsRegistry`` snapshots flow into the QoR record
automatically, with no flow-layer code aware of the registry at all.

Lifecycle::

    recorder = RunRecorder(rundir, registry=path)
    recorder.begin(circuit, config, command="place")
    tracer = Tracer([recorder.sink, ...])          # QorSink rides along
    with recorder.monitor():                        # ambient heartbeat
        result = place_and_route(circuit, config, tracer=tracer)
    recorder.finish(result)                         # QoR -> registry

A run resumed from a checkpoint passes the checkpoint's ``run_id`` so
the registry keeps a single identity for the whole (interrupted,
resumed, completed) run.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from ..telemetry import Sink
from .heartbeat import HeartbeatWriter, _atomic_write, use_heartbeat
from .manifest import build_manifest, new_run_id
from .registry import RunRegistry


class QorSink(Sink):
    """Aggregates a run's trace stream into QoR building blocks.

    * ``span_end`` events accumulate per-name wall/CPU totals (the
      Table-4 stage rows);
    * ``metrics`` events (``MetricsRegistry.emit`` snapshots, e.g.
      ``stage1.move_metrics``) are kept whole, last write wins;
    * scalar flow checkpoints (``stage1.result``, ``router.interchange``)
      are kept as plain dicts.

    The sink is cheap (a dict update per span close) and never raises
    into the tracer.
    """

    #: Point events captured verbatim (minus bookkeeping fields).
    CAPTURED_EVENTS = ("stage1.result", "stage1.legalized", "router.interchange")

    def __init__(self) -> None:
        self.stage_times: Dict[str, Dict[str, float]] = {}
        self.metrics: Dict[str, Any] = {}
        self.captured: Dict[str, Dict[str, Any]] = {}

    def emit(self, event: Dict[str, Any]) -> None:
        kind = event.get("ev")
        if kind == "span_end":
            name = event.get("name", "?")
            entry = self.stage_times.setdefault(
                name, {"calls": 0, "wall_s": 0.0, "cpu_s": 0.0, "failed": 0}
            )
            entry["calls"] += 1
            entry["wall_s"] = round(entry["wall_s"] + float(event.get("wall_s", 0.0)), 6)
            entry["cpu_s"] = round(entry["cpu_s"] + float(event.get("cpu_s", 0.0)), 6)
            if not event.get("ok", True):
                entry["failed"] += 1
        elif kind == "event":
            name = event.get("name", "")
            if name.endswith("metrics"):
                self.metrics[name] = {
                    k: v
                    for k, v in event.items()
                    if k not in ("ev", "name", "t", "span")
                }
            elif name in self.CAPTURED_EVENTS:
                self.captured[name] = {
                    k: v
                    for k, v in event.items()
                    if k not in ("ev", "name", "t", "span")
                }


def qor_from_result(result, sink: Optional[QorSink] = None) -> Dict[str, Any]:
    """Distill a :class:`~repro.flow.TimberWolfResult` (plus the sink's
    aggregates) into the flat QoR record the registry stores."""
    anneal = result.stage1.anneal
    anneal_seconds = sum(s.seconds for s in anneal.steps)
    moves = anneal.total_attempts
    core = result.state.core
    core_target_area = core.width * core.height
    record: Dict[str, Any] = {
        "teil": round(result.teil, 4),
        "stage1_teil": round(result.stage1_teil, 4),
        "chip_area": round(result.chip_area, 4),
        "stage1_chip_area": round(result.stage1_chip_area, 4),
        "core_target_area": round(core_target_area, 4),
        "area_vs_target": (
            round(result.chip_area / core_target_area, 6)
            if core_target_area > 0
            else None
        ),
        "overflow": result.routed_overflow,
        "residual_overlap": round(result.stage1.residual_overlap, 4),
        "wall_seconds": round(result.elapsed_seconds, 4),
        "moves": moves,
        "moves_per_sec": (
            round(moves / anneal_seconds, 1) if anneal_seconds > 0 else None
        ),
        "temperatures": anneal.num_temperatures,
        "truncated": result.truncated,
        "failures": list(result.failures),
        "budget_report": result.budget_report,
        "resumed_from": result.resumed_from,
    }
    if sink is not None:
        record["stage_times"] = sink.stage_times
        record["metrics"] = sink.metrics
        record["checkpoints"] = sink.captured
    return record


class RunRecorder:
    """Registers, monitors, and records one flow run (see module doc)."""

    MANIFEST_NAME = "manifest.json"
    HEARTBEAT_NAME = "heartbeat.json"
    QOR_NAME = "qor.json"

    def __init__(
        self,
        rundir: Union[str, Path],
        registry: Optional[Union[str, Path, RunRegistry]] = None,
        run_id: Optional[str] = None,
        metrics_textfile: Optional[Union[str, Path]] = None,
        heartbeat_interval: float = 0.0,
        trace_id: Optional[str] = None,
    ) -> None:
        self.rundir = Path(rundir)
        self.rundir.mkdir(parents=True, exist_ok=True)
        self.run_id = run_id if run_id is not None else new_run_id()
        #: Distributed trace identity (telemetry.context); rides in the
        #: manifest, every heartbeat, and the registry row so the obs
        #: server can join a run's artifacts fleet-wide by trace.
        self.trace_id = trace_id
        if isinstance(registry, RunRegistry) or registry is None:
            self._registry = registry
            self._owns_registry = False
        else:
            self._registry = RunRegistry(registry)
            self._owns_registry = True
        self.heartbeat = HeartbeatWriter(
            self.rundir / self.HEARTBEAT_NAME,
            run_id=self.run_id,
            min_interval=heartbeat_interval,
            metrics_textfile=metrics_textfile,
        )
        self.sink = QorSink()
        self.manifest: Optional[Dict[str, Any]] = None

    @property
    def registry(self) -> Optional[RunRegistry]:
        return self._registry

    def begin(
        self,
        circuit,
        config,
        command: str = "place",
        resumed_from: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Write the manifest and register the run (status 'running')."""
        self.manifest = build_manifest(
            self.run_id, circuit, config, command=command, resumed_from=resumed_from
        )
        if self.trace_id is not None:
            self.manifest["trace_id"] = self.trace_id
        _atomic_write(
            self.rundir / self.MANIFEST_NAME,
            json.dumps(self.manifest, indent=2, sort_keys=True, default=str) + "\n",
        )
        if self._registry is not None:
            self._registry.register_run(self.manifest)
        self.heartbeat.set_context(circuit=circuit.name, trace_id=self.trace_id)
        self.heartbeat.beat("start", command=command)
        return self.manifest

    @contextmanager
    def monitor(self) -> Iterator[HeartbeatWriter]:
        """Install this run's heartbeat as the ambient heartbeat."""
        with use_heartbeat(self.heartbeat) as hb:
            yield hb

    def finish(self, result) -> Dict[str, Any]:
        """Record the QoR (rundir + registry) and close out the run."""
        record = qor_from_result(result, self.sink)
        record["run_id"] = self.run_id
        _atomic_write(
            self.rundir / self.QOR_NAME,
            json.dumps(record, indent=2, sort_keys=True, default=str) + "\n",
        )
        status = "truncated" if result.truncated else "ok"
        if self._registry is not None:
            self._registry.record_qor(self.run_id, record)
            self._registry.finish_run(self.run_id, status)
        self.heartbeat.beat(
            "done",
            final=True,
            status=status,
            teil=record["teil"],
            chip_area=record["chip_area"],
            overflow=record["overflow"],
            wall_seconds=record["wall_seconds"],
        )
        self._maybe_close_registry()
        return record

    def interrupted(self, checkpoint_path: Optional[str] = None) -> None:
        """The run was stopped by a signal after checkpointing."""
        if self._registry is not None:
            self._registry.finish_run(self.run_id, "interrupted")
        self.heartbeat.beat(
            "interrupted", final=True, checkpoint=checkpoint_path
        )
        self._maybe_close_registry()

    def failed(self, error: BaseException) -> None:
        """The run died on an unhandled error."""
        if self._registry is not None:
            self._registry.finish_run(self.run_id, "failed")
        self.heartbeat.beat("failed", final=True, error=type(error).__name__)
        self._maybe_close_registry()

    def _maybe_close_registry(self) -> None:
        if self._owns_registry and self._registry is not None:
            self._registry.close()
            self._registry = None
