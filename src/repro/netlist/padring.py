"""Pad-ring generation: fixed I/O cells around the core.

A chip's I/O pads are committed long before block placement, so they
enter the flow as pre-placed cells (:class:`FixedPlacement`).  This
helper builds a ring of pad macros around a core region, evenly spaced
along the four sides, each with one pin facing inward on the named net —
the standard starting point of a chip plan.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from .cell import FixedPlacement, MacroCell
from .pin import Pin, PinKind


def make_pad_ring(
    core_width: float,
    core_height: float,
    signals: Sequence[str],
    pad_width: float = 10.0,
    pad_depth: float = 8.0,
    clearance: float = 4.0,
    name_prefix: str = "pad",
) -> List[MacroCell]:
    """Build fixed pad cells ringing a ``core_width x core_height`` core.

    ``signals`` names the net of each pad, dealt side-major (left, top,
    right, bottom, evenly split).  ``pad_depth`` is the pad's
    extent away from the core; ``clearance`` the gap between the core
    boundary and the pads (the boundary routing channel).  Pads are
    centered on the core (core center at the origin), with their pin on
    the inward-facing edge.
    """
    if core_width <= 0 or core_height <= 0:
        raise ValueError("core dimensions must be positive")
    if not signals:
        raise ValueError("need at least one pad signal")
    if pad_width <= 0 or pad_depth <= 0:
        raise ValueError("pad dimensions must be positive")
    if clearance < 0:
        raise ValueError("clearance must be non-negative")

    num = len(signals)
    per_side = [0, 0, 0, 0]  # left, top, right, bottom
    for i in range(num):
        per_side[i % 4] += 1
    # Deal in side-major order so pads fill sides evenly.
    counts = {
        "left": per_side[0],
        "top": per_side[1],
        "right": per_side[2],
        "bottom": per_side[3],
    }
    capacity = {
        "left": core_height,
        "right": core_height,
        "top": core_width,
        "bottom": core_width,
    }
    for side, count in counts.items():
        if count * pad_width > capacity[side]:
            raise ValueError(
                f"{count} pads of width {pad_width} do not fit on the "
                f"{side} side (span {capacity[side]})"
            )

    hw = core_width / 2.0
    hh = core_height / 2.0
    offset = clearance + pad_depth / 2.0

    pads: List[MacroCell] = []
    cursor = 0

    def positions(count: int, span: float) -> List[float]:
        return [-span / 2 + (k + 0.5) * span / count for k in range(count)]

    for side in ("left", "top", "right", "bottom"):
        count = counts[side]
        if count == 0:
            continue
        if side == "left":
            coords = [(-hw - offset, y) for y in positions(count, core_height)]
            orientation = 0
            pin_offset = (pad_depth / 2.0, 0.0)  # faces right, toward core
        elif side == "right":
            coords = [(hw + offset, y) for y in positions(count, core_height)]
            orientation = 2  # mirrored toward the core
            pin_offset = (pad_depth / 2.0, 0.0)
        elif side == "top":
            coords = [(x, hh + offset) for x in positions(count, core_width)]
            orientation = 3  # pin rotated to face down
            pin_offset = (pad_depth / 2.0, 0.0)
        else:
            coords = [(x, -hh - offset) for x in positions(count, core_width)]
            orientation = 1  # pin rotated to face up
            pin_offset = (pad_depth / 2.0, 0.0)
        for cx, cy in coords:
            net = signals[cursor]
            pads.append(
                MacroCell.rectangular(
                    f"{name_prefix}{cursor}",
                    pad_depth,
                    pad_width,
                    [Pin("io", net, PinKind.FIXED, offset=pin_offset)],
                    fixed=FixedPlacement(cx, cy, orientation),
                )
            )
            cursor += 1
    return pads
