"""A small line-oriented text format for macro/custom cell circuits.

Example::

    circuit demo
    track_spacing 1.0

    macrocell RAM
      tile 0 0 40 30
      tile 40 0 60 10
      pin CLK net clk at 0 15
      pin D0  net bus0 at 60 5 equiv BUSPORT
      instance tall          # optional alternative realizations
        tile 0 0 30 60
        pinat CLK 15 0       # per-instance pin override (else pin offset)
      end
    end

    customcell ALU area 900 aspect 0.5 2.0
      sites 8 pitch 1.0
      pin A net bus0 edge left,right
      pin B net clk group CTL edge top
      pin C net rst seq PINS 0 edge bottom
      pin F net carry at 10 0
    end

    net clk weight 2.0 2.0

Tile and fixed-pin coordinates are in an arbitrary cell-local frame; the
loader recenters every cell on its bounding-box center (the convention
the placer uses).  Net lines are optional and only carry (h, v) weights.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..geometry import Rect, TileSet
from .cell import (
    Cell,
    ContinuousAspectRatio,
    CustomCell,
    DiscreteAspectRatios,
    FixedPlacement,
    MacroCell,
    MacroInstance,
)
from .circuit import Circuit
from .pin import ALL_SIDES, Pin, PinKind


class ParseError(ValueError):
    """Raised on malformed circuit files, with a line number and — when
    the text came from a file — the file's path."""

    def __init__(
        self, lineno: int, message: str, path: Optional[Union[str, Path]] = None
    ):
        where = f"{path}:{lineno}" if path is not None else f"line {lineno}"
        super().__init__(f"{where}: {message}")
        self.lineno = lineno
        self.path = str(path) if path is not None else None
        self.reason = message


def _tokenize(text: str) -> List[Tuple[int, List[str]]]:
    lines = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.split("#", 1)[0].strip()
        if stripped:
            lines.append((lineno, stripped.split()))
    return lines


def _parse_sides(token: str, lineno: int) -> frozenset:
    sides = frozenset(s.strip() for s in token.split(","))
    bad = sides - ALL_SIDES
    if bad:
        raise ParseError(lineno, f"unknown edge name(s): {sorted(bad)}")
    return sides


def _parse_pin(tokens: List[str], lineno: int) -> Pin:
    # pin NAME net NET [at X Y] [edge SIDES] [group G] [seq G IDX] [equiv E]
    if len(tokens) < 4 or tokens[0] != "pin" or tokens[2] != "net":
        raise ParseError(lineno, f"malformed pin line: {' '.join(tokens)}")
    name, net = tokens[1], tokens[3]
    i = 4
    kind = None
    offset = None
    sides = ALL_SIDES
    group = None
    seq_index = None
    equiv = None
    while i < len(tokens):
        word = tokens[i]
        try:
            if word == "at":
                offset = (float(tokens[i + 1]), float(tokens[i + 2]))
                kind = kind or PinKind.FIXED
                i += 3
            elif word == "edge":
                sides = _parse_sides(tokens[i + 1], lineno)
                if kind is None:
                    kind = PinKind.EDGE
                i += 2
            elif word == "group":
                group = tokens[i + 1]
                kind = PinKind.GROUP
                i += 2
            elif word == "seq":
                group = tokens[i + 1]
                seq_index = int(tokens[i + 2])
                kind = PinKind.SEQUENCE
                i += 3
            elif word == "equiv":
                equiv = tokens[i + 1]
                i += 2
            else:
                raise ParseError(lineno, f"unknown pin attribute {word!r}")
        except (IndexError, ValueError) as exc:
            if isinstance(exc, ParseError):
                raise
            raise ParseError(lineno, f"malformed pin attribute near {word!r}") from exc
    if kind is None:
        kind = PinKind.EDGE
    try:
        return Pin(
            name=name,
            net=net,
            kind=kind,
            offset=offset,
            sides=sides,
            group=group,
            sequence_index=seq_index,
            equiv_class=equiv,
        )
    except ValueError as exc:
        raise ParseError(lineno, str(exc)) from exc


def loads(text: str) -> Circuit:
    """Parse a circuit from its text representation."""
    lines = _tokenize(text)
    name = "unnamed"
    track_spacing = 1.0
    cells: List[Cell] = []
    net_weights: Dict[str, Tuple[float, float]] = {}

    i = 0
    while i < len(lines):
        lineno, tokens = lines[i]
        head = tokens[0]
        if head == "circuit":
            if len(tokens) != 2:
                raise ParseError(lineno, "usage: circuit NAME")
            name = tokens[1]
            i += 1
        elif head == "track_spacing":
            track_spacing = float(tokens[1])
            i += 1
        elif head == "net":
            # net NAME weight H V
            if len(tokens) != 5 or tokens[2] != "weight":
                raise ParseError(lineno, "usage: net NAME weight H V")
            net_weights[tokens[1]] = (float(tokens[3]), float(tokens[4]))
            i += 1
        elif head == "macrocell":
            cell, i = _parse_macro(lines, i)
            cells.append(cell)
        elif head == "customcell":
            cell, i = _parse_custom(lines, i)
            cells.append(cell)
        else:
            raise ParseError(lineno, f"unknown directive {head!r}")
    return Circuit(name, cells, track_spacing, net_weights)


def _parse_macro(
    lines: List[Tuple[int, List[str]]], start: int
) -> Tuple[MacroCell, int]:
    lineno, tokens = lines[start]
    if len(tokens) != 2:
        raise ParseError(lineno, "usage: macrocell NAME")
    cell_name = tokens[1]
    tiles: List[Rect] = []
    pins: List[Pin] = []
    fixed: Optional[FixedPlacement] = None
    extra: List[Tuple[str, List[Rect], Dict[str, Tuple[float, float]]]] = []
    i = start + 1
    while i < len(lines):
        lineno, tokens = lines[i]
        if tokens[0] == "end":
            i += 1
            break
        if tokens[0] == "fixed":
            fixed = _parse_fixed(tokens, lineno)
        elif tokens[0] == "tile":
            if len(tokens) != 5:
                raise ParseError(lineno, "usage: tile X1 Y1 X2 Y2")
            try:
                tiles.append(Rect(*(float(t) for t in tokens[1:5])))
            except ValueError as exc:
                raise ParseError(lineno, str(exc)) from exc
        elif tokens[0] == "pin":
            pins.append(_parse_pin(tokens, lineno))
        elif tokens[0] == "instance":
            inst, i = _parse_macro_instance(lines, i, cell_name)
            extra.append(inst)
            continue
        else:
            raise ParseError(lineno, f"unexpected {tokens[0]!r} in macrocell")
        i += 1
    else:
        raise ParseError(lines[start][0], f"macrocell {cell_name!r} missing 'end'")
    if not tiles:
        raise ParseError(lines[start][0], f"macrocell {cell_name!r} has no tiles")
    # Recenter geometry and pin offsets on the bounding-box center.
    shape = TileSet(tiles)
    center = shape.bbox.center
    shape = shape.recentered()
    shifted = []
    for pin in pins:
        if pin.offset is None:
            raise ParseError(
                lines[start][0], f"macro pin {pin.name!r} needs an 'at' location"
            )
        shifted.append(
            Pin(
                name=pin.name,
                net=pin.net,
                kind=PinKind.FIXED,
                offset=(pin.offset[0] - center.x, pin.offset[1] - center.y),
                sides=pin.sides,
                equiv_class=pin.equiv_class,
            )
        )
    instances = [MacroInstance("default", shape)]
    for inst_name, inst_tiles, pinat in extra:
        inst_shape = TileSet(inst_tiles)
        inst_center = inst_shape.bbox.center
        offsets = {
            pin_name: (x - inst_center.x, y - inst_center.y)
            for pin_name, (x, y) in pinat.items()
        }
        instances.append(
            MacroInstance(
                inst_name, inst_shape.recentered(), offsets if offsets else None
            )
        )
    try:
        cell = MacroCell(cell_name, shifted, instances, fixed=fixed)
    except ValueError as exc:
        raise ParseError(lines[start][0], str(exc)) from exc
    return cell, i


def _parse_macro_instance(
    lines: List[Tuple[int, List[str]]], start: int, cell_name: str
) -> Tuple[Tuple[str, List[Rect], Dict[str, Tuple[float, float]]], int]:
    """An ``instance NAME ... end`` block: an alternative realization of
    a macro (its own tiles, plus per-instance ``pinat`` pin overrides).
    Like the cell itself, the geometry is recentered on load."""
    lineno, tokens = lines[start]
    if len(tokens) != 2:
        raise ParseError(lineno, "usage: instance NAME")
    inst_name = tokens[1]
    tiles: List[Rect] = []
    pinat: Dict[str, Tuple[float, float]] = {}
    i = start + 1
    while i < len(lines):
        lineno, tokens = lines[i]
        if tokens[0] == "end":
            i += 1
            break
        if tokens[0] == "tile":
            if len(tokens) != 5:
                raise ParseError(lineno, "usage: tile X1 Y1 X2 Y2")
            try:
                tiles.append(Rect(*(float(t) for t in tokens[1:5])))
            except ValueError as exc:
                raise ParseError(lineno, str(exc)) from exc
        elif tokens[0] == "pinat":
            if len(tokens) != 4:
                raise ParseError(lineno, "usage: pinat PIN X Y")
            try:
                pinat[tokens[1]] = (float(tokens[2]), float(tokens[3]))
            except ValueError as exc:
                raise ParseError(lineno, str(exc)) from exc
        else:
            raise ParseError(lineno, f"unexpected {tokens[0]!r} in instance")
        i += 1
    else:
        raise ParseError(
            lines[start][0],
            f"instance {inst_name!r} of macrocell {cell_name!r} missing 'end'",
        )
    if not tiles:
        raise ParseError(
            lines[start][0],
            f"instance {inst_name!r} of macrocell {cell_name!r} has no tiles",
        )
    return (inst_name, tiles, pinat), i


def _parse_fixed(tokens: List[str], lineno: int) -> FixedPlacement:
    # fixed X Y [ORIENT]
    try:
        x, y = float(tokens[1]), float(tokens[2])
        orient = int(tokens[3]) if len(tokens) > 3 else 0
        return FixedPlacement(x, y, orient)
    except (IndexError, ValueError) as exc:
        raise ParseError(lineno, "usage: fixed X Y [ORIENT]") from exc


def _parse_custom(
    lines: List[Tuple[int, List[str]]], start: int
) -> Tuple[CustomCell, int]:
    lineno, tokens = lines[start]
    # customcell NAME area A aspect LO HI | aspect_list V1,V2,...
    if len(tokens) < 4 or tokens[2] != "area":
        raise ParseError(lineno, "usage: customcell NAME area A aspect LO HI")
    cell_name = tokens[1]
    area = float(tokens[3])
    aspect: Union[ContinuousAspectRatio, DiscreteAspectRatios]
    if len(tokens) >= 7 and tokens[4] == "aspect":
        aspect = ContinuousAspectRatio(float(tokens[5]), float(tokens[6]))
    elif len(tokens) >= 6 and tokens[4] == "aspect_list":
        values = tuple(float(v) for v in tokens[5].split(","))
        aspect = DiscreteAspectRatios(values)
    else:
        raise ParseError(lineno, "customcell needs 'aspect LO HI' or 'aspect_list V,...'")

    sites_per_edge = 8
    pin_pitch = 1.0
    pins: List[Pin] = []
    fixed: Optional[FixedPlacement] = None
    i = start + 1
    while i < len(lines):
        lineno, tokens = lines[i]
        if tokens[0] == "end":
            i += 1
            break
        if tokens[0] == "fixed":
            fixed = _parse_fixed(tokens, lineno)
        elif tokens[0] == "sites":
            sites_per_edge = int(tokens[1])
            if len(tokens) >= 4 and tokens[2] == "pitch":
                pin_pitch = float(tokens[3])
        elif tokens[0] == "pin":
            pins.append(_parse_pin(tokens, lineno))
        else:
            raise ParseError(lineno, f"unexpected {tokens[0]!r} in customcell")
        i += 1
    else:
        raise ParseError(lines[start][0], f"customcell {cell_name!r} missing 'end'")
    try:
        cell = CustomCell(
            cell_name, pins, area, aspect, sites_per_edge, pin_pitch, fixed=fixed
        )
    except ValueError as exc:
        raise ParseError(lines[start][0], str(exc)) from exc
    return cell, i


def load(path: Union[str, Path]) -> Circuit:
    """Read a circuit file from disk.

    Every failure mode — unreadable file, empty file, malformed content —
    surfaces as a :class:`ParseError` that names the file, so callers
    (the CLI, batch drivers) need exactly one except clause and their
    users always learn *which* file was bad.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ParseError(0, f"cannot read circuit file: {exc}", path) from exc
    if not text.strip():
        raise ParseError(0, "circuit file is empty", path)
    try:
        return loads(text)
    except ParseError as exc:
        raise ParseError(exc.lineno, exc.reason, path) from exc


#: Alias mirroring the common ``parse_file`` naming.
parse_file = load


def dumps(circuit: Circuit) -> str:
    """Serialize a circuit back to the text format (round-trip safe)."""
    out: List[str] = [f"circuit {circuit.name}", f"track_spacing {circuit.track_spacing}", ""]
    for cell in circuit.cells.values():
        if isinstance(cell, MacroCell):
            out.append(f"macrocell {cell.name}")
            if cell.fixed is not None:
                out.append(
                    f"  fixed {cell.fixed.x} {cell.fixed.y} {cell.fixed.orientation}"
                )
            inst = cell.instances[0]
            for tile in inst.shape.tiles:
                out.append(f"  tile {tile.x1} {tile.y1} {tile.x2} {tile.y2}")
            for pin in cell.pins.values():
                off = inst.pin_offset(pin)
                line = f"  pin {pin.name} net {pin.net} at {off[0]} {off[1]}"
                if pin.equiv_class:
                    line += f" equiv {pin.equiv_class}"
                out.append(line)
            for alt in cell.instances[1:]:
                out.append(f"  instance {alt.name}")
                for tile in alt.shape.tiles:
                    out.append(
                        f"    tile {tile.x1} {tile.y1} {tile.x2} {tile.y2}"
                    )
                for pin_name, (x, y) in (alt.pin_offsets or {}).items():
                    out.append(f"    pinat {pin_name} {x} {y}")
                out.append("  end")
            out.append("end")
        else:
            assert isinstance(cell, CustomCell)
            if isinstance(cell.aspect, ContinuousAspectRatio):
                aspect = f"aspect {cell.aspect.lo} {cell.aspect.hi}"
            else:
                assert isinstance(cell.aspect, DiscreteAspectRatios)
                aspect = "aspect_list " + ",".join(str(v) for v in cell.aspect.values)
            out.append(f"customcell {cell.name} area {cell.area} {aspect}")
            if cell.fixed is not None:
                out.append(
                    f"  fixed {cell.fixed.x} {cell.fixed.y} {cell.fixed.orientation}"
                )
            out.append(f"  sites {cell.sites_per_edge} pitch {cell.pin_pitch}")
            for pin in cell.pins.values():
                line = f"  pin {pin.name} net {pin.net}"
                if pin.kind is PinKind.FIXED:
                    line += f" at {pin.offset[0]} {pin.offset[1]}"
                else:
                    if pin.kind is PinKind.GROUP:
                        line += f" group {pin.group}"
                    elif pin.kind is PinKind.SEQUENCE:
                        line += f" seq {pin.group} {pin.sequence_index}"
                    if pin.sides != ALL_SIDES:
                        line += " edge " + ",".join(sorted(pin.sides))
                if pin.equiv_class:
                    line += f" equiv {pin.equiv_class}"
                out.append(line)
            out.append("end")
        out.append("")
    for net in circuit.nets.values():
        if net.h_weight != 1.0 or net.v_weight != 1.0:
            out.append(f"net {net.name} weight {net.h_weight} {net.v_weight}")
    return "\n".join(out) + "\n"


def dump(circuit: Circuit, path: Union[str, Path]) -> None:
    """Write a circuit file to disk."""
    Path(path).write_text(dumps(circuit))
