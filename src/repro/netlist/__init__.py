"""Netlist model: cells, pins, nets, circuits, and a text file format."""

from .cell import (
    AspectRatioSpec,
    FixedPlacement,
    Cell,
    ContinuousAspectRatio,
    CustomCell,
    DiscreteAspectRatios,
    MacroCell,
    MacroInstance,
)
from .circuit import Circuit
from .net import Net, PinRef, bounding_span
from .pin import ALL_SIDES, Pin, PinKind, PinSite, make_pin_sites, site_local_position
from .padring import make_pad_ring
from .parser import ParseError, dump, dumps, load, loads, parse_file

__all__ = [
    "AspectRatioSpec",
    "Cell",
    "ContinuousAspectRatio",
    "CustomCell",
    "DiscreteAspectRatios",
    "FixedPlacement",
    "MacroCell",
    "MacroInstance",
    "Circuit",
    "Net",
    "PinRef",
    "bounding_span",
    "ALL_SIDES",
    "Pin",
    "PinKind",
    "PinSite",
    "make_pad_ring",
    "make_pin_sites",
    "site_local_position",
    "ParseError",
    "load",
    "loads",
    "parse_file",
    "dump",
    "dumps",
]
