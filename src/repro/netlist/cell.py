"""Macro and custom cells.

A *macro* cell has fixed geometry — a rectilinear tile union — and fixed
pin locations.  A *custom* cell has an estimated area, an aspect-ratio
range (continuous or discrete), and pins that still need placing.  A cell
of either sort may offer several *instances*, from which TimberWolfMC
selects the most suitable one during annealing (§1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry import TileSet
from .pin import Pin, PinKind, PinSite, make_pin_sites


class AspectRatioSpec:
    """Interface for a custom cell's allowed aspect ratios (height/width)."""

    def contains(self, ar: float) -> bool:
        raise NotImplementedError

    def clamp(self, ar: float) -> float:
        """The closest allowed aspect ratio to ``ar``."""
        raise NotImplementedError

    def default(self) -> float:
        raise NotImplementedError

    def inverted(self, ar: float) -> float:
        """The allowed aspect ratio closest to 1/ar (aspect inversion)."""
        return self.clamp(1.0 / ar)


@dataclass(frozen=True)
class ContinuousAspectRatio(AspectRatioSpec):
    """Aspect ratio allowed anywhere in [lo, hi]."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo <= 0 or self.hi < self.lo:
            raise ValueError(f"bad aspect-ratio range [{self.lo}, {self.hi}]")

    def contains(self, ar: float) -> bool:
        return self.lo <= ar <= self.hi

    def clamp(self, ar: float) -> float:
        return min(self.hi, max(self.lo, ar))

    def default(self) -> float:
        # Prefer square when allowed, else the nearest bound.
        return self.clamp(1.0)


@dataclass(frozen=True)
class DiscreteAspectRatios(AspectRatioSpec):
    """Aspect ratio restricted to an explicit list of values."""

    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("need at least one aspect ratio")
        if any(v <= 0 for v in self.values):
            raise ValueError("aspect ratios must be positive")
        object.__setattr__(self, "values", tuple(sorted(self.values)))

    def contains(self, ar: float) -> bool:
        return ar in self.values

    def clamp(self, ar: float) -> float:
        return min(self.values, key=lambda v: abs(v - ar))

    def default(self) -> float:
        return self.clamp(1.0)


@dataclass(frozen=True)
class MacroInstance:
    """One selectable realization of a macro cell.

    ``shape`` is a tile union centered at the origin in the canonical
    orientation.  ``pin_offsets`` optionally overrides the cell-local pin
    positions for this instance; pins not listed fall back to their own
    ``Pin.offset``.
    """

    name: str
    shape: TileSet
    pin_offsets: Optional[Dict[str, Tuple[float, float]]] = None

    def pin_offset(self, pin: Pin) -> Tuple[float, float]:
        if self.pin_offsets is not None and pin.name in self.pin_offsets:
            return self.pin_offsets[pin.name]
        if pin.offset is None:
            raise ValueError(
                f"instance {self.name!r} has no offset for pin {pin.name!r}"
            )
        return pin.offset


@dataclass(frozen=True)
class FixedPlacement:
    """A pre-placed cell's mandated center and orientation.

    Chip planning regularly starts from committed blocks — pad rings,
    pre-hardened macros — that the annealer must place around.  A cell
    carrying a FixedPlacement is never moved, reoriented, or reshaped.
    """

    x: float
    y: float
    orientation: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.orientation < 8:
            raise ValueError("orientation must be in 0..7")


class Cell:
    """Common behaviour of macro and custom cells."""

    def __init__(
        self,
        name: str,
        pins: Sequence[Pin],
        fixed: Optional[FixedPlacement] = None,
    ):
        if not name:
            raise ValueError("cell needs a non-empty name")
        self.name = name
        self.fixed = fixed
        self.pins: Dict[str, Pin] = {}
        for pin in pins:
            if pin.name in self.pins:
                raise ValueError(f"cell {name!r} has duplicate pin {pin.name!r}")
            self.pins[pin.name] = pin

    @property
    def is_fixed(self) -> bool:
        """True when the cell is pre-placed and must not move."""
        return self.fixed is not None

    @property
    def is_macro(self) -> bool:
        raise NotImplementedError

    @property
    def is_custom(self) -> bool:
        return not self.is_macro

    @property
    def num_pins(self) -> int:
        return len(self.pins)

    def pin(self, name: str) -> Pin:
        try:
            return self.pins[name]
        except KeyError:
            raise KeyError(f"cell {self.name!r} has no pin {name!r}") from None

    def __repr__(self) -> str:
        kind = "MacroCell" if self.is_macro else "CustomCell"
        return f"{kind}({self.name!r}, {self.num_pins} pins)"


class MacroCell(Cell):
    """A cell with fixed rectilinear geometry and fixed pin locations.

    Multiple instances may be supplied; the placer selects among them.
    """

    def __init__(
        self,
        name: str,
        pins: Sequence[Pin],
        instances: Sequence[MacroInstance],
        fixed: Optional[FixedPlacement] = None,
    ):
        super().__init__(name, pins, fixed)
        if not instances:
            raise ValueError(f"macro cell {name!r} needs at least one instance")
        names = [inst.name for inst in instances]
        if len(set(names)) != len(names):
            raise ValueError(f"macro cell {name!r} has duplicate instance names")
        for pin in self.pins.values():
            if pin.kind is not PinKind.FIXED:
                raise ValueError(
                    f"macro cell {name!r} pin {pin.name!r} must be FIXED"
                )
            for inst in instances:
                inst.pin_offset(pin)  # validates availability
        self.instances: Tuple[MacroInstance, ...] = tuple(instances)

    @staticmethod
    def rectangular(
        name: str,
        width: float,
        height: float,
        pins: Sequence[Pin],
        fixed: Optional[FixedPlacement] = None,
    ) -> "MacroCell":
        """Convenience constructor: a single rectangular instance whose pin
        offsets come straight from the pins."""
        shape = TileSet.rectangle(width, height)
        return MacroCell(name, pins, [MacroInstance("default", shape)], fixed)

    @property
    def is_macro(self) -> bool:
        return True

    @property
    def num_instances(self) -> int:
        return len(self.instances)

    def instance(self, index: int) -> MacroInstance:
        return self.instances[index]

    def area(self, instance_index: int = 0) -> float:
        return self.instances[instance_index].shape.area


class CustomCell(Cell):
    """A cell with estimated area, an aspect-ratio range, and movable pins."""

    def __init__(
        self,
        name: str,
        pins: Sequence[Pin],
        area: float,
        aspect: AspectRatioSpec,
        sites_per_edge: int = 8,
        pin_pitch: float = 1.0,
        fixed: Optional[FixedPlacement] = None,
    ):
        super().__init__(name, pins, fixed)
        if area <= 0:
            raise ValueError(f"custom cell {name!r} needs positive area")
        if sites_per_edge < 1:
            raise ValueError("sites_per_edge must be at least 1")
        self._area = area
        self.aspect = aspect
        self.sites_per_edge = sites_per_edge
        self.pin_pitch = pin_pitch

    @property
    def is_macro(self) -> bool:
        return False

    @property
    def area(self) -> float:
        return self._area

    def dimensions(self, aspect_ratio: float) -> Tuple[float, float]:
        """(width, height) realizing the cell area at the given aspect ratio."""
        if not self.aspect.contains(aspect_ratio):
            raise ValueError(
                f"aspect ratio {aspect_ratio} not allowed for cell {self.name!r}"
            )
        width = math.sqrt(self._area / aspect_ratio)
        return (width, width * aspect_ratio)

    def shape_for(self, aspect_ratio: float) -> TileSet:
        """Rectangular tile union for the given aspect ratio, origin-centered."""
        width, height = self.dimensions(aspect_ratio)
        return TileSet.rectangle(width, height)

    def sites_for(self, aspect_ratio: float) -> Tuple[PinSite, ...]:
        """The pin sites on each edge at the given aspect ratio (§2.4)."""
        width, height = self.dimensions(aspect_ratio)
        return make_pin_sites(width, height, self.sites_per_edge, self.pin_pitch)

    def uncommitted_pins(self) -> List[Pin]:
        """Pins whose location is chosen by the annealer (§2.4 cases 2-4)."""
        return [p for p in self.pins.values() if not p.is_committed]

    def pin_groups(self) -> Dict[str, List[Pin]]:
        """Uncommitted pins keyed by group name; loose pins get their own
        singleton group named after the pin."""
        groups: Dict[str, List[Pin]] = {}
        for pin in self.uncommitted_pins():
            key = pin.group if pin.group is not None else f"__pin__{pin.name}"
            groups.setdefault(key, []).append(pin)
        for key, members in groups.items():
            if any(p.kind is PinKind.SEQUENCE for p in members):
                members.sort(key=lambda p: p.sequence_index or 0)
        return groups
