"""Nets: named sets of pins with directional weighting factors.

The TEIC (Eqn 6) weights each net's horizontal span by h(n) and its
vertical span by v(n); when every weight is 1.0 the TEIC equals the total
estimated interconnect length (TEIL).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class PinRef:
    """Reference to a pin: (cell name, pin name)."""

    cell: str
    pin: str

    def __str__(self) -> str:
        return f"{self.cell}.{self.pin}"


@dataclass
class Net:
    """A net connecting two or more pins.

    ``h_weight`` and ``v_weight`` are the paper's h(n) and v(n): relative
    importance of the horizontal and vertical spans in the cost function.
    A designer can, e.g., raise a critical net's weights to shorten it at
    the expense of others.
    """

    name: str
    pins: List[PinRef] = field(default_factory=list)
    h_weight: float = 1.0
    v_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.h_weight < 0 or self.v_weight < 0:
            raise ValueError(f"net {self.name!r} has a negative weight")
        seen = set()
        for ref in self.pins:
            if ref in seen:
                raise ValueError(f"net {self.name!r} lists pin {ref} twice")
            seen.add(ref)

    @property
    def degree(self) -> int:
        return len(self.pins)

    def cells(self) -> List[str]:
        """Names of the distinct cells the net touches, in first-seen order."""
        out: List[str] = []
        seen = set()
        for ref in self.pins:
            if ref.cell not in seen:
                seen.add(ref.cell)
                out.append(ref.cell)
        return out

    def weighted_length(self, x_span: float, y_span: float) -> float:
        """This net's contribution to the TEIC: x(n)h(n) + y(n)v(n)."""
        return x_span * self.h_weight + y_span * self.v_weight


def bounding_span(points: List[Tuple[float, float]]) -> Tuple[float, float]:
    """Half-perimeter spans (x span, y span) of a set of pin positions."""
    if not points:
        return (0.0, 0.0)
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (max(xs) - min(xs), max(ys) - min(ys))
