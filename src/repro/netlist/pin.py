"""Pins and the custom-cell pin placement specifications of §2.4.

Pins on *macro* cells have fixed locations (paper footnote 17).  Pins on
*custom* cells may be specified four ways:

1. a fixed location,
2. assignment to a particular edge or edges of the cell,
3. membership in a *group* of pins assigned to particular edge(s),
4. membership in a *sequence* — a group with a fixed ordering along the
   edge.

Uncommitted pins (cases 2-4) are moved between *pin sites* during the
annealing; a pin site is one of a limited number of evenly spaced slots
along each edge, each with a capacity (§2.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from ..geometry import BOTTOM, LEFT, RIGHT, TOP

ALL_SIDES: FrozenSet[str] = frozenset((LEFT, RIGHT, BOTTOM, TOP))


class PinKind(enum.Enum):
    """How a pin's location is specified (§2.4 cases 1-4)."""

    FIXED = "fixed"
    EDGE = "edge"
    GROUP = "group"
    SEQUENCE = "sequence"


def _normalize_sides(sides: Optional[FrozenSet[str]]) -> FrozenSet[str]:
    if sides is None:
        return ALL_SIDES
    sides = frozenset(sides)
    bad = sides - ALL_SIDES
    if bad:
        raise ValueError(f"unknown cell sides: {sorted(bad)}")
    if not sides:
        raise ValueError("a pin must be allowed on at least one side")
    return sides


@dataclass(frozen=True)
class Pin:
    """A single electrical terminal on a cell.

    ``offset`` is the cell-local (x, y) position relative to the cell
    center in the canonical orientation; it is required for FIXED pins
    and ignored for uncommitted pins (whose position is derived from
    their current pin-site assignment).

    ``equiv_class`` marks electrically-equivalent pins: the global router
    may connect a net through *any one* pin of an equivalence class
    (§4.2, pins P3A/P3B in Figure 10).
    """

    name: str
    net: str
    kind: PinKind = PinKind.FIXED
    offset: Optional[Tuple[float, float]] = None
    sides: FrozenSet[str] = field(default_factory=lambda: ALL_SIDES)
    group: Optional[str] = None
    sequence_index: Optional[int] = None
    equiv_class: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sides", _normalize_sides(self.sides))
        if self.kind is PinKind.FIXED:
            if self.offset is None:
                raise ValueError(f"fixed pin {self.name!r} needs an offset")
        if self.kind in (PinKind.GROUP, PinKind.SEQUENCE) and self.group is None:
            raise ValueError(f"pin {self.name!r} of kind {self.kind} needs a group")
        if self.kind is PinKind.SEQUENCE and self.sequence_index is None:
            raise ValueError(f"sequence pin {self.name!r} needs a sequence_index")

    @property
    def is_committed(self) -> bool:
        """True when the pin's cell-local position never changes."""
        return self.kind is PinKind.FIXED


@dataclass(frozen=True)
class PinSite:
    """One slot for uncommitted pins along a custom-cell edge.

    ``side`` is the edge it lies on (canonical orientation), ``fraction``
    its relative position along that edge in [0, 1], and ``capacity`` the
    number of pin locations the site encompasses (§2.4).
    """

    side: str
    index: int
    fraction: float
    capacity: int

    def __post_init__(self) -> None:
        if self.side not in ALL_SIDES:
            raise ValueError(f"unknown side {self.side!r}")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("site fraction must lie in [0, 1]")
        if self.capacity < 1:
            raise ValueError("site capacity must be at least 1")

    @property
    def key(self) -> Tuple[str, int]:
        return (self.side, self.index)


def make_pin_sites(
    width: float,
    height: float,
    sites_per_edge: int,
    pin_pitch: float = 1.0,
) -> Tuple[PinSite, ...]:
    """Evenly spaced pin sites on all four edges of a rectangle.

    Each site's capacity is the number of ``pin_pitch``-spaced pin
    locations it encompasses, at least one.
    """
    if sites_per_edge < 1:
        raise ValueError("need at least one site per edge")
    if pin_pitch <= 0:
        raise ValueError("pin pitch must be positive")
    sites = []
    for side in (LEFT, RIGHT, BOTTOM, TOP):
        edge_len = height if side in (LEFT, RIGHT) else width
        capacity = max(1, int(edge_len / pin_pitch / sites_per_edge))
        for i in range(sites_per_edge):
            fraction = (i + 0.5) / sites_per_edge
            sites.append(PinSite(side, i, fraction, capacity))
    return tuple(sites)


def site_local_position(
    site: PinSite, width: float, height: float
) -> Tuple[float, float]:
    """Cell-local coordinates (relative to center) of a pin site on a
    ``width`` x ``height`` rectangular custom cell in canonical orientation."""
    hw, hh = width / 2.0, height / 2.0
    if site.side == LEFT:
        return (-hw, -hh + site.fraction * height)
    if site.side == RIGHT:
        return (hw, -hh + site.fraction * height)
    if site.side == BOTTOM:
        return (-hw + site.fraction * width, -hh)
    return (-hw + site.fraction * width, hh)
