"""The circuit: a named collection of cells and the nets connecting them."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .cell import Cell, CustomCell, MacroCell
from .net import Net, PinRef


class Circuit:
    """A macro/custom cell circuit.

    Nets are derived from the ``net`` attribute of every pin on every
    cell; explicit per-net (h, v) weights may be supplied via
    ``net_weights``.  ``track_spacing`` is the paper's t_s — the minimum
    center-to-center wiring pitch, in grid units.
    """

    def __init__(
        self,
        name: str,
        cells: Iterable[Cell],
        track_spacing: float = 1.0,
        net_weights: Optional[Mapping[str, Tuple[float, float]]] = None,
    ):
        if track_spacing <= 0:
            raise ValueError("track spacing must be positive")
        self.name = name
        self.track_spacing = track_spacing
        self.cells: Dict[str, Cell] = {}
        for cell in cells:
            if cell.name in self.cells:
                raise ValueError(f"duplicate cell name {cell.name!r}")
            self.cells[cell.name] = cell
        self.nets: Dict[str, Net] = self._build_nets(net_weights or {})

    def _build_nets(
        self, weights: Mapping[str, Tuple[float, float]]
    ) -> Dict[str, Net]:
        members: Dict[str, List[PinRef]] = {}
        for cell in self.cells.values():
            for pin in cell.pins.values():
                members.setdefault(pin.net, []).append(PinRef(cell.name, pin.name))
        unknown = set(weights) - set(members)
        if unknown:
            raise ValueError(f"weights given for unknown nets: {sorted(unknown)}")
        nets = {}
        for net_name, refs in members.items():
            h, v = weights.get(net_name, (1.0, 1.0))
            nets[net_name] = Net(net_name, refs, h, v)
        return nets

    # -- lookups ---------------------------------------------------------

    def cell(self, name: str) -> Cell:
        try:
            return self.cells[name]
        except KeyError:
            raise KeyError(f"no cell named {name!r}") from None

    def net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError:
            raise KeyError(f"no net named {name!r}") from None

    def cell_names(self) -> List[str]:
        return list(self.cells)

    def macro_cells(self) -> List[MacroCell]:
        return [c for c in self.cells.values() if isinstance(c, MacroCell)]

    def custom_cells(self) -> List[CustomCell]:
        return [c for c in self.cells.values() if isinstance(c, CustomCell)]

    def nets_of_cell(self, cell_name: str) -> List[Net]:
        """All nets with at least one pin on the named cell."""
        cell = self.cell(cell_name)
        seen = {pin.net for pin in cell.pins.values()}
        return [self.nets[n] for n in self.nets if n in seen]

    # -- statistics --------------------------------------------------------

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    @property
    def num_pins(self) -> int:
        return sum(c.num_pins for c in self.cells.values())

    def total_cell_area(self) -> float:
        """Sum of cell areas (instance 0 for macros, estimated for customs)."""
        total = 0.0
        for cell in self.cells.values():
            if isinstance(cell, MacroCell):
                total += cell.area(0)
            else:
                total += cell.area
        return total

    def total_cell_perimeter(self) -> float:
        """Sum of cell boundary lengths (customs at their default aspect)."""
        total = 0.0
        for cell in self.cells.values():
            if isinstance(cell, MacroCell):
                total += cell.instances[0].shape.boundary_length()
            else:
                total += cell.shape_for(cell.aspect.default()).boundary_length()
        return total

    def average_pin_density(self) -> float:
        """The paper's D̄p: total pins over total cell perimeter (§2.2)."""
        perimeter = self.total_cell_perimeter()
        if perimeter == 0:
            raise ZeroDivisionError("circuit has zero total perimeter")
        return self.num_pins / perimeter

    def validate(self) -> List[str]:
        """Return a list of human-readable netlist problems (empty if clean)."""
        problems = []
        for net in self.nets.values():
            if net.degree < 2:
                problems.append(f"net {net.name!r} has fewer than 2 pins")
        for cell in self.cells.values():
            if cell.num_pins == 0:
                problems.append(f"cell {cell.name!r} has no pins")
        return problems

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, {self.num_cells} cells, "
            f"{self.num_nets} nets, {self.num_pins} pins)"
        )
